#!/usr/bin/env python
"""Quickstart: generate data, fit the paper's AC2 recommender, recommend.

Run:
    python examples/quickstart.py [--scale 0.5] [--user 7]

Walks through the minimal end-to-end flow:

1. generate a MovieLens-like synthetic rating dataset (long-tail catalogue,
   latent genres, taste-specific and generalist users);
2. fit AC2 — the paper's best variant: Absorbing Cost with topic-based user
   entropy from an LDA over the rating data;
3. print the top-10 recommendations for one user, annotated with each item's
   popularity (rating count) and ground-truth genre, next to the user's own
   genre profile — so you can see both halves of the paper's promise:
   *long-tail* and *on-taste*.
"""

import argparse

import numpy as np

from repro import AbsorbingCostRecommender, generate_dataset, movielens_like


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset size multiplier (default 0.5)")
    parser.add_argument("--user", type=int, default=7,
                        help="user index to recommend for")
    parser.add_argument("--k", type=int, default=10, help="list length")
    args = parser.parse_args()

    print("1. Generating a MovieLens-like long-tail dataset ...")
    data = generate_dataset(movielens_like(args.scale), seed=7)
    dataset = data.dataset
    print(f"   {dataset}")

    print("2. Fitting AC2 (Absorbing Cost, topic-based entropy) ...")
    ac2 = AbsorbingCostRecommender.topic_based(
        n_topics=data.n_genres, seed=3
    ).fit(dataset)

    user = args.user % dataset.n_users
    theta = data.user_topics[user]
    top_genres = np.argsort(-theta)[:3]
    print(f"3. User {user}: rated {dataset.user_activity()[user]} items; "
          "ground-truth taste profile:")
    for genre in top_genres:
        print(f"   genre{genre}: {theta[genre]:.0%}")

    popularity = dataset.item_popularity()
    median_popularity = float(np.median(popularity))
    print(f"\nTop-{args.k} AC2 recommendations "
          f"(catalogue median popularity = {median_popularity:.0f} ratings):")
    print(f"{'rank':>4}  {'item':<10} {'#ratings':>8}  {'genre':<8} on-taste?")
    for rank, rec in enumerate(ac2.recommend(user, k=args.k), start=1):
        genre = data.item_genres[rec.item]
        flag = "yes" if genre in top_genres else "-"
        print(f"{rank:>4}  {str(rec.label):<10} {popularity[rec.item]:>8}  "
              f"genre{genre:<3} {flag:>8}")

    rec_items = [r.item for r in ac2.recommend(user, k=args.k)]
    mean_pop = popularity[rec_items].mean()
    print(f"\nMean popularity of the list: {mean_pop:.1f} ratings "
          f"(long tail — well under the catalogue median of {median_popularity:.0f})")

    from repro import explain_recommendation

    print("\n4. Why the top pick? The path evidence through the graph:")
    explanation = explain_recommendation(dataset, user, rec_items[0])
    print(explanation.describe(dataset))


if __name__ == "__main__":
    main()

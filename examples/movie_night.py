#!/usr/bin/env python
"""Movie night: why a long-tail recommender beats the hit list.

Run:
    python examples/movie_night.py [--scale 0.6]

Recreates the paper's §1 motivation on synthetic MovieLens-like data. For a
*taste-specific* user (one dominant genre) it compares three shelves:

* **MostPopular** — the blockbuster shelf everyone gets;
* **PureSVD** — the strong matrix-factorisation top-N baseline;
* **AC2** — the paper's entropy-biased Absorbing Cost recommender.

For each shelf it scores: how popular the suggestions are, how many sit in
the long tail (the 20%-of-ratings rule), and how well they match the user's
ground-truth genre. The long-tail shelf should be the only one that is both
niche *and* on-taste — the paper's Figure 2 story at dataset scale.
"""

import argparse

import numpy as np

from repro import (
    AbsorbingCostRecommender,
    MostPopularRecommender,
    PureSVDRecommender,
    generate_dataset,
    long_tail_split,
    movielens_like,
)


def pick_specific_user(data) -> int:
    """The most taste-concentrated user with a reasonable profile."""
    theta_peak = data.user_topics.max(axis=1)
    activity = data.dataset.user_activity()
    eligible = np.flatnonzero(activity >= 10)
    return int(eligible[np.argmax(theta_peak[eligible])])


def describe(name, recommender, user, data, tail_mask):
    dataset = data.dataset
    popularity = dataset.item_popularity()
    recs = recommender.recommend(user, k=10)
    items = np.array([r.item for r in recs])
    favourite_genre = int(np.argmax(data.user_topics[user]))
    on_taste = np.mean(data.item_genres[items] == favourite_genre)
    print(f"\n--- {name} ---")
    print(f"{'item':<10} {'#ratings':>8}  genre")
    for rec in recs[:5]:
        print(f"{str(rec.label):<10} {popularity[rec.item]:>8}  "
              f"genre{data.item_genres[rec.item]}")
    print(f"mean popularity : {popularity[items].mean():7.1f} ratings")
    print(f"long-tail share : {np.mean(tail_mask[items]):7.0%}")
    print(f"favourite-genre share: {on_taste:.0%}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.6)
    args = parser.parse_args()

    data = generate_dataset(movielens_like(args.scale), seed=11)
    dataset = data.dataset
    tail_mask = long_tail_split(dataset).is_tail()
    user = pick_specific_user(data)
    favourite = int(np.argmax(data.user_topics[user]))
    print(f"Dataset: {dataset}")
    print(f"Tonight's viewer: user {user} — a genre{favourite} devotee "
          f"({data.user_topics[user, favourite]:.0%} of their taste), "
          f"{dataset.user_activity()[user]} movies rated.")

    shelves = [
        ("MostPopular (the hit list)", MostPopularRecommender()),
        ("PureSVD (matrix factorisation)", PureSVDRecommender(n_factors=30, seed=1)),
        ("AC2 (the paper's long-tail recommender)",
         AbsorbingCostRecommender.topic_based(n_topics=data.n_genres, seed=3)),
    ]
    for name, recommender in shelves:
        describe(name, recommender.fit(dataset), user, data, tail_mask)

    print(
        "\nThe hit list is popular but generic; PureSVD matches taste but "
        "stays on the head; AC2 digs taste-matched movies out of the tail — "
        "the 'help me find it' half of Anderson's long-tail imperative."
    )


if __name__ == "__main__":
    main()

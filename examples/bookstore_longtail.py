#!/usr/bin/env python
"""Bookstore: sales diversity from the retailer's side of the counter.

Run:
    python examples/bookstore_longtail.py [--scale 0.7] [--panel 150]

The paper argues (§1, §5.2.3) that mainstream recommenders *reduce* sales
diversity — they funnel every customer to the same bestsellers — while the
graph methods spread demand across the catalogue. This example plays an
online bookstore on Douban-like synthetic data:

1. a panel of customers each receives a top-10 shelf from three engines
   (LDA baseline, DPPR, AC2);
2. the shop measures, per engine: catalogue coverage (Eq. 17 diversity),
   exposure concentration (Gini), how deep into the tail the shelves reach,
   and taste match via the category-tree ontology (Eq. 19) — the
   reproduction's stand-in for the dangdang book hierarchy.
"""

import argparse

import numpy as np

from repro import (
    AbsorbingCostRecommender,
    DiscountedPageRankRecommender,
    LDARecommender,
    TopNExperiment,
    douban_like,
    generate_dataset,
    sample_test_users,
)
from repro.topics import fit_lda


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.7)
    parser.add_argument("--panel", type=int, default=150,
                        help="number of customers served")
    args = parser.parse_args()

    print("Stocking the bookstore (Douban-like long-tail catalogue) ...")
    data = generate_dataset(douban_like(args.scale), seed=21)
    dataset = data.dataset
    print(f"  {dataset}")

    customers = sample_test_users(dataset, n_users=args.panel, seed=4)
    till = TopNExperiment(dataset, customers, k=10, ontology=data.ontology)

    model = fit_lda(dataset, 10, seed=3)
    engines = [
        ("LDA", LDARecommender(model=model)),
        ("DPPR", DiscountedPageRankRecommender()),
        ("AC2", AbsorbingCostRecommender.topic_based(topic_model=model, seed=3)),
    ]

    print(f"\nServing {args.panel} customers a 10-book shelf each:\n")
    header = (f"{'engine':<6} {'coverage':>9} {'gini':>6} {'tail-share':>11} "
              f"{'taste-match':>12} {'mean #ratings':>14}")
    print(header)
    print("-" * len(header))
    reports = {}
    for name, engine in engines:
        report = till.run(engine.fit(dataset))
        reports[name] = report
        print(f"{name:<6} {report.diversity:>9.1%} {report.gini:>6.2f} "
              f"{report.tail_share:>11.0%} {report.similarity:>12.2f} "
              f"{report.mean_popularity:>14.1f}")

    lda_unique = int(reports["LDA"].diversity * dataset.n_items)
    ac2_unique = int(reports["AC2"].diversity * dataset.n_items)
    print(
        f"\nThe LDA engine sold from only {lda_unique} distinct books; "
        f"AC2 moved {ac2_unique} — and still matched tastes better than "
        "DPPR's indiscriminate tail-diving. That coverage difference is the "
        "paper's 'sales diversity' argument in one table."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Side-by-side comparison of every algorithm in the library.

Run:
    python examples/compare_algorithms.py [--dataset movielens|douban]
    python examples/compare_algorithms.py --ratings path/to/ratings.dat

Evaluates the full roster — the paper's four variants (HT, AT, AC1, AC2),
its baselines (DPPR, PureSVD, LDA) and the extended references (PPR,
MostPopular, user/item kNN, association rules, random) — on two axes:

* **Recall@10** on held-out 5-star long-tail ratings (the Figure 5 protocol);
* the top-N panel metrics of §5.2.2+: popularity, diversity, tail share.

Accepts a real MovieLens ``ratings.dat`` / ``u.data`` / CSV via ``--ratings``
and runs the identical harness on it.
"""

import argparse
import os

from repro import (
    RecallProtocol,
    TopNExperiment,
    douban_like,
    generate_dataset,
    load_movielens_1m,
    load_movielens_100k,
    load_rating_csv,
    make_recall_split,
    movielens_like,
    sample_test_users,
)
from repro.baselines import (
    AssociationRuleRecommender,
    ItemKNNRecommender,
    MostPopularRecommender,
    PersonalizedPageRankRecommender,
    RandomRecommender,
    UserKNNRecommender,
)
from repro.eval.reporting import format_table
from repro.experiments import ExperimentConfig, make_algorithms


def load_ratings(path: str):
    if path.endswith(".dat"):
        return load_movielens_1m(path)
    if os.path.basename(path) == "u.data" or path.endswith(".tsv"):
        return load_movielens_100k(path)
    return load_rating_csv(path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=("movielens", "douban"),
                        default="movielens")
    parser.add_argument("--ratings", default=None,
                        help="optional real rating file (overrides --dataset)")
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--cases", type=int, default=120,
                        help="held-out recall test cases")
    args = parser.parse_args()

    if args.ratings:
        print(f"Loading real ratings from {args.ratings} ...")
        dataset = load_ratings(args.ratings)
    else:
        config = (movielens_like if args.dataset == "movielens" else douban_like)(
            args.scale)
        dataset = generate_dataset(config, seed=7).dataset
    print(f"Dataset: {dataset}\n")

    split = make_recall_split(dataset, n_cases=args.cases, seed=1)
    experiment_config = ExperimentConfig(scale=args.scale)
    roster = make_algorithms(experiment_config, train=split.train)
    roster += [
        PersonalizedPageRankRecommender(),
        MostPopularRecommender(),
        UserKNNRecommender(k_neighbors=30),
        ItemKNNRecommender(k_neighbors=30),
        AssociationRuleRecommender(min_support=2, min_confidence=0.05),
        RandomRecommender(seed=0),
    ]
    for algorithm in roster:
        algorithm.fit(split.train)

    protocol = RecallProtocol(split, n_distractors=500, max_n=50, seed=0)
    users = sample_test_users(split.train, n_users=120, seed=2)
    panel = TopNExperiment(split.train, users, k=10)

    rows = []
    for algorithm in roster:
        recall = protocol.evaluate(algorithm)
        report = panel.run(algorithm)
        rows.append({
            "algorithm": algorithm.name,
            "recall@10": round(recall.recall_at(10), 3),
            "recall@50": round(recall.recall_at(50), 3),
            "popularity": round(report.mean_popularity, 1),
            "diversity": round(report.diversity, 3),
            "tail_share": round(report.tail_share, 2),
        })
    rows.sort(key=lambda r: -r["recall@10"])
    print(format_table(rows, title="Long-tail recommendation scoreboard"))
    print(
        "\nReading guide: the paper's claim is the top-left corner — graph "
        "methods (AC2/AC1/AT/HT) should lead recall while recommending "
        "low-popularity, high-tail-share, diverse items."
    )


if __name__ == "__main__":
    main()

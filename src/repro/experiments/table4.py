"""Table 4 — impact of the subgraph budget µ on AC2 (paper §5.2.5).

The paper sweeps µ ∈ {3000, 4000, 5000, 6000, 89908(full)} on Douban and
reports: popularity slightly decreases with µ; similarity increases then
saturates around µ = 6000; diversity slightly decreases; per-user time grows
steeply toward the full graph. The sweep here uses µ values scaled to the
stand-in catalogue (fractions of the item count, plus the full graph).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AbsorbingCostRecommender
from repro.data.splits import sample_test_users
from repro.eval.harness import TopNExperiment
from repro.experiments.suite import ExperimentConfig, make_data
from repro.topics import fit_lda

__all__ = ["Table4Result", "run_table4"]


@dataclass(frozen=True)
class Table4Result:
    """One row per µ value: popularity / similarity / diversity / time."""

    rows_by_mu: dict  # mu -> TopNReport
    n_users: int
    k: int
    n_items: int

    def rows(self) -> list[dict]:
        out = []
        for mu, report in self.rows_by_mu.items():
            out.append({
                "mu": mu,
                "popularity": round(report.mean_popularity, 1),
                "similarity": (round(report.similarity, 3)
                               if report.similarity is not None else None),
                "diversity": round(report.diversity, 3),
                "sec_per_user": round(report.mean_seconds_per_user, 4),
            })
        return out


def run_table4(config: ExperimentConfig = ExperimentConfig(),
               mu_fractions: tuple[float, ...] = (0.1, 0.2, 0.4, 0.6),
               n_users: int = 100, k: int = 10) -> Table4Result:
    """Sweep µ for AC2 on the Douban-like dataset.

    ``mu_fractions`` are fractions of the catalogue size; the full graph is
    always appended as the last sweep point (the paper's µ = 89908 column).
    """
    data = make_data("douban", config)
    train = data.dataset
    users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 2)
    experiment = TopNExperiment(train, users, k=k, ontology=data.ontology)

    # One shared topic model: the sweep must vary only µ.
    model = fit_lda(train, config.n_topics, method="cvb0", seed=config.algo_seed)
    mu_values = [max(10, int(round(f * train.n_items))) for f in mu_fractions]
    mu_values.append(train.n_items)  # "full graph" column

    rows_by_mu = {}
    for mu in mu_values:
        recommender = AbsorbingCostRecommender.topic_based(
            n_topics=config.n_topics, topic_model=model, subgraph_size=mu,
            n_iterations=config.n_iterations, seed=config.algo_seed,
        ).fit(train)
        rows_by_mu[mu] = experiment.run(recommender)
    return Table4Result(
        rows_by_mu=rows_by_mu, n_users=users.size, k=k, n_items=train.n_items
    )

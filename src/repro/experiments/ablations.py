"""Ablation experiments for the design choices DESIGN.md calls out.

* **τ convergence** (§4.1's claim "when we use 15 iterations, it already
  achieves almost the same results to the exact solution"): top-k overlap of
  the truncated Absorbing Time ranking against the exact solve as τ grows.
* **LDA engine** (Gibbs vs CVB0): downstream agreement of topic entropy and
  of the AC2 ranking when swapping the sampler for the variational engine.
* **Cost constant C** (Eq. 9's tuning parameter): sensitivity of AC2's
  popularity/diversity metrics to the user→item jump cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import AbsorbingCostRecommender, AbsorbingTimeRecommender, EntropyCostModel
from repro.data.splits import sample_test_users
from repro.eval.harness import TopNExperiment
from repro.experiments.suite import ExperimentConfig, make_data
from repro.topics import fit_lda_cvb0, fit_lda_gibbs

__all__ = [
    "TauConvergenceResult",
    "run_tau_convergence",
    "LdaEngineResult",
    "run_lda_engine_ablation",
    "run_jump_cost_ablation",
]


@dataclass(frozen=True)
class TauConvergenceResult:
    """Top-k overlap of the truncated vs exact AT ranking at each τ."""

    taus: tuple
    mean_overlap: dict  # tau -> float in [0, 1]
    k: int

    def rows(self) -> list[dict]:
        return [
            {"tau": tau, f"top{self.k}_overlap_with_exact": round(self.mean_overlap[tau], 3)}
            for tau in self.taus
        ]


def run_tau_convergence(config: ExperimentConfig = ExperimentConfig(),
                        taus: tuple[int, ...] = (1, 2, 5, 10, 15, 30, 60),
                        n_users: int = 30, k: int = 10) -> TauConvergenceResult:
    """Measure how fast the truncated AT top-k matches the exact ranking."""
    data = make_data("movielens", config)
    train = data.dataset
    users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 3)

    exact = AbsorbingTimeRecommender(method="exact", subgraph_size=None).fit(train)
    exact_lists = {int(u): set(exact.recommend_items(int(u), k).tolist()) for u in users}

    overlaps: dict[int, float] = {}
    for tau in taus:
        truncated = AbsorbingTimeRecommender(
            method="truncated", n_iterations=tau, subgraph_size=None
        ).fit(train)
        per_user = []
        for u in users:
            approx = set(truncated.recommend_items(int(u), k).tolist())
            reference = exact_lists[int(u)]
            if reference:
                per_user.append(len(approx & reference) / len(reference))
        overlaps[tau] = float(np.mean(per_user))
    return TauConvergenceResult(taus=tuple(taus), mean_overlap=overlaps, k=k)


@dataclass(frozen=True)
class LdaEngineResult:
    """Agreement between the Gibbs and CVB0 LDA engines."""

    entropy_correlation: float
    ac2_top10_overlap: float
    gibbs_seconds: float
    cvb0_seconds: float

    def rows(self) -> list[dict]:
        return [{
            "entropy_spearman": round(self.entropy_correlation, 3),
            "ac2_top10_overlap": round(self.ac2_top10_overlap, 3),
            "gibbs_seconds": round(self.gibbs_seconds, 2),
            "cvb0_seconds": round(self.cvb0_seconds, 2),
        }]


def run_lda_engine_ablation(config: ExperimentConfig = ExperimentConfig(),
                            n_users: int = 30,
                            gibbs_iterations: int = 60) -> LdaEngineResult:
    """Swap the LDA engine under AC2 and measure downstream agreement."""
    from scipy.stats import spearmanr

    from repro.utils.timer import Timer

    data = make_data("movielens", config)
    train = data.dataset
    with Timer() as t_gibbs:
        gibbs = fit_lda_gibbs(train, config.n_topics, n_iterations=gibbs_iterations,
                              seed=config.algo_seed)
    with Timer() as t_cvb0:
        cvb0 = fit_lda_cvb0(train, config.n_topics, seed=config.algo_seed)

    corr = float(spearmanr(gibbs.user_entropy(), cvb0.user_entropy()).statistic)

    users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 4)
    overlaps = []
    ac2_gibbs = AbsorbingCostRecommender.topic_based(
        topic_model=gibbs, subgraph_size=config.subgraph_size,
        n_iterations=config.n_iterations).fit(train)
    ac2_cvb0 = AbsorbingCostRecommender.topic_based(
        topic_model=cvb0, subgraph_size=config.subgraph_size,
        n_iterations=config.n_iterations).fit(train)
    for u in users:
        a = set(ac2_gibbs.recommend_items(int(u), 10).tolist())
        b = set(ac2_cvb0.recommend_items(int(u), 10).tolist())
        if a:
            overlaps.append(len(a & b) / len(a))
    return LdaEngineResult(
        entropy_correlation=corr,
        ac2_top10_overlap=float(np.mean(overlaps)),
        gibbs_seconds=t_gibbs.elapsed,
        cvb0_seconds=t_cvb0.elapsed,
    )


def run_jump_cost_ablation(config: ExperimentConfig = ExperimentConfig(),
                           jump_costs: tuple = ("mean-entropy", 0.25, 1.0, 4.0),
                           n_users: int = 60, k: int = 10) -> list[dict]:
    """Sweep the Eq. 9 constant C and report AC2's panel metrics per value."""
    data = make_data("movielens", config)
    train = data.dataset
    users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 2)
    experiment = TopNExperiment(train, users, k=k, ontology=data.ontology)
    from repro.topics import fit_lda

    model = fit_lda(train, config.n_topics, method="cvb0", seed=config.algo_seed)
    rows = []
    for jump_cost in jump_costs:
        recommender = AbsorbingCostRecommender.topic_based(
            topic_model=model, cost_model=EntropyCostModel(jump_cost=jump_cost),
            subgraph_size=config.subgraph_size, n_iterations=config.n_iterations,
        ).fit(train)
        report = experiment.run(recommender)
        rows.append({
            "jump_cost_C": jump_cost,
            "popularity": round(report.mean_popularity, 1),
            "similarity": round(report.similarity, 3),
            "diversity": round(report.diversity, 3),
        })
    return rows

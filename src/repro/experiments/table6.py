"""Table 6 — the user study (paper §5.2.7), simulated.

The paper's 50-evaluator survey compared AC2, DPPR, PureSVD and LDA on
Preference / Novelty / Serendipity / overall Score (see
:mod:`repro.eval.user_study` for the simulation model and DESIGN.md §6 for
the substitution rationale). Published shape:

==========  ==========  =======  ===========  =====
algorithm   preference  novelty  serendipity  score
==========  ==========  =======  ===========  =====
AC2         4.32        0.98     4.78         4.41
DPPR        3.12        0.89     3.95         3.65
PureSVD     4.34        0.64     2.12         4.25
LDA         4.12        0.66     2.15         4.22
==========  ==========  =======  ===========  =====

i.e. AC2 is novel *and* on-taste; DPPR is novel but off-taste; the latent
factor models are on-taste but familiar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    DiscountedPageRankRecommender,
    LDARecommender,
    PureSVDRecommender,
)
from repro.core import AbsorbingCostRecommender
from repro.eval.user_study import SimulatedPanel, StudyReport
from repro.experiments.suite import ExperimentConfig, make_data
from repro.topics import fit_lda

__all__ = ["Table6Result", "run_table6", "PAPER_STUDY"]

#: Published Table 6 rows.
PAPER_STUDY = {
    "AC2": {"preference": 4.32, "novelty": 0.98, "serendipity": 4.78, "score": 4.41},
    "DPPR": {"preference": 3.12, "novelty": 0.89, "serendipity": 3.95, "score": 3.65},
    "PureSVD": {"preference": 4.34, "novelty": 0.64, "serendipity": 2.12, "score": 4.25},
    "LDA": {"preference": 4.12, "novelty": 0.66, "serendipity": 2.15, "score": 4.22},
}


@dataclass(frozen=True)
class Table6Result:
    """Mean panel answers per algorithm."""

    reports: dict  # name -> StudyReport
    n_evaluators: int

    def rows(self) -> list[dict]:
        out = []
        for name, report in self.reports.items():
            row = report.row()
            row["paper_score"] = PAPER_STUDY.get(name, {}).get("score")
            out.append(row)
        return out


def run_table6(config: ExperimentConfig = ExperimentConfig(),
               n_evaluators: int = 50, k: int = 10) -> Table6Result:
    """Run the simulated panel on the paper's four study algorithms."""
    data = make_data("movielens", config)
    train = data.dataset
    model = fit_lda(train, config.n_topics, method="cvb0", seed=config.algo_seed)
    algorithms = [
        AbsorbingCostRecommender.topic_based(
            n_topics=config.n_topics, topic_model=model,
            subgraph_size=config.subgraph_size,
            n_iterations=config.n_iterations, seed=config.algo_seed,
        ).fit(train),
        DiscountedPageRankRecommender().fit(train),
        PureSVDRecommender(n_factors=config.n_factors, seed=config.algo_seed).fit(train),
        LDARecommender(n_topics=config.n_topics, model=model).fit(train),
    ]
    panel = SimulatedPanel(data, n_evaluators=n_evaluators, seed=config.eval_seed + 5)
    reports: dict[str, StudyReport] = {}
    for algorithm in algorithms:
        report = panel.evaluate(algorithm, k=k, seed=config.eval_seed + 6)
        reports[report.name] = report
    return Table6Result(reports=reports, n_evaluators=n_evaluators)

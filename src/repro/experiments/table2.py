"""Table 2 — recommendation diversity (paper §5.2.3, Eq. 17).

``Diversity = |∪_u R_u| / |I|`` over the test panel's top-10 lists. Paper
shape (Douban row): AC1 0.625 best, AT = AC2 0.58, HT 0.55, DPPR 0.45,
PureSVD 0.325, LDA 0.035 worst; every algorithm's diversity is lower on the
denser MovieLens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.splits import sample_test_users
from repro.eval.harness import TopNExperiment
from repro.experiments.suite import (
    PAPER_ORDER,
    ExperimentConfig,
    fit_all,
    make_algorithms,
    make_data,
)

__all__ = ["Table2Result", "run_table2", "PAPER_DIVERSITY"]

#: The published Table 2 rows, for shape comparison in the bench output.
PAPER_DIVERSITY = {
    "douban": {"AC2": 0.58, "AC1": 0.625, "AT": 0.58, "HT": 0.55,
               "DPPR": 0.45, "PureSVD": 0.325, "LDA": 0.035},
    "movielens": {"AC2": 0.42, "AC1": 0.425, "AT": 0.42, "HT": 0.41,
                  "DPPR": 0.35, "PureSVD": 0.245, "LDA": 0.025},
}


@dataclass(frozen=True)
class Table2Result:
    """Diversity per algorithm per dataset."""

    diversity: dict  # dataset -> {algorithm -> float}
    n_users: int
    k: int

    def rows(self) -> list[dict]:
        rows = []
        for dataset, values in self.diversity.items():
            row = {"dataset": dataset}
            for name, value in values.items():
                row[name] = round(value, 3)
            rows.append(row)
        return rows


def run_table2(config: ExperimentConfig = ExperimentConfig(), n_users: int = 200,
               k: int = 10, include: tuple[str, ...] = PAPER_ORDER,
               datasets: tuple[str, ...] = ("douban", "movielens")) -> Table2Result:
    """Compute Eq. 17 diversity for the roster on both datasets."""
    diversity: dict[str, dict[str, float]] = {}
    for kind in datasets:
        data = make_data(kind, config)
        train = data.dataset
        users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 2)
        algorithms = fit_all(make_algorithms(config, train=train, include=include), train)
        experiment = TopNExperiment(train, users, k=k)
        reports = experiment.run_all(algorithms)
        diversity[kind] = {name: r.diversity for name, r in reports.items()}
    return Table2Result(diversity=diversity, n_users=n_users, k=k)

"""Table 3 — ontology similarity of recommendations (paper §5.2.4).

Eq. 19 taste match on the Douban-like data, using the category-tree
ontology in place of the proprietary dangdang book hierarchy. Paper row:
AC2 0.48 best, PureSVD 0.45, LDA 0.43, AC1 0.42, AT 0.39, HT 0.37,
DPPR 0.36 worst — i.e. DPPR finds tail items but misses the user's taste,
while AC2 finds tail items *and* matches taste.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.splits import sample_test_users
from repro.eval.harness import TopNExperiment
from repro.experiments.suite import (
    PAPER_ORDER,
    ExperimentConfig,
    fit_all,
    make_algorithms,
    make_data,
)

__all__ = ["Table3Result", "run_table3", "PAPER_SIMILARITY"]

#: Published Table 3 (Douban), for shape comparison in the bench output.
PAPER_SIMILARITY = {
    "AC2": 0.48, "AC1": 0.42, "AT": 0.39, "HT": 0.37,
    "DPPR": 0.36, "PureSVD": 0.45, "LDA": 0.43,
}


@dataclass(frozen=True)
class Table3Result:
    """Similarity (and companion metrics) per algorithm on Douban-like data."""

    similarity: dict
    popularity: dict
    n_users: int
    k: int

    def rows(self) -> list[dict]:
        return [
            {
                "algorithm": name,
                "similarity": round(self.similarity[name], 3),
                "paper": PAPER_SIMILARITY.get(name),
                "mean_popularity": round(self.popularity[name], 1),
            }
            for name in self.similarity
        ]


def run_table3(config: ExperimentConfig = ExperimentConfig(), n_users: int = 200,
               k: int = 10, include: tuple[str, ...] = PAPER_ORDER) -> Table3Result:
    """Compute Eq. 19 similarity on the Douban-like dataset."""
    data = make_data("douban", config)
    train = data.dataset
    users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 2)
    algorithms = fit_all(make_algorithms(config, train=train, include=include), train)
    experiment = TopNExperiment(train, users, k=k, ontology=data.ontology)
    reports = experiment.run_all(algorithms)
    return Table3Result(
        similarity={name: r.similarity for name, r in reports.items()},
        popularity={name: r.mean_popularity for name, r in reports.items()},
        n_users=users.size,
        k=k,
    )

"""Table 1 — genre-coherent topics from the rating-data LDA (paper §4.2.3).

The paper lists the five highest-probability movies of two topics trained on
MovieLens and observes they align with genres (Children's/Animation vs
Action). With the synthetic ground truth we can *measure* what the paper
eyeballed: for each topic, the purity of its top items' true genres. The
driver reports every topic's top items with their genres, plus the two
purest topics (the Table 1 analogue).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.suite import ExperimentConfig, make_data
from repro.topics import fit_lda

__all__ = ["TopicSummary", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class TopicSummary:
    """One topic's top items with ground-truth genre annotation."""

    topic: int
    item_labels: tuple
    item_genres: tuple
    purity: float  # fraction of top items sharing the modal genre

    def rows(self) -> list[dict]:
        return [
            {
                "topic": self.topic,
                "rank": rank + 1,
                "item": label,
                "true_genre": genre,
                "topic_purity": round(self.purity, 2),
            }
            for rank, (label, genre) in enumerate(
                zip(self.item_labels, self.item_genres)
            )
        ]


@dataclass(frozen=True)
class Table1Result:
    """All topics, plus the two purest (the printed Table 1 analogue)."""

    topics: tuple
    mean_purity: float
    engine: str

    def best_two(self) -> tuple[TopicSummary, TopicSummary]:
        ordered = sorted(self.topics, key=lambda t: -t.purity)
        return ordered[0], ordered[1]


def run_table1(config: ExperimentConfig = ExperimentConfig(), top_n: int = 5,
               engine: str = "gibbs", n_iterations: int | None = None) -> Table1Result:
    """Train LDA on the MovieLens-like data and summarise topic coherence.

    ``engine="gibbs"`` is the paper-faithful Algorithm 2 sampler; pass
    ``"cvb0"`` for the fast engine (used by the small-scale tests).
    """
    data = make_data("movielens", config)
    kwargs = {}
    if n_iterations is not None:
        kwargs["n_iterations"] = n_iterations
    model = fit_lda(
        data.dataset, config.n_topics, method=engine, seed=config.algo_seed, **kwargs
    )

    summaries = []
    for topic in range(model.n_topics):
        top = model.top_items(topic, top_n)
        genres = data.item_genres[top]
        modal_count = int(np.bincount(genres).max())
        summaries.append(TopicSummary(
            topic=topic,
            item_labels=tuple(data.dataset.item_labels[int(i)] for i in top),
            item_genres=tuple(f"genre{g}" for g in genres),
            purity=modal_count / top.size,
        ))
    return Table1Result(
        topics=tuple(summaries),
        mean_purity=float(np.mean([s.purity for s in summaries])),
        engine=engine,
    )

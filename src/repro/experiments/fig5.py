"""Figure 5 — Recall@N on the long-tail protocol (paper §5.2.1).

Reproduces both panels: (a) MovieLens-like and (b) Douban-like. The paper's
reported shape: the proposed variants dominate, ordered AC2 > AC1 > AT > HT,
with DPPR / PureSVD / LDA "less than 50% of AC2"; all recalls are higher on
Douban than on MovieLens because the denser MovieLens matrix puts more
relevant items among the random distractors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.splits import make_recall_split
from repro.eval.protocol import RecallProtocol, RecallResult
from repro.experiments.suite import (
    PAPER_ORDER,
    ExperimentConfig,
    fit_all,
    make_algorithms,
    make_data,
)

__all__ = ["Fig5Result", "run_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Recall curves for every algorithm on one dataset."""

    dataset: str
    n_cases: int
    n_distractors: int
    results: dict  # name -> RecallResult

    def curves(self) -> dict[str, np.ndarray]:
        return {name: res.recall for name, res in self.results.items()}

    def recall_at(self, n: int) -> dict[str, float]:
        return {name: res.recall_at(n) for name, res in self.results.items()}


def run_fig5(dataset_kind: str, config: ExperimentConfig = ExperimentConfig(),
             n_cases: int = 200, n_distractors: int = 500,
             max_n: int = 50,
             include: tuple[str, ...] = PAPER_ORDER) -> Fig5Result:
    """Run the Recall@N protocol on one dataset for the full roster.

    ``n_distractors`` defaults to 500 (the paper's 1000 assumes a
    3883–90k-item catalogue; the scaled stand-ins cap the pool — see
    :class:`repro.eval.protocol.RecallProtocol`).
    """
    data = make_data(dataset_kind, config)
    split = make_recall_split(
        data.dataset, n_cases=n_cases, seed=config.eval_seed + 1
    )
    algorithms = fit_all(
        make_algorithms(config, train=split.train, include=include), split.train
    )
    protocol = RecallProtocol(
        split, n_distractors=n_distractors, max_n=max_n, seed=config.eval_seed
    )
    results: dict[str, RecallResult] = protocol.evaluate_all(algorithms)
    return Fig5Result(
        dataset=dataset_kind,
        n_cases=split.n_cases,
        n_distractors=n_distractors,
        results=results,
    )

"""Shared experiment scaffolding: datasets, algorithm roster, scale knobs.

Every table/figure driver in :mod:`repro.experiments` builds its workload
through this module so the whole benchmark suite is controlled by two knobs:
``scale`` (dataset size multiplier) and the per-driver case counts.

The algorithm roster mirrors the paper's §5.1.1 line-up: the four proposed
variants (HT, AT, AC1, AC2) and the competitors (DPPR, PureSVD, LDA);
extended baselines can be appended for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    DiscountedPageRankRecommender,
    LDARecommender,
    PureSVDRecommender,
)
from repro.core import (
    AbsorbingCostRecommender,
    AbsorbingTimeRecommender,
    HittingTimeRecommender,
    Recommender,
)
from repro.data.dataset import RatingDataset
from repro.data.synthetic import SyntheticData, douban_like, generate_dataset, movielens_like
from repro.exceptions import ConfigError
from repro.topics import fit_lda

__all__ = ["ExperimentConfig", "make_data", "make_algorithms", "fit_all", "PAPER_ORDER"]

#: Algorithm display order used by the paper's tables.
PAPER_ORDER = ("AC2", "AC1", "AT", "HT", "DPPR", "PureSVD", "LDA")


@dataclass(frozen=True)
class ExperimentConfig:
    """Workload knobs shared by the experiment drivers.

    Attributes
    ----------
    scale:
        Dataset size multiplier (1.0 = the defaults of
        :func:`repro.data.synthetic.movielens_like` / ``douban_like``).
    n_topics:
        K for every topic model (AC2's entropy LDA and the LDA baseline).
    n_factors:
        PureSVD rank.
    subgraph_size:
        µ for AT/AC (the paper's default 6000 exceeds the scaled catalogues,
        i.e. no truncation unless a driver overrides it — matching the paper
        where µ=6000 also exceeds the MovieLens catalogue).
    n_iterations:
        τ for the truncated solvers (paper: 15).
    data_seed, algo_seed, eval_seed:
        Independent randomness streams.
    """

    scale: float = 1.0
    n_topics: int = 8
    n_factors: int = 40
    subgraph_size: int = 6000
    n_iterations: int = 15
    data_seed: int = 7
    algo_seed: int = 3
    eval_seed: int = 0


def make_data(kind: str, config: ExperimentConfig) -> SyntheticData:
    """Generate the ``"movielens"`` or ``"douban"`` stand-in dataset."""
    if kind == "movielens":
        return generate_dataset(movielens_like(config.scale), seed=config.data_seed)
    if kind == "douban":
        return generate_dataset(douban_like(config.scale), seed=config.data_seed)
    raise ConfigError(f"unknown dataset kind {kind!r}; expected 'movielens' or 'douban'")


def make_algorithms(config: ExperimentConfig, train: RatingDataset | None = None,
                    include: tuple[str, ...] = PAPER_ORDER) -> list[Recommender]:
    """Instantiate the paper's algorithm roster (unfitted).

    When ``train`` is given, one LDA model is trained once and shared by AC2
    and the LDA baseline — mirroring the paper, which reuses the same
    rating-data topics, and halving the benchmark fitting cost.
    """
    shared_model = None
    if train is not None and ("AC2" in include or "LDA" in include):
        shared_model = fit_lda(train, config.n_topics, method="cvb0",
                               seed=config.algo_seed)
    catalogue: dict[str, object] = {
        "AC2": lambda: AbsorbingCostRecommender.topic_based(
            n_topics=config.n_topics, topic_model=shared_model,
            subgraph_size=config.subgraph_size, n_iterations=config.n_iterations,
            seed=config.algo_seed),
        "AC1": lambda: AbsorbingCostRecommender.item_based(
            subgraph_size=config.subgraph_size, n_iterations=config.n_iterations),
        "AT": lambda: AbsorbingTimeRecommender(
            subgraph_size=config.subgraph_size, n_iterations=config.n_iterations),
        "HT": lambda: HittingTimeRecommender(n_iterations=config.n_iterations),
        "DPPR": lambda: DiscountedPageRankRecommender(),
        "PureSVD": lambda: PureSVDRecommender(
            n_factors=config.n_factors, seed=config.algo_seed),
        "LDA": lambda: LDARecommender(
            n_topics=config.n_topics, model=shared_model, seed=config.algo_seed),
    }
    unknown = set(include) - set(catalogue)
    if unknown:
        raise ConfigError(f"unknown algorithm names: {sorted(unknown)}")
    return [catalogue[name]() for name in include]


def fit_all(recommenders: list[Recommender], train: RatingDataset) -> list[Recommender]:
    """Fit every recommender on ``train`` and return the list."""
    for recommender in recommenders:
        recommender.fit(train)
    return recommenders

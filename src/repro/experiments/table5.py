"""Table 5 — per-user online recommendation cost (paper §5.2.6).

The paper times one top-10 recommendation per user on Douban: LDA 0.47 s ≈
PureSVD 0.45 s ≈ AC2-on-subgraph 0.52 s ≪ DPPR-on-global-graph 13.5 s.
Absolute numbers on a Python laptop stack differ; the *relationships* this
driver reproduces are (1) AC2 restricted to a µ-subgraph is in the same
league as the model-based scorers, (2) the global-graph power-iteration
DPPR is an order of magnitude slower, and (3) — beyond the paper — serving
the panel through the batch layer (``AC2-batch``) amortises the per-user
walk setup the paper's Table 4/5 columns pay, which is the modern answer to
the global-scan cost now that the shared-subgraph serving path has
optimised much of it away for single queries too.

Offline training (LDA fitting, SVD factorisation) is excluded, exactly as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    DiscountedPageRankRecommender,
    LDARecommender,
    PureSVDRecommender,
)
from repro.core import AbsorbingCostRecommender
from repro.data.splits import sample_test_users
from repro.eval.harness import TopNExperiment
from repro.experiments.suite import ExperimentConfig, make_data
from repro.topics import fit_lda
from repro.utils.timer import Timer

__all__ = ["Table5Result", "run_table5", "PAPER_SECONDS"]

#: Published Table 5 (Java, 32 GB server, full-size Douban), for reference.
PAPER_SECONDS = {"LDA": 0.47, "PureSVD": 0.45, "AC2": 0.52, "DPPR": 13.5}


@dataclass(frozen=True)
class Table5Result:
    """Mean per-user seconds per algorithm.

    ``AC2-full`` is AC2 run on the whole graph instead of the µ-subgraph —
    the analogue of the paper's Table 4 "µ = 89908" column (12.7 s), included
    here because at laptop scale the sparse-PPR DPPR is no longer the slow
    outlier the paper measured at crawl scale (see EXPERIMENTS.md).
    """

    seconds: dict
    mu: int
    n_users: int

    def rows(self) -> list[dict]:
        return [
            {
                "algorithm": name,
                "sec_per_user": round(value, 4),
                "paper_sec_per_user": PAPER_SECONDS.get(name),
            }
            for name, value in self.seconds.items()
        ]

    def slowdown_of_global_scan(self) -> float:
        """Full-graph AC2 over subgraph AC2 (the paper's 12.7 s vs 0.52 s)."""
        return self.seconds["AC2-full"] / max(self.seconds["AC2"], 1e-12)

    def slowdown_of_dppr(self) -> float:
        """DPPR time over the fastest model-based scorer (paper: ≈26–30×)."""
        others = [v for k, v in self.seconds.items()
                  if k in ("LDA", "PureSVD", "AC2")]
        return self.seconds["DPPR"] / max(min(others), 1e-12)

    def speedup_of_batch(self) -> float:
        """Per-user full-graph AC2 over its batch-served rate — how much of
        the paper's global-scan cost the serving layer amortises away."""
        return self.seconds["AC2-full"] / max(self.seconds["AC2-full-batch"], 1e-12)


def run_table5(config: ExperimentConfig = ExperimentConfig(),
               mu_fraction: float = 0.15, n_users: int = 50,
               k: int = 10) -> Table5Result:
    """Time per-user recommendation for LDA, PureSVD, AC2(µ) and DPPR.

    ``mu_fraction`` sets AC2's subgraph budget relative to the catalogue
    (the paper's 6000 of 89908 ≈ 6.7%; the default 15% is conservative for
    the smaller stand-in where profiles cover more of the graph).
    """
    data = make_data("douban", config)
    train = data.dataset
    users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 2)
    experiment = TopNExperiment(train, users, k=k)

    model = fit_lda(train, config.n_topics, method="cvb0", seed=config.algo_seed)
    mu = max(10, int(round(mu_fraction * train.n_items)))
    # "Full graph" means Algorithm 1 with mu = |I|, the paper's Table 4 last
    # column (mu = 89908). Since the batch serving layer, a never-truncating
    # budget rides the shared per-component subgraph path (no per-query BFS),
    # so this row measures today's full-graph serve cost, not the paper's
    # per-user scan — hence the AC2-full-batch companion row below.
    ac2_full = AbsorbingCostRecommender.topic_based(
        n_topics=config.n_topics, topic_model=model, subgraph_size=train.n_items,
        n_iterations=config.n_iterations, seed=config.algo_seed,
    )
    ac2_full.name = "AC2-full"
    algorithms = [
        LDARecommender(n_topics=config.n_topics, model=model).fit(train),
        PureSVDRecommender(n_factors=config.n_factors, seed=config.algo_seed).fit(train),
        AbsorbingCostRecommender.topic_based(
            n_topics=config.n_topics, topic_model=model, subgraph_size=mu,
            n_iterations=config.n_iterations, seed=config.algo_seed,
        ).fit(train),
        DiscountedPageRankRecommender().fit(train),
        ac2_full.fit(train),
    ]
    seconds = {}
    for algorithm in algorithms:
        report = experiment.run(algorithm)
        seconds[algorithm.name] = report.mean_seconds_per_user

    # The serving-layer row: the full-graph AC2 — the paper's expensive
    # per-user scan — answering the same panel through one vectorised
    # recommend_batch call. Queries share the walk subgraph, so the scan
    # cost is paid once per cohort instead of once per user.
    with Timer() as timer:
        ac2_full.recommend_batch(users, k=k)
    seconds["AC2-full-batch"] = timer.elapsed / max(users.size, 1)
    return Table5Result(seconds=seconds, mu=mu, n_users=users.size)

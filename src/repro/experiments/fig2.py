"""Figure 2 — the paper's worked Hitting Time example (§3.3).

Reproduces ``H(U5|M4)=17.7 < H(U5|M1)=19.6 < H(U5|M5)=20.2 < H(U5|M6)=20.3``
on the exact 5-user × 6-movie graph of Figure 2, demonstrating that the
niche Action movie M4 (rated once, taste-aligned) beats the locally popular
M1 a classic CF method would pick. Both the truncated values (matching the
published numbers at τ=59) and the exact linear-solve values are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hitting_time import HittingTimeRecommender
from repro.data.toy import FIGURE2_PAPER_HITTING_TIMES, figure2_dataset

__all__ = ["Fig2Result", "run_fig2", "FIGURE2_MATCH_TAU"]

#: Truncation depth at which the published Figure 2 values are matched.
FIGURE2_MATCH_TAU = 59


@dataclass(frozen=True)
class Fig2Result:
    """Computed vs published hitting times for one movie."""

    movie: str
    paper_value: float
    truncated_value: float
    exact_value: float

    def row(self) -> dict:
        return {
            "movie": self.movie,
            "paper_H(U5|m)": self.paper_value,
            "truncated_tau59": round(self.truncated_value, 2),
            "exact": round(self.exact_value, 2),
        }


def run_fig2() -> list[Fig2Result]:
    """Compute the Figure 2 hitting times with both solvers.

    Returned in the paper's order (ascending hitting time: M4 first).
    """
    dataset = figure2_dataset()
    user = dataset.user_id("U5")

    truncated = HittingTimeRecommender(
        method="truncated", n_iterations=FIGURE2_MATCH_TAU
    ).fit(dataset)
    exact = HittingTimeRecommender(method="exact").fit(dataset)
    times_truncated = truncated.hitting_times(user)
    times_exact = exact.hitting_times(user)

    results = []
    for movie, paper_value in sorted(
        FIGURE2_PAPER_HITTING_TIMES.items(), key=lambda kv: kv[1]
    ):
        item = dataset.item_id(movie)
        results.append(Fig2Result(
            movie=movie,
            paper_value=paper_value,
            truncated_value=float(times_truncated[item]),
            exact_value=float(times_exact[item]),
        ))
    return results

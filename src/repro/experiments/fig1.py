"""Figure 1 — the long-tail shape of the catalogues (paper §1, §5.1.2).

The paper's Figure 1 contrasts the hits market with the niche market; its
§5.1.2 quantifies both datasets: "about 66% hard-to-find movies generate 20%
ratings … and 73% least-rating books generate 20% book ratings". This driver
computes the popularity curve and the Pareto statistics for both synthetic
stand-ins so the bench can assert those shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.longtail import LongTailStats, long_tail_stats
from repro.experiments.suite import ExperimentConfig, make_data

__all__ = ["Fig1Result", "run_fig1"]

#: Catalogue tail shares reported in §5.1.2.
PAPER_TAIL_FRACTIONS = {"movielens": 0.66, "douban": 0.73}


@dataclass(frozen=True)
class Fig1Result:
    """Long-tail statistics for one dataset."""

    dataset: str
    stats: LongTailStats

    def row(self) -> dict:
        return {
            "dataset": self.dataset,
            "n_items": self.stats.n_items,
            "n_ratings": self.stats.n_ratings,
            "tail_frac_of_catalog": round(self.stats.tail_fraction_of_catalog, 3),
            "paper_tail_frac": PAPER_TAIL_FRACTIONS[self.dataset],
            "top20_share_of_ratings": round(self.stats.top20_share, 3),
            "gini": round(self.stats.gini, 3),
        }

    def curve_rows(self, n_points: int = 20) -> list[dict]:
        """Down-sampled popularity-vs-rank curve (the Figure 1 line)."""
        curve = self.stats.popularity_curve
        idx = np.unique(np.linspace(0, curve.size - 1, n_points, dtype=np.int64))
        return [
            {"dataset": self.dataset, "rank": int(i) + 1, "ratings": int(curve[i])}
            for i in idx
        ]


def run_fig1(config: ExperimentConfig = ExperimentConfig()) -> list[Fig1Result]:
    """Compute Figure 1 statistics for both stand-in datasets."""
    results = []
    for kind in ("movielens", "douban"):
        data = make_data(kind, config)
        results.append(Fig1Result(dataset=kind, stats=long_tail_stats(data.dataset)))
    return results

"""Experiment drivers: one module per table/figure of the paper's evaluation
(§5), shared by the benchmark suite and the integration tests. See DESIGN.md
for the experiment index and EXPERIMENTS.md for paper-vs-measured records."""

from repro.experiments.ablations import (
    LdaEngineResult,
    TauConvergenceResult,
    run_jump_cost_ablation,
    run_lda_engine_ablation,
    run_tau_convergence,
)
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import FIGURE2_MATCH_TAU, Fig2Result, run_fig2
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.suite import (
    PAPER_ORDER,
    ExperimentConfig,
    fit_all,
    make_algorithms,
    make_data,
)
from repro.experiments.table1 import Table1Result, TopicSummary, run_table1
from repro.experiments.table2 import PAPER_DIVERSITY, Table2Result, run_table2
from repro.experiments.table3 import PAPER_SIMILARITY, Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import PAPER_SECONDS, Table5Result, run_table5
from repro.experiments.table6 import PAPER_STUDY, Table6Result, run_table6

__all__ = [
    "LdaEngineResult",
    "TauConvergenceResult",
    "run_jump_cost_ablation",
    "run_lda_engine_ablation",
    "run_tau_convergence",
    "Fig1Result",
    "run_fig1",
    "FIGURE2_MATCH_TAU",
    "Fig2Result",
    "run_fig2",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "PAPER_ORDER",
    "ExperimentConfig",
    "fit_all",
    "make_algorithms",
    "make_data",
    "Table1Result",
    "TopicSummary",
    "run_table1",
    "PAPER_DIVERSITY",
    "Table2Result",
    "run_table2",
    "PAPER_SIMILARITY",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "run_table4",
    "PAPER_SECONDS",
    "Table5Result",
    "run_table5",
    "PAPER_STUDY",
    "Table6Result",
    "run_table6",
]

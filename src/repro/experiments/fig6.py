"""Figure 6 — Popularity@N of the recommendation lists (paper §5.2.2).

For a panel of test users, each algorithm recommends top-10 lists and the
mean rating-count of the item at each rank is reported. Paper shape: the
graph methods (HT/AT/AC/DPPR) consistently sit far below PureSVD and LDA —
and for the latent-factor models popularity *decreases* with rank (their top
suggestions are the biggest hits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.splits import sample_test_users
from repro.eval.harness import TopNExperiment
from repro.experiments.suite import (
    PAPER_ORDER,
    ExperimentConfig,
    fit_all,
    make_algorithms,
    make_data,
)

__all__ = ["Fig6Result", "run_fig6"]


@dataclass(frozen=True)
class Fig6Result:
    """Popularity-at-rank series per algorithm for one dataset."""

    dataset: str
    k: int
    n_users: int
    series: dict  # name -> np.ndarray of length k
    mean_popularity: dict  # name -> float

    def row_at(self, rank: int) -> dict:
        out = {"N": rank}
        for name, values in self.series.items():
            out[name] = round(float(values[rank - 1]), 1)
        return out


def run_fig6(dataset_kind: str, config: ExperimentConfig = ExperimentConfig(),
             n_users: int = 200, k: int = 10,
             include: tuple[str, ...] = PAPER_ORDER) -> Fig6Result:
    """Collect Popularity@N series on one dataset for the full roster."""
    data = make_data(dataset_kind, config)
    train = data.dataset
    users = sample_test_users(train, n_users=n_users, seed=config.eval_seed + 2)
    algorithms = fit_all(make_algorithms(config, train=train, include=include), train)
    experiment = TopNExperiment(train, users, k=k, ontology=data.ontology)
    reports = experiment.run_all(algorithms)
    return Fig6Result(
        dataset=dataset_kind,
        k=k,
        n_users=users.size,
        series={name: np.asarray(r.popularity_at_n) for name, r in reports.items()},
        mean_popularity={name: r.mean_popularity for name, r in reports.items()},
    )

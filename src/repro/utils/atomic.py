"""Crash-safe file writes: temp path + ``os.replace`` + directory fsync.

Every on-disk format in the project (model artifacts, shard plans, top-K
stores) is a single file that some later process boots from — a fleet
supervisor validates shard artifacts up front and *restarts workers from
them* mid-incident. A torn file at that moment turns one crashed worker
into an unrestartable shard, so writers must never expose a
partially-written archive under the final name. The pattern here is the
standard one: write the full payload to a sibling temp path, fsync the
file, atomically rename over the target, then fsync the directory so the
rename itself survives a power cut.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["atomic_savez"]


def _fsync_dir(directory: str) -> None:
    """Flush a directory entry (best-effort on filesystems without it)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_savez(path: str, payload: dict, compressed: bool = False) -> str:
    """Write ``payload`` as an ``.npz`` archive that appears atomically.

    ``compressed=False`` (the default) stores members uncompressed —
    the layout :func:`repro.core.artifacts.load_artifact` can memory-map.
    The temp file lives next to the target so ``os.replace`` never
    crosses a filesystem boundary. On any failure the temp file is
    removed and the previous file at ``path`` is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            if compressed:
                np.savez_compressed(handle, **payload)
            else:
                np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(directory)
    return path

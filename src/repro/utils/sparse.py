"""Sparse-matrix helpers used throughout the graph and recommender code.

Everything in the library standardises on CSR float64 matrices; these helpers
keep the normalisation and slicing idioms in one place.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError

__all__ = [
    "row_normalize",
    "degree_vector",
    "bipartite_adjacency",
    "submatrix",
    "binarize",
    "safe_divide_rows",
]


def degree_vector(adjacency: sp.spmatrix) -> np.ndarray:
    """Return the weighted degree (row sum) of each node as a 1-D array."""
    return np.asarray(adjacency.sum(axis=1)).ravel()


def row_normalize(matrix: sp.spmatrix, *, allow_zero_rows: bool = False) -> sp.csr_matrix:
    """Normalise each row of ``matrix`` to sum to one.

    Parameters
    ----------
    matrix:
        Non-negative sparse matrix.
    allow_zero_rows:
        If ``False`` (default), a row whose sum is zero raises
        :class:`GraphError` — for a random-walk transition matrix a zero row
        is a dangling node the caller must handle explicitly. If ``True``,
        zero rows are left as all-zero.
    """
    csr = sp.csr_matrix(matrix, dtype=np.float64)
    sums = degree_vector(csr)
    zero = sums == 0
    if zero.any() and not allow_zero_rows:
        raise GraphError(
            f"{int(zero.sum())} rows have zero sum; the walk is undefined on "
            "isolated nodes (pass allow_zero_rows=True to keep them as sinks)"
        )
    inv = np.zeros_like(sums)
    nonzero = ~zero
    inv[nonzero] = 1.0 / sums[nonzero]
    return sp.csr_matrix(sp.diags(inv) @ csr)


def safe_divide_rows(matrix: sp.spmatrix, divisors: np.ndarray) -> sp.csr_matrix:
    """Divide each row ``i`` of ``matrix`` by ``divisors[i]``, mapping 0/0 to 0."""
    divisors = np.asarray(divisors, dtype=np.float64).ravel()
    if divisors.shape[0] != matrix.shape[0]:
        raise GraphError(
            f"divisors length {divisors.shape[0]} != row count {matrix.shape[0]}"
        )
    inv = np.zeros_like(divisors)
    nonzero = divisors != 0
    inv[nonzero] = 1.0 / divisors[nonzero]
    return sp.csr_matrix(sp.diags(inv) @ sp.csr_matrix(matrix, dtype=np.float64))


def bipartite_adjacency(ratings: sp.spmatrix) -> sp.csr_matrix:
    """Build the symmetric bipartite adjacency from a user×item rating matrix.

    Users occupy node indices ``[0, n_users)`` and items
    ``[n_users, n_users + n_items)``; the adjacency is::

        [[0,   R],
         [R.T, 0]]

    matching the paper's undirected edge-weighted user-item graph where the
    edge weight is the rating (§3.1).
    """
    r = sp.csr_matrix(ratings, dtype=np.float64)
    return sp.bmat(
        [[None, r], [r.T.tocsr(), None]], format="csr", dtype=np.float64
    )


def submatrix(matrix: sp.spmatrix, rows: np.ndarray, cols: np.ndarray | None = None) -> sp.csr_matrix:
    """Extract the (rows × cols) submatrix as CSR (cols defaults to rows)."""
    if cols is None:
        cols = rows
    csr = sp.csr_matrix(matrix)
    return csr[rows][:, cols]


def binarize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Return a copy of ``matrix`` with every stored entry replaced by 1.0."""
    csr = sp.csr_matrix(matrix, dtype=np.float64, copy=True)
    csr.data = np.ones_like(csr.data)
    return csr

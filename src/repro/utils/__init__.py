"""Shared low-level utilities: validation, sparse helpers, sampling, timing."""

from repro.utils.atomic import atomic_savez
from repro.utils.sampling import AliasSampler, sample_without_replacement, zipf_weights
from repro.utils.sparse import (
    binarize,
    bipartite_adjacency,
    degree_vector,
    row_normalize,
    safe_divide_rows,
    submatrix,
)
from repro.utils.timer import StopwatchStats, Timer
from repro.utils.topk import bottom_k_indices, rank_of, top_k_indices
from repro.utils.validation import (
    as_index_array,
    check_fraction,
    check_in_options,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_random_state,
    check_rating_matrix,
)

__all__ = [
    "AliasSampler",
    "atomic_savez",
    "sample_without_replacement",
    "zipf_weights",
    "binarize",
    "bipartite_adjacency",
    "degree_vector",
    "row_normalize",
    "safe_divide_rows",
    "submatrix",
    "StopwatchStats",
    "Timer",
    "bottom_k_indices",
    "rank_of",
    "top_k_indices",
    "as_index_array",
    "check_fraction",
    "check_in_options",
    "check_non_negative_int",
    "check_positive_float",
    "check_positive_int",
    "check_random_state",
    "check_rating_matrix",
]

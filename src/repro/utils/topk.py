"""Top-k selection helpers with deterministic tie-breaking.

Recommendation quality metrics are sensitive to tie handling (many graph
scores tie exactly on small graphs), so all rankings in the library go through
these helpers: ties break by ascending index, making every experiment
deterministic under a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError

__all__ = ["top_k_indices", "bottom_k_indices", "rank_of"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, best first, ties by lowest index.

    ``NaN`` scores are treated as -inf (never selected ahead of real scores).
    ``k`` larger than the array returns a full ranking.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if k <= 0:
        raise ConfigError(f"k must be > 0; got {k}")
    k = min(int(k), scores.size)
    clean = np.where(np.isnan(scores), -np.inf, scores)
    # lexsort: primary key descending score, secondary ascending index.
    order = np.lexsort((np.arange(clean.size), -clean))
    return order[:k]


def bottom_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest scores (used for time/cost rankings)."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    clean = np.where(np.isnan(scores), np.inf, scores)
    return top_k_indices(-clean, k)


def rank_of(scores: np.ndarray, index: int) -> int:
    """Zero-based rank of ``index`` when sorting scores descending.

    Ties are broken by ascending index, consistently with
    :func:`top_k_indices`; used by the Recall@N protocol to find where the
    held-out item lands among the 1001 candidates.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if not 0 <= index < scores.size:
        raise ConfigError(f"index {index} out of range for {scores.size} scores")
    clean = np.where(np.isnan(scores), -np.inf, scores)
    target = clean[index]
    higher = int(np.sum(clean > target))
    tied_before = int(np.sum((clean == target) & (np.arange(clean.size) < index)))
    return higher + tied_before

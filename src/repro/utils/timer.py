"""Lightweight timing helpers for the efficiency experiments (Table 4/5)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StopwatchStats", "per_second"]


def per_second(count: float, seconds: float) -> float:
    """Throughput ``count / seconds``, clamped to 0.0 when no time passed.

    A fast run can finish inside one timer tick (``seconds == 0``);
    returning ``inf`` there would leak ``Infinity`` through report
    summaries into ``json.dump``, which happily writes invalid JSON. The
    degenerate case reads "not measurable", never "infinitely fast". One
    helper so every report class clamps identically.
    """
    return count / seconds if seconds > 0 else 0.0


class Timer:
    """Context manager measuring wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class StopwatchStats:
    """Accumulates repeated timings and reports summary statistics.

    Used by the per-user efficiency measurements, which time one
    recommendation call per test user and report the mean (paper Table 5
    reports per-user online time).
    """

    samples: list = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.samples.append(float(seconds))

    def time(self) -> Timer:
        """Return a context manager whose elapsed time is recorded on exit."""
        stats = self

        class _Recorder(Timer):
            def __exit__(self, *exc):
                super().__exit__(*exc)
                stats.add(self.elapsed)

        return _Recorder()

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

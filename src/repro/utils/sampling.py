"""Weighted sampling utilities for synthetic data generation and protocols.

The synthetic generator draws hundreds of thousands of categorical samples;
:class:`AliasSampler` provides O(1) draws after O(n) setup (Walker's alias
method), and :func:`zipf_weights` provides the heavy-tailed popularity law the
long-tail catalogue is built from.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.utils.validation import check_positive_float, check_positive_int, check_random_state

__all__ = ["AliasSampler", "zipf_weights", "sample_without_replacement", "truncated_lognormal"]


class AliasSampler:
    """Walker alias sampler for a fixed categorical distribution.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights; normalised internally.

    Notes
    -----
    Setup is O(n); each draw is O(1). Draws are reproducible given the
    generator passed to :meth:`sample`.
    """

    def __init__(self, weights):
        w = np.asarray(weights, dtype=np.float64).ravel()
        if w.size == 0:
            raise ConfigError("AliasSampler requires at least one weight")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ConfigError("weights must be finite and non-negative")
        total = w.sum()
        if total <= 0:
            raise ConfigError("weights must not sum to zero")
        self.n = w.size
        self.probabilities = w / total

        scaled = self.probabilities * self.n
        self._prob = np.zeros(self.n)
        self._alias = np.zeros(self.n, dtype=np.int64)
        small = [i for i in range(self.n) if scaled[i] < 1.0]
        large = [i for i in range(self.n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for i in large:
            self._prob[i] = 1.0
        for i in small:  # numerical residue
            self._prob[i] = 1.0

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` category indices."""
        rng = check_random_state(rng)
        size = check_positive_int(size, "size")
        columns = rng.integers(0, self.n, size=size)
        coins = rng.random(size)
        use_alias = coins >= self._prob[columns]
        out = columns.copy()
        out[use_alias] = self._alias[columns[use_alias]]
        return out


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Zipf-law weights ``rank^(-exponent)`` for ranks 1..n, normalised to sum 1.

    ``exponent`` controls tail heaviness: larger values concentrate mass on the
    head; ``exponent≈0.8–1.2`` reproduces the 80/20-like shapes of real rating
    catalogues (paper §1, Figure 1).
    """
    n = check_positive_int(n, "n")
    exponent = check_positive_float(exponent, "exponent")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-exponent)
    return w / w.sum()


def sample_without_replacement(population: int, size: int, rng=None,
                               exclude: np.ndarray | None = None) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``.

    ``exclude`` marks indices that must not be drawn (e.g. items already rated
    by the user in the Recall@N protocol). Raises :class:`ConfigError` if
    fewer than ``size`` indices remain.
    """
    rng = check_random_state(rng)
    population = check_positive_int(population, "population")
    size = check_positive_int(size, "size")
    if exclude is None or len(exclude) == 0:
        if size > population:
            raise ConfigError(f"cannot draw {size} from population of {population}")
        return rng.choice(population, size=size, replace=False)
    mask = np.ones(population, dtype=bool)
    mask[np.asarray(exclude, dtype=np.int64)] = False
    pool = np.flatnonzero(mask)
    if size > pool.size:
        raise ConfigError(
            f"cannot draw {size} distinct indices: only {pool.size} remain after exclusions"
        )
    return rng.choice(pool, size=size, replace=False)


def truncated_lognormal(size: int, mean: float, sigma: float, low: float, high: float,
                        rng=None) -> np.ndarray:
    """Draw lognormal samples clipped by rejection into ``[low, high]``.

    Used for per-user activity (the paper's MovieLens users rated 20–737
    movies — a heavy-tailed but bounded distribution).
    """
    rng = check_random_state(rng)
    size = check_positive_int(size, "size")
    if not low < high:
        raise ConfigError(f"require low < high; got [{low}, {high}]")
    out = np.empty(size)
    filled = 0
    # Rejection sampling with a clip fallback to bound the loop.
    for _ in range(64):
        need = size - filled
        if need == 0:
            break
        draw = rng.lognormal(mean, sigma, size=need * 2)
        keep = draw[(draw >= low) & (draw <= high)][:need]
        out[filled:filled + keep.size] = keep
        filled += keep.size
    if filled < size:
        out[filled:] = np.clip(rng.lognormal(mean, sigma, size=size - filled), low, high)
    return out

"""Input validation helpers shared across the library.

These helpers centralise the boring-but-important argument checks so that
every public entry point fails fast with a :class:`~repro.exceptions.ConfigError`
or :class:`~repro.exceptions.DataError` carrying an actionable message.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigError, DataError

__all__ = [
    "check_random_state",
    "check_positive_int",
    "check_non_negative_int",
    "check_positive_float",
    "check_fraction",
    "check_in_options",
    "check_rating_matrix",
    "as_index_array",
    "as_exclude_array",
    "is_index",
]


def is_index(value, size: int) -> bool:
    """True when ``value`` is a non-bool integer in ``[0, size)``.

    The shared scalar-index gate behind every ``_check_user`` /
    ``_check_item`` in the library: ``isinstance(True, int)`` holds in
    Python (and ``np.True_`` is an integer-convertible scalar), so a stray
    flag would silently address index 1/0 without the explicit bool
    rejection.
    """
    return (not isinstance(value, (bool, np.bool_))
            and isinstance(value, (int, np.integer))
            and 0 <= value < size)


def check_random_state(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an ``int`` seed, an existing
    ``Generator`` (returned unchanged), or a legacy ``RandomState`` (its
    bit generator is wrapped). Anything else raises :class:`ConfigError`.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    if isinstance(seed, np.random.RandomState):
        return np.random.default_rng(seed.randint(0, 2**31 - 1))
    raise ConfigError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be a positive int; got {value!r}")
    if value <= 0:
        raise ConfigError(f"{name} must be > 0; got {value}")
    return int(value)


def check_non_negative_int(value, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be a non-negative int; got {value!r}")
    if value < 0:
        raise ConfigError(f"{name} must be >= 0; got {value}")
    return int(value)


def check_positive_float(value, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.floating, np.integer)):
        raise ConfigError(f"{name} must be a positive number; got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ConfigError(f"{name} must be a finite number > 0; got {value}")
    return value


def check_fraction(value, name: str, *, inclusive_low: bool = False,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval.

    Bounds are exclusive/inclusive according to ``inclusive_low`` /
    ``inclusive_high`` (defaults match the common "(0, 1]" case).
    """
    if isinstance(value, bool) or not isinstance(value, (int, float, np.floating, np.integer)):
        raise ConfigError(f"{name} must be a number in the unit interval; got {value!r}")
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (np.isfinite(value) and low_ok and high_ok):
        low = "[0" if inclusive_low else "(0"
        high = "1]" if inclusive_high else "1)"
        raise ConfigError(f"{name} must be in {low}, {high}; got {value}")
    return value


def check_in_options(value, name: str, options: Iterable) -> object:
    """Validate that ``value`` is one of ``options``."""
    options = tuple(options)
    if value not in options:
        raise ConfigError(f"{name} must be one of {options}; got {value!r}")
    return value


def check_rating_matrix(matrix) -> sp.csr_matrix:
    """Validate and canonicalise a user-item rating matrix.

    Accepts any scipy sparse matrix or a dense 2-D array; returns CSR with
    float64 data, duplicate entries summed and explicit zeros removed. All
    stored ratings must be finite and strictly positive (a rating of zero is
    indistinguishable from "not rated" in the sparse encoding the paper uses).
    """
    if sp.issparse(matrix):
        csr = sp.csr_matrix(matrix, dtype=np.float64, copy=True)
    else:
        arr = np.asarray(matrix, dtype=np.float64)
        if arr.ndim != 2:
            raise DataError(f"rating matrix must be 2-D; got ndim={arr.ndim}")
        csr = sp.csr_matrix(arr)
    if csr.shape[0] == 0 or csr.shape[1] == 0:
        raise DataError(f"rating matrix must be non-empty; got shape {csr.shape}")
    csr.sum_duplicates()
    csr.eliminate_zeros()
    if csr.nnz == 0:
        raise DataError("rating matrix has no stored ratings")
    if not np.all(np.isfinite(csr.data)):
        raise DataError("rating matrix contains non-finite values")
    if np.any(csr.data < 0):
        raise DataError("ratings must be positive; found negative entries")
    return csr


def as_index_array(indices: Sequence[int] | np.ndarray, size: int, name: str) -> np.ndarray:
    """Convert ``indices`` to a validated int64 array of indices into ``[0, size)``.

    A scalar is treated as a cohort of one. Booleans are rejected
    explicitly: ``isinstance(True, int)`` holds in Python, so without the
    check a stray flag would silently address index 1/0 — a class of bug
    that must fail loudly at the API boundary. The scan runs on the Python
    sequence *before* ``np.asarray``, because numpy promotes mixed
    int/bool lists to int64 and would hide the flag — which also means
    callers must pass their raw input here, not ``np.asarray(...)`` of it.
    """
    if not isinstance(indices, np.ndarray):
        try:
            items = list(indices)
        except TypeError:
            items = [indices]  # scalar → cohort of one
        if any(isinstance(v, (bool, np.bool_)) for v in items):
            raise ConfigError(
                f"{name} must contain integers; got booleans (True/False "
                "are not user/item indices)"
            )
        indices = items
    arr = np.atleast_1d(np.asarray(indices))
    if arr.dtype == np.bool_ or (arr.dtype == object
                                 and any(isinstance(v, (bool, np.bool_))
                                         for v in arr.ravel())):
        raise ConfigError(
            f"{name} must contain integers; got booleans (True/False are not "
            "user/item indices)"
        )
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    if arr.ndim != 1:
        raise ConfigError(f"{name} must be 1-D; got ndim={arr.ndim}")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == arr.astype(np.int64)):
            arr = arr.astype(np.int64)
        else:
            raise ConfigError(f"{name} must contain integers; got dtype {arr.dtype}")
    arr = arr.astype(np.int64)
    if arr.min() < 0 or arr.max() >= size:
        raise ConfigError(
            f"{name} contains out-of-range indices (valid range [0, {size}))"
        )
    return arr


def as_exclude_array(exclude, name: str = "exclude") -> np.ndarray:
    """Normalise an optional iterable of item indices for exclusion filters.

    Exclusion sets arrive in every shape callers find convenient — ``None``,
    ``[]``, ``set()``, generators, int or float ndarrays — and are only used
    to *drop* items from a ranked list, so out-of-range indices are harmless
    (they simply match nothing) and are not range-checked here. What is
    checked: booleans are rejected (``True`` is not item 1) and float inputs
    must be integral — ``np.asarray(list(exclude), dtype=np.int64)`` would
    silently truncate ``1.7`` to item 1, serving a wrong exclusion.
    Always returns an int64 array (empty for ``None``/empty input).
    """
    if exclude is None:
        return np.empty(0, dtype=np.int64)
    if isinstance(exclude, np.ndarray):
        arr = np.atleast_1d(exclude)
    else:
        try:
            items = list(exclude)
        except TypeError:
            raise ConfigError(
                f"{name} must be an iterable of item indices; "
                f"got {type(exclude).__name__}"
            ) from None
        # Scan before np.asarray: numpy promotes mixed int/bool lists to
        # int64, which would let a stray True slip through as item 1.
        if any(isinstance(v, (bool, np.bool_)) for v in items):
            raise ConfigError(f"{name} must contain item indices; got booleans")
        arr = np.asarray(items)
    if arr.ndim != 1:
        raise ConfigError(f"{name} must be 1-D; got ndim={arr.ndim}")
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    if arr.dtype == np.bool_ or (arr.dtype == object
                                 and any(isinstance(v, (bool, np.bool_))
                                         for v in arr)):
        raise ConfigError(
            f"{name} must contain item indices; got booleans"
        )
    if np.issubdtype(arr.dtype, np.integer):
        return arr.astype(np.int64)
    if np.issubdtype(arr.dtype, np.floating):
        cast = arr.astype(np.int64)
        if np.all(arr == cast):
            return cast
        raise ConfigError(
            f"{name} contains non-integral values; item indices must be whole "
            "numbers"
        )
    raise ConfigError(f"{name} must contain integers; got dtype {arr.dtype}")

"""Latent topic models over rating data: the paper's collapsed Gibbs LDA
(Algorithm 2) plus a fast CVB0 engine, behind one fitted-model container."""

from repro.topics.lda_cvb0 import fit_lda_cvb0
from repro.topics.lda_gibbs import GibbsState, fit_lda_gibbs
from repro.topics.model import LatentTopicModel, default_alpha

__all__ = [
    "fit_lda_cvb0",
    "GibbsState",
    "fit_lda_gibbs",
    "LatentTopicModel",
    "default_alpha",
    "fit_lda",
]


def fit_lda(dataset, n_topics, method: str = "cvb0", **kwargs) -> LatentTopicModel:
    """Train LDA with the chosen engine (``"cvb0"`` default, or ``"gibbs"``).

    Thin dispatcher over :func:`fit_lda_cvb0` / :func:`fit_lda_gibbs`;
    keyword arguments are forwarded to the engine.
    """
    from repro.exceptions import ConfigError

    if method == "cvb0":
        return fit_lda_cvb0(dataset, n_topics, **kwargs)
    if method == "gibbs":
        return fit_lda_gibbs(dataset, n_topics, **kwargs)
    raise ConfigError(f"unknown LDA method {method!r}; expected 'cvb0' or 'gibbs'")

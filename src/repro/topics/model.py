"""Fitted latent-topic model over user-item rating data (paper §4.2.3).

The paper trains an LDA model where a user is a "document" and each rated
item appears ``w(u, i)`` times (the rating value) as a "word". The fitted
model yields the per-user topic distribution θ (Eq. 14) — the input to
topic-based user entropy (Eq. 11) — and the per-topic item distribution φ
(Eq. 13) — which also powers the LDA recommendation baseline (§5.1.1) and
the Table 1 topic listings.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError, DataError
from repro.utils.topk import top_k_indices
from repro.utils.validation import check_positive_int

__all__ = ["LatentTopicModel", "default_alpha"]


def default_alpha(n_topics: int) -> float:
    """The paper's default Dirichlet prior on θ: ``α = 50 / K`` (§5.2)."""
    return 50.0 / check_positive_int(n_topics, "n_topics")


class LatentTopicModel:
    """Container for a fitted LDA model.

    Parameters
    ----------
    user_topics:
        θ, shape ``(n_users, n_topics)``; rows are probability vectors.
    topic_items:
        φ, shape ``(n_topics, n_items)``; rows are probability vectors.
    alpha, beta:
        The Dirichlet hyper-parameters the model was trained with.

    Notes
    -----
    Validation is strict (rows must sum to 1 within tolerance); both matrices
    are copied and set read-only.
    """

    def __init__(self, user_topics: np.ndarray, topic_items: np.ndarray,
                 alpha: float, beta: float):
        theta = np.array(user_topics, dtype=np.float64, copy=True)
        phi = np.array(topic_items, dtype=np.float64, copy=True)
        if theta.ndim != 2 or phi.ndim != 2:
            raise DataError("user_topics and topic_items must be 2-D")
        if theta.shape[1] != phi.shape[0]:
            raise DataError(
                f"topic count mismatch: theta has {theta.shape[1]}, phi has {phi.shape[0]}"
            )
        for name, m in (("user_topics", theta), ("topic_items", phi)):
            if np.any(m < 0) or not np.all(np.isfinite(m)):
                raise DataError(f"{name} must be finite and non-negative")
            sums = m.sum(axis=1)
            if not np.allclose(sums, 1.0, atol=1e-6):
                raise DataError(f"{name} rows must sum to 1 (max dev {np.abs(sums - 1).max():.2e})")
        theta.flags.writeable = False
        phi.flags.writeable = False
        self.user_topics = theta
        self.topic_items = phi
        self.alpha = float(alpha)
        self.beta = float(beta)

    @property
    def n_users(self) -> int:
        return self.user_topics.shape[0]

    @property
    def n_topics(self) -> int:
        return self.user_topics.shape[1]

    @property
    def n_items(self) -> int:
        return self.topic_items.shape[1]

    def __repr__(self) -> str:
        return (
            f"LatentTopicModel(n_users={self.n_users}, n_topics={self.n_topics}, "
            f"n_items={self.n_items}, alpha={self.alpha:.3f}, beta={self.beta:.3f})"
        )

    # -- queries -----------------------------------------------------------

    def top_items(self, topic: int, n: int = 5) -> np.ndarray:
        """The ``n`` highest-probability items of a topic (Table 1 rows)."""
        if not 0 <= topic < self.n_topics:
            raise ConfigError(f"topic {topic} out of range [0, {self.n_topics})")
        return top_k_indices(self.topic_items[topic], n)

    def user_entropy(self, user: int | None = None) -> np.ndarray | float:
        """Shannon entropy of θ rows (Eq. 11), in nats.

        With ``user=None`` returns the entropy of every user as an array.
        """
        theta = self.user_topics if user is None else self.user_topics[[user]]
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(theta > 0, theta * np.log(theta), 0.0)
        entropy = -terms.sum(axis=1)
        return entropy if user is None else float(entropy[0])

    def score_items(self, user: int) -> np.ndarray:
        """Predicted preference ``p(i|u) = Σ_z θ_uz φ_zi`` for every item."""
        if not 0 <= user < self.n_users:
            raise ConfigError(f"user {user} out of range [0, {self.n_users})")
        return self.user_topics[user] @ self.topic_items

    def perplexity(self, dataset: RatingDataset) -> float:
        """Weighted per-token perplexity of the dataset under the model.

        Tokens are item occurrences with multiplicity ``w(u, i)``; lower is
        better. Used by the convergence tests (perplexity must not increase
        over training) and by model-selection ablations.
        """
        if dataset.n_users != self.n_users or dataset.n_items != self.n_items:
            raise DataError(
                f"dataset shape ({dataset.n_users}, {dataset.n_items}) does not "
                f"match model ({self.n_users}, {self.n_items})"
            )
        coo = dataset.matrix.tocoo()
        probs = np.einsum(
            "nk,nk->n", self.user_topics[coo.row], self.topic_items[:, coo.col].T
        )
        probs = np.maximum(probs, 1e-300)
        total_weight = coo.data.sum()
        log_likelihood = float(np.sum(coo.data * np.log(probs)))
        return float(np.exp(-log_likelihood / total_weight))

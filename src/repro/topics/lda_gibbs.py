"""Collapsed Gibbs sampling for LDA over rating data — the paper's Algorithm 2.

A user ``u`` is a document whose "words" are the items they rated, each
repeated ``w(u, i)`` times (the star value). Topic assignments are updated
token-by-token with the collapsed conditional of Eq. 12::

    P(z_token = z | rest) ∝ (n_item,z + β) / (n_·,z + N_I β)
                          · (n_u,z + α) / (n_u,· + N_T α)

and the point estimates of Eq. 13/14 produce φ and θ. The per-user
normaliser ``n_u,· + N_T α`` is constant across z and therefore dropped.

This sampler is the *faithful* engine (it is what the paper describes);
:mod:`repro.topics.lda_cvb0` provides a deterministic vectorised alternative
that is ~50× faster and converges to comparable solutions — the default for
the large experiment sweeps, with an ablation bench comparing the two.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.topics.model import LatentTopicModel, default_alpha
from repro.utils.validation import check_positive_int, check_random_state

__all__ = ["fit_lda_gibbs", "GibbsState"]


class GibbsState:
    """Mutable sampler state: token arrays and topic-count matrices.

    Exposed for tests (the count invariants are property-tested) and for
    callers that want to resume sampling.
    """

    def __init__(self, dataset: RatingDataset, n_topics: int, rng,
                 max_token_weight: int | None = None):
        coo = dataset.matrix.tocoo()
        weights = np.rint(coo.data).astype(np.int64)
        weights = np.maximum(weights, 1)
        if max_token_weight is not None:
            weights = np.minimum(weights, int(max_token_weight))
        self.token_users = np.repeat(coo.row.astype(np.int64), weights)
        self.token_items = np.repeat(coo.col.astype(np.int64), weights)
        self.n_tokens = self.token_users.size
        self.n_topics = n_topics
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items

        self.assignments = rng.integers(0, n_topics, size=self.n_tokens)
        self.user_topic = np.zeros((self.n_users, n_topics), dtype=np.int64)
        self.item_topic = np.zeros((self.n_items, n_topics), dtype=np.int64)
        self.topic_totals = np.zeros(n_topics, dtype=np.int64)
        np.add.at(self.user_topic, (self.token_users, self.assignments), 1)
        np.add.at(self.item_topic, (self.token_items, self.assignments), 1)
        np.add.at(self.topic_totals, self.assignments, 1)

    def sweep(self, alpha: float, beta: float, rng) -> None:
        """One full Gibbs sweep over all tokens (Algorithm 2's inner loops)."""
        n_items_beta = self.n_items * beta
        uniforms = rng.random(self.n_tokens)
        for t in range(self.n_tokens):
            u = self.token_users[t]
            i = self.token_items[t]
            z = self.assignments[t]
            # Remove the token from the counts (Algorithm 2 line 8).
            self.user_topic[u, z] -= 1
            self.item_topic[i, z] -= 1
            self.topic_totals[z] -= 1
            # Collapsed conditional (Eq. 12; per-user normaliser dropped).
            probs = (
                (self.item_topic[i] + beta)
                / (self.topic_totals + n_items_beta)
                * (self.user_topic[u] + alpha)
            )
            cumulative = np.cumsum(probs)
            z = int(np.searchsorted(cumulative, uniforms[t] * cumulative[-1]))
            z = min(z, self.n_topics - 1)
            # Reinsert with the new assignment (Algorithm 2 line 14).
            self.assignments[t] = z
            self.user_topic[u, z] += 1
            self.item_topic[i, z] += 1
            self.topic_totals[z] += 1

    def estimates(self, alpha: float, beta: float) -> tuple[np.ndarray, np.ndarray]:
        """Point estimates θ̂ (Eq. 14) and φ̂ (Eq. 13) from current counts."""
        theta = (self.user_topic + alpha).astype(np.float64)
        theta /= theta.sum(axis=1, keepdims=True)
        phi = (self.item_topic.T + beta).astype(np.float64)
        phi /= phi.sum(axis=1, keepdims=True)
        return theta, phi


def fit_lda_gibbs(dataset: RatingDataset, n_topics: int, n_iterations: int = 100,
                  alpha: float | None = None, beta: float = 0.1,
                  burn_in_fraction: float = 0.5, n_samples: int = 5,
                  max_token_weight: int | None = None,
                  seed=0) -> LatentTopicModel:
    """Train LDA on rating data by collapsed Gibbs sampling (Algorithm 2).

    Parameters
    ----------
    dataset:
        Ratings; values are rounded to integers and used as token counts
        (``w(u, i)`` in the paper).
    n_topics:
        K, the topic count.
    n_iterations:
        Total Gibbs sweeps.
    alpha, beta:
        Dirichlet priors; defaults are the paper's α = 50/K and β = 0.1.
    burn_in_fraction:
        Fraction of sweeps discarded before averaging estimates.
    n_samples:
        Number of evenly spaced post-burn-in states averaged into the final
        θ/φ (averaging tames Gibbs noise).
    max_token_weight:
        Optional cap on per-rating multiplicity — trades fidelity for speed
        on huge datasets.
    seed:
        Random seed or generator.
    """
    n_topics = check_positive_int(n_topics, "n_topics")
    n_iterations = check_positive_int(n_iterations, "n_iterations")
    n_samples = check_positive_int(n_samples, "n_samples")
    if alpha is None:
        alpha = default_alpha(n_topics)
    if alpha <= 0 or beta <= 0:
        raise ConfigError(f"alpha and beta must be > 0; got alpha={alpha}, beta={beta}")
    if not 0.0 <= burn_in_fraction < 1.0:
        raise ConfigError(f"burn_in_fraction must be in [0, 1); got {burn_in_fraction}")
    rng = check_random_state(seed)

    state = GibbsState(dataset, n_topics, rng, max_token_weight=max_token_weight)
    burn_in = int(n_iterations * burn_in_fraction)
    sample_iters = np.unique(
        np.linspace(burn_in, n_iterations - 1, num=min(n_samples, n_iterations - burn_in),
                    dtype=np.int64)
    )
    theta_acc = np.zeros((dataset.n_users, n_topics))
    phi_acc = np.zeros((n_topics, dataset.n_items))
    taken = 0
    for iteration in range(n_iterations):
        state.sweep(alpha, beta, rng)
        if iteration in sample_iters:
            theta, phi = state.estimates(alpha, beta)
            theta_acc += theta
            phi_acc += phi
            taken += 1
    theta_acc /= taken
    phi_acc /= taken
    # Averaging preserves row-stochasticity, but renormalise against drift.
    theta_acc /= theta_acc.sum(axis=1, keepdims=True)
    phi_acc /= phi_acc.sum(axis=1, keepdims=True)
    return LatentTopicModel(theta_acc, phi_acc, alpha=alpha, beta=beta)

"""CVB0 — collapsed variational Bayes (zeroth order) LDA over rating data.

The paper trains its topic model with collapsed Gibbs sampling (Algorithm 2);
CVB0 (Asuncion et al., *On smoothing and inference for topic models*, UAI
2009) optimises the same collapsed objective with deterministic updates.
Instead of a hard topic per token, each (user, item) rating pair keeps a
responsibility vector γ over topics; counts are expectations::

    γ_ui,z ∝ (N_iz − γ + β) / (N_z − γ + N_I β) · (N_uz − γ + α)

where all counts weight each pair by ``w(u, i)``. The updates are fully
vectorisable over the nonzeros of the rating matrix, giving a ~50× speedup
over the token-level sampler at indistinguishable downstream quality (see
``benchmarks/bench_ablation_lda.py``). This engine is the default for the
big experiment sweeps; the Gibbs engine remains the faithful reference.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.topics.model import LatentTopicModel, default_alpha
from repro.utils.validation import check_positive_int, check_random_state

__all__ = ["fit_lda_cvb0"]


def fit_lda_cvb0(dataset: RatingDataset, n_topics: int, n_iterations: int = 60,
                 alpha: float | None = None, beta: float = 0.1,
                 tol: float = 1e-5, seed=0) -> LatentTopicModel:
    """Train LDA with CVB0 updates.

    Parameters mirror :func:`repro.topics.lda_gibbs.fit_lda_gibbs`; ``tol``
    stops early when the mean absolute change of γ drops below it.
    """
    n_topics = check_positive_int(n_topics, "n_topics")
    n_iterations = check_positive_int(n_iterations, "n_iterations")
    if alpha is None:
        alpha = default_alpha(n_topics)
    if alpha <= 0 or beta <= 0:
        raise ConfigError(f"alpha and beta must be > 0; got alpha={alpha}, beta={beta}")
    rng = check_random_state(seed)

    coo = dataset.matrix.tocoo()
    users = coo.row.astype(np.int64)
    items = coo.col.astype(np.int64)
    weights = coo.data.astype(np.float64)
    nnz = users.size
    n_users, n_items = dataset.n_users, dataset.n_items

    # Sparse indicator matrices: aggregate pair responsibilities to counts.
    user_agg = sp.csr_matrix(
        (np.ones(nnz), (users, np.arange(nnz))), shape=(n_users, nnz)
    )
    item_agg = sp.csr_matrix(
        (np.ones(nnz), (items, np.arange(nnz))), shape=(n_items, nnz)
    )

    gamma = rng.dirichlet(np.ones(n_topics), size=nnz)
    weighted = gamma * weights[:, None]
    user_topic = user_agg @ weighted          # N_uz
    item_topic = item_agg @ weighted          # N_iz
    topic_totals = weighted.sum(axis=0)       # N_z

    n_items_beta = n_items * beta
    for _ in range(n_iterations):
        # Subtract one token's worth of own responsibility (CVB0 correction).
        item_term = item_topic[items] - gamma + beta
        user_term = user_topic[users] - gamma + alpha
        total_term = topic_totals[None, :] - gamma + n_items_beta
        new_gamma = item_term * user_term / total_term
        new_gamma = np.maximum(new_gamma, 1e-300)
        new_gamma /= new_gamma.sum(axis=1, keepdims=True)

        delta = float(np.abs(new_gamma - gamma).mean())
        gamma = new_gamma
        weighted = gamma * weights[:, None]
        user_topic = user_agg @ weighted
        item_topic = item_agg @ weighted
        topic_totals = weighted.sum(axis=0)
        if delta < tol:
            break

    theta = user_topic + alpha
    theta /= theta.sum(axis=1, keepdims=True)
    phi = item_topic.T + beta
    phi /= phi.sum(axis=1, keepdims=True)
    return LatentTopicModel(theta, phi, alpha=alpha, beta=beta)

"""Evaluation: the paper's metrics (§5.1.3), the Recall@N protocol (§5.2.1),
the top-N experiment harness (§5.2.2–5.2.6), the simulated user study
(§5.2.7), and text/CSV reporting."""

from repro.eval.harness import TopNExperiment, TopNReport
from repro.eval.metrics import (
    diversity,
    list_similarity,
    mean_popularity,
    popularity_at_rank,
    recall_at,
    recall_curve,
    recommendation_gini,
    tail_share,
)
from repro.eval.protocol import RecallProtocol, RecallResult
from repro.eval.reporting import format_series, format_table, results_dir, write_csv
from repro.eval.significance import RecallInterval, bootstrap_recall, bootstrap_recall_difference
from repro.eval.user_study import SimulatedPanel, StudyReport

__all__ = [
    "TopNExperiment",
    "TopNReport",
    "diversity",
    "list_similarity",
    "mean_popularity",
    "popularity_at_rank",
    "recall_at",
    "recall_curve",
    "recommendation_gini",
    "tail_share",
    "RecallProtocol",
    "RecallResult",
    "RecallInterval",
    "bootstrap_recall",
    "bootstrap_recall_difference",
    "format_series",
    "format_table",
    "results_dir",
    "write_csv",
    "SimulatedPanel",
    "StudyReport",
]

"""The Recall@N ranking protocol (paper §5.2.1).

For every held-out (user, favourite-long-tail-item) pair the protocol:

1. samples ``n_distractors`` (paper: 1000) items the user never rated;
2. asks the recommender to score the target among the distractors;
3. records the target's rank in that 1001-item list.

Recall@N is then the fraction of test cases ranked inside the top N
(Eq. 16). Distractor draws are seeded per test case, so every algorithm is
evaluated against the *identical* candidate sets — the paper's "fair to all
competitors" setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Recommender
from repro.data.splits import RecallSplit
from repro.eval.metrics import recall_curve
from repro.exceptions import ConfigError, NotFittedError
from repro.utils.sampling import sample_without_replacement
from repro.utils.topk import rank_of
from repro.utils.validation import check_positive_int, check_random_state

__all__ = ["RecallProtocol", "RecallResult"]


@dataclass(frozen=True)
class RecallResult:
    """Per-algorithm protocol output.

    Attributes
    ----------
    name:
        The recommender's reported name.
    ranks:
        Zero-based rank of the target in its 1001-candidate list, one per
        test case.
    max_n:
        Largest N the recall curve was computed for.
    """

    name: str
    ranks: np.ndarray
    max_n: int

    @property
    def recall(self) -> np.ndarray:
        """Recall@N for N = 1..max_n (Figure 5's series)."""
        return recall_curve(self.ranks, self.max_n)

    def recall_at(self, n: int) -> float:
        if not 1 <= n <= self.max_n:
            raise ConfigError(f"N must be in [1, {self.max_n}]; got {n}")
        return float(self.recall[n - 1])


class RecallProtocol:
    """Runs the 1001-item ranking protocol for any number of recommenders.

    Parameters
    ----------
    split:
        A :class:`~repro.data.splits.RecallSplit`; recommenders must be
        fitted on ``split.train``.
    n_distractors:
        Unrated items sampled per test case (paper: 1000).
    max_n:
        Largest N of the recall curve (paper plots 1..50).
    seed:
        Base seed; case ``c`` draws its distractors from ``(seed, c)`` so
        candidate sets are identical across algorithms.
    """

    def __init__(self, split: RecallSplit, n_distractors: int = 1000,
                 max_n: int = 50, seed=0):
        if not isinstance(split, RecallSplit):
            raise ConfigError("split must be a RecallSplit")
        self.split = split
        self.n_distractors = check_positive_int(n_distractors, "n_distractors")
        self.max_n = check_positive_int(max_n, "max_n")
        self.seed = seed
        self._candidate_cache: list[tuple[int, np.ndarray]] | None = None

    # -- candidate sets -------------------------------------------------------

    def _candidates(self) -> list[tuple[int, np.ndarray]]:
        """Per test case: (user, candidate item array with target first)."""
        if self._candidate_cache is not None:
            return self._candidate_cache
        source = self.split.source
        cache = []
        for case_index, (user, target) in enumerate(self.split.test_cases):
            rng = check_random_state(
                np.random.SeedSequence(
                    [int(np.abs(hash(self.seed)) % (2**31)), case_index]
                ).generate_state(1)[0]
            )
            # Exclude everything the user ever rated (source data), plus the
            # target itself. On catalogues smaller than the requested
            # distractor count the draw is capped at the available pool
            # (the paper's 1000 assumes a several-thousand-item catalogue).
            exclude = np.append(source.items_of_user(user), target)
            available = source.n_items - np.unique(exclude).size
            n_draw = min(self.n_distractors, available)
            if n_draw <= 0:
                raise ConfigError(
                    f"user {user} has rated the whole catalogue; no distractors left"
                )
            distractors = sample_without_replacement(
                source.n_items, n_draw, rng, exclude=exclude
            )
            candidates = np.concatenate(([target], distractors)).astype(np.int64)
            cache.append((user, candidates))
        self._candidate_cache = cache
        return cache

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, recommender: Recommender) -> RecallResult:
        """Rank every test case's target with ``recommender``.

        The recommender must already be fitted on ``split.train``; scoring a
        candidate set uses :meth:`Recommender.score_items` so the exact same
        code path as production recommendation is measured.
        """
        if not recommender.is_fitted:
            raise NotFittedError(
                f"{type(recommender).__name__} must be fitted on split.train "
                "before evaluation"
            )
        ranks = np.empty(self.split.n_cases, dtype=np.int64)
        for case_index, (user, candidates) in enumerate(self._candidates()):
            scores = recommender.score_items(user, candidates=candidates)
            # -inf scores (unreachable items) are legal; rank_of places the
            # target after every finite-scored candidate in that case.
            ranks[case_index] = rank_of(scores, 0)
        return RecallResult(name=recommender.name, ranks=ranks, max_n=self.max_n)

    def evaluate_all(self, recommenders) -> dict[str, RecallResult]:
        """Evaluate several fitted recommenders on identical candidates."""
        results: dict[str, RecallResult] = {}
        for recommender in recommenders:
            result = self.evaluate(recommender)
            results[result.name] = result
        return results

"""Plain-text and CSV rendering of experiment results.

The benchmark suite has no plotting dependency, so every table/figure is
emitted as (a) an aligned text table or series printed to stdout and (b) a
CSV file under ``benchmarks/results/`` for downstream plotting.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigError

__all__ = ["format_table", "format_series", "write_csv", "results_dir"]


def format_table(rows: Sequence[Mapping], title: str | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render dict-rows as an aligned monospace table.

    Column order follows the first row's key order; missing cells render
    as ``-``.
    """
    rows = list(rows)
    if not rows:
        raise ConfigError("no rows to format")
    columns = list(rows[0].keys())

    def render(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[render(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(line[i]) for line in table))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, np.ndarray], x_label: str = "N",
                  title: str | None = None, x_values: Sequence | None = None,
                  float_format: str = "{:.3f}") -> str:
    """Render named 1-D series (e.g. recall curves) side-by-side by index."""
    series = {k: np.asarray(v).ravel() for k, v in series.items()}
    if not series:
        raise ConfigError("no series to format")
    length = max(v.size for v in series.values())
    if x_values is None:
        x_values = list(range(1, length + 1))
    rows = []
    for idx in range(length):
        row = {x_label: x_values[idx]}
        for name, values in series.items():
            row[name] = float(values[idx]) if idx < values.size else None
        rows.append(row)
    return format_table(rows, title=title, float_format=float_format)


def results_dir() -> str:
    """``benchmarks/results`` relative to the repository root (created)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_csv(rows: Sequence[Mapping], path: str) -> str:
    """Write dict-rows to ``path`` as CSV (columns from the first row)."""
    rows = list(rows)
    if not rows:
        raise ConfigError("no rows to write")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k) for k in columns})
    return path

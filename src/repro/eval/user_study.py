"""Simulated user study (paper §5.2.7, Table 6).

The paper hires 50 movie-lovers, shows each 10 recommendations, and collects
four judgments per movie: Preference (1–5), Novelty (did you already know
it?), Serendipity (1–5), and an overall Score (1–5). Humans are not
available to a reproduction, so this module simulates the panel with the
synthetic ground truth (see DESIGN.md §6). The judgment model encodes three
regularities the paper's own survey surfaced:

* **Knownness grows with popularity, but saturates well below 1** — the
  paper's evaluators knew "more than one-third" of the head recommendations
  (PureSVD novelty 0.64), not all of them. ``max_knownness`` caps the curve.
* **Hits have broad appeal** — evaluators scored popular on-taste *and*
  popular off-taste movies highly (LDA preference 4.12 despite zero
  personalisation of the head). ``hit_appeal`` gives high-popularity items a
  floor affinity.
* **Serendipity is novelty-gated taste match** — known items surprise
  nobody; unknown items delight exactly when they match the evaluator's own
  niche (AC2 serendipity 4.78 vs PureSVD 2.12).

The *shape* this reproduces (and the Table 6 bench asserts): graph methods
win novelty and serendipity by a wide margin; latent-factor baselines win
raw preference slightly; DPPR is novel but mismatched, dragging its score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Recommender
from repro.data.synthetic import SyntheticData
from repro.exceptions import ConfigError, NotFittedError
from repro.utils.validation import check_fraction, check_positive_int, check_random_state

__all__ = ["SimulatedPanel", "StudyReport"]


@dataclass(frozen=True)
class StudyReport:
    """Mean panel answers for one algorithm (one Table 6 row)."""

    name: str
    preference: float
    novelty: float
    serendipity: float
    score: float
    n_judgments: int

    def row(self) -> dict:
        return {
            "algorithm": self.name,
            "preference": round(self.preference, 2),
            "novelty": round(self.novelty, 2),
            "serendipity": round(self.serendipity, 2),
            "score": round(self.score, 2),
        }


class SimulatedPanel:
    """A panel of synthetic evaluators with known ground-truth tastes.

    Parameters
    ----------
    data:
        The :class:`SyntheticData` the recommenders were trained on — its
        ``user_topics`` and ``item_genres`` ground truth drives the
        judgments.
    n_evaluators:
        Panel size (paper: 50).
    knownness_quantile, knownness_exponent, max_knownness:
        Popularity model of "I already knew this item": knownness rises
        polynomially with popularity up to the ``knownness_quantile``
        pivot and saturates at ``max_knownness`` (≈ the paper's "more than
        one-third known" for head recommendations).
    hit_appeal:
        Affinity floor for the most popular items (broad appeal of hits);
        scaled by the squared popularity percentile.
    preference_curvature:
        Exponent (< 1 = concave) mapping affinity to the 1–5 scale — humans
        rate mild matches generously.
    preference_noise:
        Std-dev of the Gaussian judgment noise on the 1–5 scales.
    score_blend:
        Weight of preference (vs serendipity) in the overall score.
    seed:
        Seed for evaluator sampling.
    """

    def __init__(self, data: SyntheticData, n_evaluators: int = 50,
                 knownness_quantile: float = 0.9, knownness_exponent: float = 1.5,
                 max_knownness: float = 0.45, hit_appeal: float = 0.65,
                 preference_curvature: float = 0.5,
                 preference_noise: float = 0.25, score_blend: float = 0.8,
                 seed=0):
        if not isinstance(data, SyntheticData):
            raise ConfigError("data must be SyntheticData (ground truth is required)")
        self.data = data
        n_evaluators = check_positive_int(n_evaluators, "n_evaluators")
        self.max_knownness = check_fraction(max_knownness, "max_knownness")
        self.hit_appeal = check_fraction(hit_appeal, "hit_appeal", inclusive_low=True)
        self.preference_curvature = float(preference_curvature)
        if self.preference_curvature <= 0:
            raise ConfigError("preference_curvature must be > 0")
        self.score_blend = check_fraction(score_blend, "score_blend", inclusive_low=True)
        self.preference_noise = float(preference_noise)
        rng = check_random_state(seed)
        self._rng = rng

        dataset = data.dataset
        eligible = np.flatnonzero(dataset.user_activity() >= 3)
        if eligible.size < n_evaluators:
            raise ConfigError(
                f"only {eligible.size} users with >= 3 ratings; "
                f"cannot seat a panel of {n_evaluators}"
            )
        self.evaluators = np.sort(rng.choice(eligible, size=n_evaluators, replace=False))

        popularity = dataset.item_popularity().astype(np.float64)
        pivot = max(np.quantile(popularity, knownness_quantile), 1.0)
        self.p_known = self.max_knownness * np.minimum(
            popularity / pivot, 1.0
        ) ** knownness_exponent
        # Popularity percentile drives the broad-appeal floor of hits.
        order = np.argsort(np.argsort(popularity))
        self.popularity_percentile = order / max(popularity.size - 1, 1)

    # -- judgment model ------------------------------------------------------

    def taste_affinity(self, user: int, item: int) -> float:
        """Ground-truth taste match in [0, 1] (relative to the user's peak)."""
        theta = self.data.user_topics[user]
        return float(theta[self.data.item_genres[item]] / max(theta.max(), 1e-12))

    def _scale(self, affinity: float, rng) -> float:
        """Map affinity to the 1–5 judgment scale (concave + noise)."""
        value = 1.0 + 4.0 * affinity ** self.preference_curvature
        return float(np.clip(value + rng.normal(0.0, self.preference_noise), 1.0, 5.0))

    def judge(self, user: int, item: int, rng=None) -> dict:
        """One evaluator's answers for one recommended item."""
        rng = self._rng if rng is None else rng
        taste = self.taste_affinity(user, item)
        appeal = self.hit_appeal * self.popularity_percentile[item] ** 2
        preference = self._scale(max(taste, appeal), rng)
        known = rng.random() < self.p_known[item]
        novelty = 0.0 if known else 1.0
        if known:
            # Familiar items surprise nobody; a sliver of variance remains.
            serendipity = float(np.clip(1.0 + rng.normal(0.6, 0.3), 1.0, 5.0))
        else:
            serendipity = self._scale(taste, rng)
        score = float(np.clip(
            self.score_blend * preference + (1 - self.score_blend) * serendipity,
            1.0, 5.0,
        ))
        return {
            "preference": preference,
            "novelty": novelty,
            "serendipity": serendipity,
            "score": score,
        }

    # -- panel evaluation -----------------------------------------------------

    def evaluate(self, recommender: Recommender, k: int = 10, seed=1) -> StudyReport:
        """Run the whole panel against one fitted recommender.

        Judgment draws are seeded per (seed, evaluator), so different
        algorithms face identical evaluator behaviour.
        """
        if not recommender.is_fitted:
            raise NotFittedError(
                f"{type(recommender).__name__} must be fitted before the study"
            )
        k = check_positive_int(k, "k")
        answers: dict[str, list[float]] = {
            "preference": [], "novelty": [], "serendipity": [], "score": [],
        }
        for evaluator in self.evaluators:
            rng = check_random_state(
                np.random.SeedSequence([int(seed), int(evaluator)]).generate_state(1)[0]
            )
            for item in recommender.recommend_items(int(evaluator), k):
                judgment = self.judge(int(evaluator), int(item), rng)
                for key, value in judgment.items():
                    answers[key].append(value)
        n = len(answers["score"])
        if n == 0:
            raise ConfigError(f"{recommender.name} recommended nothing to the panel")
        return StudyReport(
            name=recommender.name,
            preference=float(np.mean(answers["preference"])),
            novelty=float(np.mean(answers["novelty"])),
            serendipity=float(np.mean(answers["serendipity"])),
            score=float(np.mean(answers["score"])),
            n_judgments=n,
        )

"""Top-N experiment harness (paper §5.2.2–5.2.6).

Given a fitted recommender and a panel of test users, collects top-k lists
and measures everything the paper's Tables 2–5 and Figure 6 report:

* Popularity@N series and mean popularity (Figure 6, Table 4 row 1);
* Diversity — Eq. 17 (Table 2, Table 4 row 3);
* Ontology similarity — Eq. 19 (Table 3, Table 4 row 2), when an ontology
  is supplied;
* per-user recommendation wall-clock (Table 5, Table 4 row 4);
* extended: tail share and recommendation Gini.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Recommender
from repro.data.dataset import RatingDataset
from repro.data.longtail import long_tail_split
from repro.data.ontology import ItemOntology
from repro.eval.metrics import (
    diversity,
    list_similarity,
    mean_popularity,
    popularity_at_rank,
    recommendation_gini,
    tail_share,
)
from repro.exceptions import ConfigError, NotFittedError
from repro.utils.timer import StopwatchStats
from repro.utils.validation import check_positive_int

__all__ = ["TopNExperiment", "TopNReport"]


@dataclass(frozen=True)
class TopNReport:
    """All §5.2.2+ measurements for one recommender over one user panel."""

    name: str
    k: int
    n_users: int
    lists: dict = field(repr=False)
    popularity_at_n: np.ndarray
    mean_popularity: float
    diversity: float
    similarity: float | None
    tail_share: float
    gini: float
    mean_seconds_per_user: float
    total_seconds: float

    def row(self) -> dict:
        """Flat dict for table assembly (similarity omitted when absent)."""
        out = {
            "algorithm": self.name,
            "popularity": round(self.mean_popularity, 1),
            "diversity": round(self.diversity, 3),
            "tail_share": round(self.tail_share, 3),
            "gini": round(self.gini, 3),
            "sec_per_user": round(self.mean_seconds_per_user, 4),
        }
        if self.similarity is not None:
            out["similarity"] = round(self.similarity, 3)
        return out


class TopNExperiment:
    """Collects top-k lists for a user panel and derives the paper's metrics.

    Parameters
    ----------
    dataset:
        The training dataset (used for rated-set exclusion, popularity and
        the tail split).
    test_users:
        User indices forming the evaluation panel (paper: 2000 sampled
        users).
    k:
        List length (paper: 10).
    ontology:
        Optional :class:`ItemOntology` enabling the similarity metric.
    tail_ratio:
        The r% rule for the tail share metric.
    """

    def __init__(self, dataset: RatingDataset, test_users: np.ndarray, k: int = 10,
                 ontology: ItemOntology | None = None, tail_ratio: float = 0.20):
        if not isinstance(dataset, RatingDataset):
            raise ConfigError("dataset must be a RatingDataset")
        self.dataset = dataset
        self.test_users = np.asarray(test_users, dtype=np.int64).ravel()
        if self.test_users.size == 0:
            raise ConfigError("test_users is empty")
        if self.test_users.min() < 0 or self.test_users.max() >= dataset.n_users:
            raise ConfigError("test_users contains out-of-range indices")
        self.k = check_positive_int(k, "k")
        if ontology is not None and ontology.n_items != dataset.n_items:
            raise ConfigError(
                f"ontology covers {ontology.n_items} items but dataset has "
                f"{dataset.n_items}"
            )
        self.ontology = ontology
        self._popularity = dataset.item_popularity()
        self._tail_mask = long_tail_split(dataset, tail_ratio).is_tail()

    def run(self, recommender: Recommender) -> TopNReport:
        """Generate lists for the panel and compute every metric."""
        if not recommender.is_fitted:
            raise NotFittedError(
                f"{type(recommender).__name__} must be fitted before run()"
            )
        watch = StopwatchStats()
        lists: dict[int, np.ndarray] = {}
        for user in self.test_users:
            with watch.time():
                items = recommender.recommend_items(int(user), self.k)
            lists[int(user)] = items

        non_empty = [l for l in lists.values() if len(l)]
        if not non_empty:
            raise ConfigError(
                f"{recommender.name} produced no recommendations for any panel user"
            )
        similarity = None
        if self.ontology is not None:
            similarity = list_similarity(lists, self.dataset, self.ontology)
        return TopNReport(
            name=recommender.name,
            k=self.k,
            n_users=self.test_users.size,
            lists=lists,
            popularity_at_n=popularity_at_rank(non_empty, self._popularity, self.k),
            mean_popularity=mean_popularity(non_empty, self._popularity),
            diversity=diversity(non_empty, self.dataset.n_items),
            similarity=similarity,
            tail_share=tail_share(non_empty, self._tail_mask),
            gini=recommendation_gini(non_empty, self.dataset.n_items),
            mean_seconds_per_user=watch.mean,
            total_seconds=watch.total,
        )

    def run_all(self, recommenders) -> dict[str, TopNReport]:
        """Run the panel for several fitted recommenders."""
        reports: dict[str, TopNReport] = {}
        for recommender in recommenders:
            report = self.run(recommender)
            reports[report.name] = report
        return reports

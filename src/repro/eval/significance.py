"""Bootstrap uncertainty for the Recall@N protocol.

The paper reports point estimates over 4000 held-out cases; a laptop-scale
reproduction uses hundreds, so sampling error matters when claiming "AC2
beats HT". This module resamples the per-case ranks to give percentile
confidence intervals on Recall@N and on pairwise recall differences —
used by the Fig 5 bench output and available to downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import recall_at
from repro.exceptions import ConfigError
from repro.utils.validation import check_positive_int, check_random_state

__all__ = ["RecallInterval", "bootstrap_recall", "bootstrap_recall_difference"]


@dataclass(frozen=True)
class RecallInterval:
    """Percentile bootstrap CI for one Recall@N estimate."""

    n: int
    point: float
    low: float
    high: float
    confidence: float

    def row(self) -> dict:
        return {
            "N": self.n,
            "recall": round(self.point, 3),
            "ci_low": round(self.low, 3),
            "ci_high": round(self.high, 3),
        }


def _check_ranks(ranks) -> np.ndarray:
    ranks = np.asarray(ranks, dtype=np.int64).ravel()
    if ranks.size == 0:
        raise ConfigError("no ranks supplied")
    if np.any(ranks < 0):
        raise ConfigError("ranks must be non-negative")
    return ranks


def bootstrap_recall(ranks, n: int, n_bootstrap: int = 2000,
                     confidence: float = 0.95, seed=0) -> RecallInterval:
    """Percentile bootstrap CI for Recall@N over the test cases.

    Parameters
    ----------
    ranks:
        Zero-based rank of each held-out target (one per test case).
    n:
        The N of Recall@N.
    n_bootstrap:
        Number of resamples.
    confidence:
        Interval mass (default 95%).
    """
    ranks = _check_ranks(ranks)
    n = check_positive_int(n, "n")
    n_bootstrap = check_positive_int(n_bootstrap, "n_bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1); got {confidence}")
    rng = check_random_state(seed)

    hits = (ranks < n).astype(np.float64)
    point = float(hits.mean())
    resamples = rng.choice(hits, size=(n_bootstrap, hits.size), replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return RecallInterval(n=n, point=point, low=float(low), high=float(high),
                          confidence=confidence)


def bootstrap_recall_difference(ranks_a, ranks_b, n: int,
                                n_bootstrap: int = 2000,
                                confidence: float = 0.95, seed=0) -> tuple[float, float, float]:
    """Paired bootstrap CI for ``Recall_A@N − Recall_B@N``.

    Requires the two rank arrays to come from the *same* test cases in the
    same order (the protocol guarantees this); cases are resampled jointly,
    which respects the pairing and narrows the interval accordingly.

    Returns ``(point_difference, ci_low, ci_high)``.
    """
    ranks_a = _check_ranks(ranks_a)
    ranks_b = _check_ranks(ranks_b)
    if ranks_a.size != ranks_b.size:
        raise ConfigError(
            f"paired rank arrays differ in length: {ranks_a.size} vs {ranks_b.size}"
        )
    n = check_positive_int(n, "n")
    rng = check_random_state(seed)

    hits_a = (ranks_a < n).astype(np.float64)
    hits_b = (ranks_b < n).astype(np.float64)
    deltas = hits_a - hits_b
    point = float(deltas.mean())
    indices = rng.integers(0, deltas.size, size=(check_positive_int(
        n_bootstrap, "n_bootstrap"), deltas.size))
    means = deltas[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    assert abs(point - recall_at(ranks_a, n) + recall_at(ranks_b, n)) < 1e-12
    return point, float(low), float(high)

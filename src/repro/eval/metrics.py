"""Evaluation metrics (paper §5.1.3).

* **Recall@N** (Eq. 16): fraction of held-out favourites ranked in the
  top-N among 1000 distractors — computed here from raw ranks so one pass
  yields the whole recall curve of Figure 5.
* **Popularity@N**: mean rating-count of the item recommended at each rank
  (Figure 6's series).
* **Diversity** (Eq. 17): unique items recommended across the test panel
  over catalogue size (Table 2).
* **Similarity** (Eq. 19, via the ontology): taste match of recommendation
  lists (Table 3).
* Extended metrics the paper discusses qualitatively: aggregate-diversity
  Gini, catalogue coverage, and mean tail share of the lists.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.ontology import ItemOntology
from repro.exceptions import ConfigError

__all__ = [
    "recall_curve",
    "recall_at",
    "popularity_at_rank",
    "mean_popularity",
    "diversity",
    "list_similarity",
    "tail_share",
    "recommendation_gini",
]


def recall_curve(ranks: Sequence[int], max_n: int = 50) -> np.ndarray:
    """Recall@N for N = 1..max_n from the held-out items' zero-based ranks.

    ``recall_curve(ranks)[n-1]`` is Eq. 16's Recall@N: the fraction of test
    cases whose target ranked strictly inside the top N.
    """
    ranks = np.asarray(ranks, dtype=np.int64).ravel()
    if ranks.size == 0:
        raise ConfigError("no ranks supplied")
    if np.any(ranks < 0):
        raise ConfigError("ranks must be non-negative (zero-based)")
    thresholds = np.arange(1, max_n + 1)
    return (ranks[None, :] < thresholds[:, None]).mean(axis=1)


def recall_at(ranks: Sequence[int], n: int) -> float:
    """Recall@N for a single N."""
    if n < 1:
        raise ConfigError(f"N must be >= 1; got {n}")
    return float(recall_curve(ranks, max_n=n)[n - 1])


def popularity_at_rank(lists: Iterable[Sequence[int]], popularity: np.ndarray,
                       k: int = 10) -> np.ndarray:
    """Figure 6's series: mean item popularity at each list position 1..k.

    Lists shorter than ``k`` simply contribute to the positions they fill;
    positions no list fills are NaN.
    """
    popularity = np.asarray(popularity, dtype=np.float64).ravel()
    sums = np.zeros(k)
    counts = np.zeros(k)
    for rec_list in lists:
        for pos, item in enumerate(list(rec_list)[:k]):
            sums[pos] += popularity[int(item)]
            counts[pos] += 1
    with np.errstate(invalid="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def mean_popularity(lists: Iterable[Sequence[int]], popularity: np.ndarray) -> float:
    """Average popularity over every recommended item in every list."""
    popularity = np.asarray(popularity, dtype=np.float64).ravel()
    values = [popularity[int(i)] for rec_list in lists for i in rec_list]
    if not values:
        raise ConfigError("no recommendations supplied")
    return float(np.mean(values))


def diversity(lists: Iterable[Sequence[int]], n_items: int) -> float:
    """Eq. 17: ``|∪_u R_u| / |I|`` — unique recommended items over catalogue."""
    if n_items <= 0:
        raise ConfigError(f"n_items must be > 0; got {n_items}")
    unique: set[int] = set()
    for rec_list in lists:
        unique.update(int(i) for i in rec_list)
    return len(unique) / n_items


def list_similarity(lists: Mapping[int, Sequence[int]], dataset: RatingDataset,
                    ontology: ItemOntology) -> float:
    """Mean Eq. 19 similarity of recommended items to each user's profile.

    ``lists`` maps user index → recommended item indices; the user's rated
    set :math:`S_u` comes from ``dataset``. Returns the grand mean over all
    recommended items of all users (users with empty lists are skipped).
    """
    values: list[float] = []
    for user, rec_list in lists.items():
        rated = dataset.items_of_user(int(user))
        for item in rec_list:
            values.append(ontology.user_item_similarity(rated, int(item)))
    if not values:
        raise ConfigError("no recommendations supplied")
    return float(np.mean(values))


def tail_share(lists: Iterable[Sequence[int]], tail_mask: np.ndarray) -> float:
    """Fraction of all recommended items that lie in the long tail."""
    tail_mask = np.asarray(tail_mask, dtype=bool).ravel()
    flags = [bool(tail_mask[int(i)]) for rec_list in lists for i in rec_list]
    if not flags:
        raise ConfigError("no recommendations supplied")
    return float(np.mean(flags))


def recommendation_gini(lists: Iterable[Sequence[int]], n_items: int) -> float:
    """Gini coefficient of how recommendations concentrate on items.

    0 = perfectly even exposure across the catalogue, → 1 = everything
    concentrated on a few items (the "rich-get-richer" effect of §1).
    """
    if n_items <= 0:
        raise ConfigError(f"n_items must be > 0; got {n_items}")
    counts = np.zeros(n_items)
    total = 0
    for rec_list in lists:
        for item in rec_list:
            counts[int(item)] += 1
            total += 1
    if total == 0:
        raise ConfigError("no recommendations supplied")
    sorted_counts = np.sort(counts)
    n = n_items
    ranks = np.arange(1, n + 1)
    return float((2 * np.sum(ranks * sorted_counts) / (n * sorted_counts.sum()))
                 - (n + 1) / n)

"""Category ontology and path-prefix similarity (paper §5.2.4, Eq. 18–19).

The paper measures recommendation *quality* on Douban with a proprietary book
ontology from dangdang.com: each item sits on a path of categories, and two
items' similarity is the length of their paths' longest common prefix divided
by the length of the longest path (Eq. 18). A user-item similarity is the max
over the user's rated items (Eq. 19).

This module provides a from-scratch :class:`CategoryTree` with exactly that
similarity, plus :class:`ItemOntology`, which binds catalogue items to leaf
categories and precomputes the leaf-pair similarity table so that the
harness can score millions of (user, item) pairs cheaply.

Convention note: the paper's worked example ("Introduction to Data Mining" vs
"Information Storage and Management" → 2/4) does not count the shared root
("Book") in the common prefix. We follow that: paths exclude the root node,
so sibling top-level categories have similarity 0.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.exceptions import ConfigError, DataError
from repro.utils.validation import check_positive_int

__all__ = ["CategoryTree", "ItemOntology", "path_prefix_similarity"]


def path_prefix_similarity(path_a: Sequence, path_b: Sequence) -> float:
    """Eq. 18: |longest common prefix| / max(|path_a|, |path_b|).

    Paths are sequences of category identifiers from just below the root down
    to the item's category. Two empty paths (both items directly under the
    root) are defined to have similarity 1.0.
    """
    la, lb = len(path_a), len(path_b)
    if la == 0 and lb == 0:
        return 1.0
    common = 0
    for a, b in zip(path_a, path_b):
        if a != b:
            break
        common += 1
    return common / max(la, lb)


class CategoryTree:
    """A rooted category hierarchy with Eq. 18 path similarity.

    Nodes are integer ids; the root is always id 0 and carries no category
    meaning (it is excluded from paths, matching the paper's example).
    """

    def __init__(self, root_name: str = "root"):
        self._parents: list[int] = [-1]
        self._names: list[str] = [root_name]
        self._children: list[list[int]] = [[]]

    # -- construction ----------------------------------------------------

    def add_node(self, parent: int, name: str) -> int:
        """Add a category under ``parent`` and return its id."""
        if not 0 <= parent < len(self._parents):
            raise ConfigError(f"unknown parent node {parent}")
        node = len(self._parents)
        self._parents.append(parent)
        self._names.append(str(name))
        self._children.append([])
        self._children[parent].append(node)
        return node

    @classmethod
    def build_balanced(cls, branching: Sequence[int], root_name: str = "root",
                       level_names: Sequence[str] | None = None) -> "CategoryTree":
        """Build a balanced tree: ``branching[d]`` children at each depth d.

        ``build_balanced([4, 3, 2])`` creates 4 top-level genres, 3 subgenres
        each, 2 leaf categories per subgenre (24 leaves).
        """
        if not branching:
            raise ConfigError("branching must be non-empty")
        for width in branching:
            check_positive_int(width, "branching width")
        if level_names is None:
            level_names = [f"L{d}" for d in range(len(branching))]
        if len(level_names) != len(branching):
            raise ConfigError("level_names must match branching length")
        tree = cls(root_name)
        frontier = [0]
        for depth, width in enumerate(branching):
            next_frontier = []
            for parent in frontier:
                for c in range(width):
                    node = tree.add_node(parent, f"{level_names[depth]}-{parent}.{c}")
                    next_frontier.append(node)
            frontier = next_frontier
        return tree

    # -- structure queries --------------------------------------------------

    def __len__(self) -> int:
        return len(self._parents)

    def name(self, node: int) -> str:
        self._check(node)
        return self._names[node]

    def parent(self, node: int) -> int:
        """Parent id, or -1 for the root."""
        self._check(node)
        return self._parents[node]

    def children(self, node: int) -> tuple[int, ...]:
        self._check(node)
        return tuple(self._children[node])

    def leaves(self) -> np.ndarray:
        """All leaf ids in ascending order."""
        return np.array(
            [n for n in range(len(self._parents)) if not self._children[n]],
            dtype=np.int64,
        )

    def path(self, node: int) -> tuple[int, ...]:
        """Ids from just below the root down to ``node`` (root excluded)."""
        self._check(node)
        chain = []
        while node != 0:
            chain.append(node)
            node = self._parents[node]
        return tuple(reversed(chain))

    def depth(self, node: int) -> int:
        """Number of edges from the root (root has depth 0)."""
        return len(self.path(node))

    def named_path(self, node: int) -> str:
        """Human-readable ``"a : b : c"`` path string."""
        return " : ".join(self._names[n] for n in self.path(node))

    def similarity(self, a: int, b: int) -> float:
        """Eq. 18 similarity between two category nodes."""
        return path_prefix_similarity(self.path(a), self.path(b))

    def _check(self, node: int) -> None:
        if not isinstance(node, (int, np.integer)) or not 0 <= node < len(self._parents):
            raise ConfigError(f"unknown node {node}")


class ItemOntology:
    """Binds catalogue items to categories and scores Eq. 18/19 similarities.

    Parameters
    ----------
    tree:
        The category hierarchy.
    item_categories:
        For each item index, the tree node it belongs to (usually a leaf).

    Notes
    -----
    The (category × category) similarity table is precomputed, so
    :meth:`item_similarity` and :meth:`user_item_similarity` are table
    lookups — the Table 3 / Table 4 experiments score ~10⁶ pairs.
    """

    def __init__(self, tree: CategoryTree, item_categories: Sequence[int]):
        self.tree = tree
        cats = np.asarray(item_categories, dtype=np.int64).ravel()
        if cats.size == 0:
            raise DataError("item_categories is empty")
        if cats.min() < 1 or cats.max() >= len(tree):
            raise DataError("item_categories contains ids outside the tree (or the root)")
        self.item_categories = cats
        self._unique_cats, self._cat_codes = np.unique(cats, return_inverse=True)
        paths = [tree.path(int(c)) for c in self._unique_cats]
        k = len(paths)
        table = np.empty((k, k))
        for i in range(k):
            for j in range(i, k):
                s = path_prefix_similarity(paths[i], paths[j])
                table[i, j] = s
                table[j, i] = s
        self._sim_table = table

    @property
    def n_items(self) -> int:
        return self.item_categories.size

    def item_similarity(self, item_a: int, item_b: int) -> float:
        """Eq. 18 similarity between two items' categories."""
        self._check_item(item_a)
        self._check_item(item_b)
        return float(self._sim_table[self._cat_codes[item_a], self._cat_codes[item_b]])

    def user_item_similarity(self, rated_items: np.ndarray, item: int) -> float:
        """Eq. 19: ``Sim(u, i) = max_{j in S_u} sim(i, j)``.

        ``rated_items`` is the user's preferred item set :math:`S_u`; an empty
        set yields 0.0 (a cold-start user has no taste to match).
        """
        self._check_item(item)
        rated = np.asarray(rated_items, dtype=np.int64).ravel()
        if rated.size == 0:
            return 0.0
        if rated.min() < 0 or rated.max() >= self.n_items:
            raise DataError("rated_items contains out-of-range item indices")
        row = self._sim_table[self._cat_codes[item]]
        return float(row[self._cat_codes[rated]].max())

    def list_similarity(self, rated_items: np.ndarray, items: Sequence[int]) -> np.ndarray:
        """Vectorised Eq. 19 over a recommendation list."""
        return np.array(
            [self.user_item_similarity(rated_items, int(i)) for i in items]
        )

    def _check_item(self, item: int) -> None:
        if not isinstance(item, (int, np.integer)) or not 0 <= item < self.n_items:
            raise DataError(f"item index {item} out of range [0, {self.n_items})")

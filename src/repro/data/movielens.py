"""Loaders for real rating-data files (MovieLens formats and generic CSV).

The experiments in this repository run on the synthetic stand-ins (see
:mod:`repro.data.synthetic` and DESIGN.md §6), but the harness accepts real
data unchanged: drop a MovieLens ``ratings.dat`` / ``u.data`` file or any
``user,item,rating`` CSV next to the benchmarks and load it with these
functions.

Supported formats
-----------------
* **MovieLens 1M** ``ratings.dat``: ``UserID::MovieID::Rating::Timestamp``
* **MovieLens 100K** ``u.data``: tab-separated ``user item rating timestamp``
* **Generic CSV**: ``user,item,rating[,anything...]`` with optional header
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.data.dataset import RatingDataset
from repro.exceptions import DataFormatError

__all__ = ["load_movielens_1m", "load_movielens_100k", "load_rating_csv"]


def _parse_lines(path: str, sep: str, min_fields: int) -> Iterator[tuple[str, str, float]]:
    if not os.path.exists(path):
        raise DataFormatError(f"rating file not found: {path}")
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            fields = line.split(sep)
            if len(fields) < min_fields:
                raise DataFormatError(
                    f"{path}:{lineno}: expected >= {min_fields} fields "
                    f"separated by {sep!r}, got {len(fields)}"
                )
            try:
                rating = float(fields[2])
            except ValueError:
                raise DataFormatError(
                    f"{path}:{lineno}: rating field {fields[2]!r} is not a number"
                ) from None
            yield fields[0], fields[1], rating


def load_movielens_1m(path: str) -> RatingDataset:
    """Load a MovieLens-1M ``ratings.dat`` (``UserID::MovieID::Rating::Ts``)."""
    triples = list(_parse_lines(path, "::", 3))
    if not triples:
        raise DataFormatError(f"{path}: no ratings found")
    return RatingDataset.from_triples(triples)


def load_movielens_100k(path: str) -> RatingDataset:
    """Load a MovieLens-100K ``u.data`` (tab-separated)."""
    triples = list(_parse_lines(path, "\t", 3))
    if not triples:
        raise DataFormatError(f"{path}: no ratings found")
    return RatingDataset.from_triples(triples)


def load_rating_csv(path: str, *, delimiter: str = ",",
                    rating_scale: tuple[float, float] | None = (1.0, 5.0),
                    ) -> RatingDataset:
    """Load ``user,item,rating`` rows from a CSV (header auto-detected).

    A first row whose third field is not numeric is treated as a header and
    skipped; any later non-numeric rating raises :class:`DataFormatError`.
    """
    if not os.path.exists(path):
        raise DataFormatError(f"rating file not found: {path}")
    triples: list[tuple[str, str, float]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            fields = line.split(delimiter)
            if len(fields) < 3:
                raise DataFormatError(
                    f"{path}:{lineno}: expected >= 3 comma-separated fields"
                )
            try:
                rating = float(fields[2])
            except ValueError:
                if lineno == 1:
                    continue  # header row
                raise DataFormatError(
                    f"{path}:{lineno}: rating field {fields[2]!r} is not a number"
                ) from None
            triples.append((fields[0], fields[1], rating))
    if not triples:
        raise DataFormatError(f"{path}: no ratings found")
    return RatingDataset.from_triples(triples, rating_scale=rating_scale)

"""The central rating-data container used by every recommender and substrate.

A :class:`RatingDataset` wraps a sparse user×item rating matrix together with
the external user/item identifiers, and exposes the statistics the paper's
algorithms and experiments need (per-item popularity, per-user activity,
density, rated-item sets).

The rating convention follows the paper (§3.1): a stored value ``w(u, i) > 0``
is the strength of the user-item relation (a 1–5 star rating); absence of an
entry means "not rated". Zero ratings are therefore not representable and are
rejected at construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DataError, UnknownItemError, UnknownUserError
from repro.utils.validation import (
    as_index_array,
    check_in_options,
    check_rating_matrix,
    is_index,
)

__all__ = ["RatingDataset", "DatasetDelta", "labels_to_json", "labels_from_json"]


def labels_to_json(labels: Sequence[Hashable]) -> np.ndarray:
    """Encode user/item labels as a 0-d JSON-string array for ``.npz`` files.

    JSON instead of pickled object arrays keeps persisted files loadable
    with ``allow_pickle=False`` — a foreign artifact can fail validation but
    can never execute code. Supports the hashable label types JSON can carry
    (str/int/float/bool/None and tuples thereof); anything else raises
    :class:`DataError` at save time.
    """
    try:
        return np.array(json.dumps(list(labels)))
    except (TypeError, ValueError) as exc:
        raise DataError(
            f"labels are not JSON-serializable ({exc}); persistence supports "
            "str/int/float/bool/None and tuples thereof"
        ) from None


def _tuplify(value):
    # Labels are hashable, so any list in the decoded JSON must have been a
    # tuple before encoding; restore it (recursively, for nested tuples).
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def labels_from_json(encoded) -> tuple:
    """Inverse of :func:`labels_to_json`."""
    try:
        decoded = json.loads(str(np.asarray(encoded)[()]))
    except (json.JSONDecodeError, TypeError) as exc:
        raise DataError(f"corrupt label encoding: {exc}") from None
    return tuple(_tuplify(v) for v in decoded)


def _pad_deficit(deficit: np.ndarray | None, count: int) -> np.ndarray | None:
    if deficit is None or deficit.size == count:
        return deficit
    padded = np.zeros(count, dtype=np.float64)
    padded[:deficit.size] = deficit
    return padded


def _check_deficit(deficit, count: int, axis: str) -> np.ndarray | None:
    """Validate a per-user/per-item degree-deficit array (``None`` if zero).

    A deficit records rating mass that exists in some *larger* dataset this
    one was cut out of (see :meth:`RatingDataset.subset` with
    ``track_cut_degrees=True``): entry ``d[v]`` is the summed rating weight of
    ``v``'s edges that were severed by the cut. The graph layer adds it back
    when normalising transition rows, so a halo shard's walk operator divides
    by *global* degrees and boundary rows become substochastic instead of
    redistributing leaked mass (DESIGN.md §12). An all-zero deficit is
    canonicalised to ``None`` so ordinary datasets pay nothing.
    """
    if deficit is None:
        return None
    deficit = np.asarray(deficit, dtype=np.float64).ravel()
    if deficit.size != count:
        raise DataError(
            f"{axis} degree-deficit length {deficit.size} != {axis} count {count}"
        )
    if deficit.size and (not np.all(np.isfinite(deficit)) or deficit.min() < 0):
        raise DataError(f"{axis} degree deficits must be finite and >= 0")
    if not deficit.any():
        return None
    return deficit


def _make_labels(labels, count: int, prefix: str) -> tuple:
    if labels is None:
        return tuple(f"{prefix}{i}" for i in range(count))
    labels = tuple(labels)
    if len(labels) != count:
        raise DataError(
            f"{prefix!r} label count {len(labels)} != matrix dimension {count}"
        )
    if len(set(labels)) != len(labels):
        raise DataError(f"duplicate {prefix} labels")
    return labels


@dataclass(frozen=True)
class DatasetDelta:
    """One applied batch of rating events against a frozen base dataset.

    Produced by :meth:`RatingDataset.extend` — the dataset container stays
    immutable; "mutation" is a pure function from (base, events) to
    (merged dataset, delta). The delta is everything the incremental layers
    downstream need: :meth:`~repro.graph.bipartite.UserItemGraph.apply_delta`
    maintains component labels from the event edges,
    :meth:`~repro.core.base.Recommender.partial_fit` refreshes derived state
    for the touched nodes, and the serving engine evicts exactly the caches
    the events invalidate.

    Attributes
    ----------
    base_n_users, base_n_items, base_n_ratings:
        Shape of the base dataset the delta was built against; consumers
        validate these before applying (a delta must never be applied to a
        dataset other than its base).
    dataset:
        The merged dataset. Existing users/items keep their indices; new
        users/items are appended in first-appearance order of the events.
    users, items, ratings:
        One entry per applied event, in merged indexing. Duplicate
        ``(user, item)`` pairs within one batch are coalesced before they
        reach the delta (policy-dependent, see :meth:`RatingDataset.extend`),
        so the pairs here are unique.
    replaced:
        Boolean per event; ``True`` where the pair already carried a rating
        in the base (a value overwrite — no new graph edge).
    new_user_labels, new_item_labels:
        Labels appended beyond the base dimensions, in index order.
    """

    base_n_users: int
    base_n_items: int
    base_n_ratings: int
    dataset: "RatingDataset"
    users: np.ndarray
    items: np.ndarray
    ratings: np.ndarray
    replaced: np.ndarray
    new_user_labels: tuple
    new_item_labels: tuple

    @property
    def n_events(self) -> int:
        return int(self.users.size)

    @property
    def n_new_users(self) -> int:
        return len(self.new_user_labels)

    @property
    def n_new_items(self) -> int:
        return len(self.new_item_labels)

    @property
    def n_replaced(self) -> int:
        return int(self.replaced.sum())

    def touched_users(self) -> np.ndarray:
        """Sorted unique merged user indices carrying an event."""
        return np.unique(self.users)

    def touched_items(self) -> np.ndarray:
        """Sorted unique merged item indices carrying an event."""
        return np.unique(self.items)

    def __repr__(self) -> str:
        return (
            f"DatasetDelta(n_events={self.n_events}, "
            f"n_new_users={self.n_new_users}, n_new_items={self.n_new_items}, "
            f"n_replaced={self.n_replaced})"
        )


class RatingDataset:
    """Immutable container for a user×item rating matrix with id mapping.

    Parameters
    ----------
    matrix:
        ``(n_users, n_items)`` sparse or dense matrix of positive ratings.
    user_labels, item_labels:
        Optional external identifiers (any hashables); default to
        ``"u0".."u{n-1}"`` / ``"i0".."i{m-1}"``.
    rating_scale:
        Inclusive ``(low, high)`` bounds ratings are expected to lie in;
        violations raise :class:`DataError`. Default ``(1, 5)`` per the paper's
        datasets. Pass ``None`` to skip the check (e.g. for weighted graphs
        that are not star ratings).

    Notes
    -----
    The underlying matrix is stored as CSR for fast per-user row access; a CSC
    copy is materialised lazily for per-item column access.
    """

    def __init__(self, matrix, user_labels: Sequence[Hashable] | None = None,
                 item_labels: Sequence[Hashable] | None = None,
                 rating_scale: tuple[float, float] | None = (1.0, 5.0),
                 user_degree_deficit: np.ndarray | None = None,
                 item_degree_deficit: np.ndarray | None = None):
        self._csr = check_rating_matrix(matrix)
        self._user_deficit = _check_deficit(
            user_degree_deficit, self._csr.shape[0], "user")
        self._item_deficit = _check_deficit(
            item_degree_deficit, self._csr.shape[1], "item")
        if rating_scale is not None:
            low, high = float(rating_scale[0]), float(rating_scale[1])
            if not low <= high:
                raise DataError(f"invalid rating scale {rating_scale}")
            if self._csr.nnz and (self._csr.data.min() < low or self._csr.data.max() > high):
                raise DataError(
                    f"ratings outside scale [{low}, {high}]: "
                    f"found range [{self._csr.data.min()}, {self._csr.data.max()}]"
                )
        self.rating_scale = rating_scale
        self._user_labels_cache: tuple | None = _make_labels(
            user_labels, self._csr.shape[0], "u")
        self._item_labels_cache: tuple | None = _make_labels(
            item_labels, self._csr.shape[1], "i")
        self._user_labels_raw = None
        self._item_labels_raw = None
        self._user_index_cache: Mapping[Hashable, int] | None = None
        self._item_index_cache: Mapping[Hashable, int] | None = None
        self._csc: sp.csc_matrix | None = None

    # Labels decode lazily on the trusted load path: a v3 artifact stores
    # them as one JSON string whose parse is O(n) — paying it at load time
    # would make an otherwise O(open) mmap boot linear in the user count.
    # The raw encoded array is stashed and decoded on first label access;
    # index-addressed serving never triggers it.
    @property
    def user_labels(self) -> tuple:
        if self._user_labels_cache is None:
            self._user_labels_cache = labels_from_json(self._user_labels_raw)
            self._user_labels_raw = None
        return self._user_labels_cache

    @property
    def item_labels(self) -> tuple:
        if self._item_labels_cache is None:
            self._item_labels_cache = labels_from_json(self._item_labels_raw)
            self._item_labels_raw = None
        return self._item_labels_cache

    # Label -> index dicts are built on first *label* lookup, not at
    # construction: index-addressed serving (the entire sharded/fleet hot
    # path) never needs them, and building two million-entry dicts at
    # worker boot would dominate an otherwise O(open) mmap load.
    @property
    def _user_index(self) -> Mapping[Hashable, int]:
        if self._user_index_cache is None:
            self._user_index_cache = {
                label: i for i, label in enumerate(self.user_labels)
            }
        return self._user_index_cache

    @property
    def _item_index(self) -> Mapping[Hashable, int]:
        if self._item_index_cache is None:
            self._item_index_cache = {
                label: i for i, label in enumerate(self.item_labels)
            }
        return self._item_index_cache

    # -- construction -----------------------------------------------------

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[Hashable, Hashable, float]],
                     rating_scale: tuple[float, float] | None = (1.0, 5.0),
                     duplicates: str = "error") -> "RatingDataset":
        """Build a dataset from ``(user, item, rating)`` triples.

        Users and items are indexed in first-appearance order. The
        ``duplicates`` policy governs repeated (user, item) pairs —
        ``"error"`` (default) raises :class:`DataError` naming the offending
        user and item labels (silently summing duplicate star ratings would
        corrupt the rating scale), ``"last"`` keeps the latest value (the
        natural semantics for replaying an event log where a user re-rates).
        The same policy is shared by :meth:`extend`.
        """
        check_in_options(duplicates, "duplicates", ("error", "last"))
        users: dict[Hashable, int] = {}
        items: dict[Hashable, int] = {}
        rows, cols, vals = [], [], []
        seen: dict[tuple[int, int], int] = {}
        for user, item, rating in triples:
            u = users.setdefault(user, len(users))
            i = items.setdefault(item, len(items))
            position = seen.get((u, i))
            if position is not None:
                if duplicates == "error":
                    raise DataError(
                        f"duplicate rating for (user={user!r}, item={item!r}); "
                        "pass duplicates='last' to keep the latest value"
                    )
                vals[position] = float(rating)
                continue
            seen[(u, i)] = len(rows)
            rows.append(u)
            cols.append(i)
            vals.append(float(rating))
        if not rows:
            raise DataError("no rating triples supplied")
        matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(len(users), len(items))
        )
        return cls(matrix, tuple(users), tuple(items), rating_scale=rating_scale)

    def check_event_rating(self, user: Hashable, item: Hashable,
                           rating) -> float:
        """Validate one event's rating value against this dataset's scale.

        The single definition of "a valid rating event", shared by
        :meth:`extend` and the sharded tier's batch pre-pass
        (``ShardedEngine._validate_events``) so the two layers can never
        drift on what they accept. Raises :class:`DataError` naming the
        event's labels; returns the rating as ``float``.
        """
        rating = float(rating)
        if not np.isfinite(rating) or rating <= 0:
            raise DataError(
                f"invalid rating {rating!r} for (user={user!r}, item={item!r}); "
                "ratings must be finite and > 0"
            )
        if self.rating_scale is not None and not (
                self.rating_scale[0] <= rating <= self.rating_scale[1]):
            raise DataError(
                f"rating {rating} for (user={user!r}, item={item!r}) outside "
                f"scale [{self.rating_scale[0]}, {self.rating_scale[1]}]"
            )
        return rating

    def extend(self, events: Iterable[tuple[Hashable, Hashable, float]],
               duplicates: str = "error") -> DatasetDelta:
        """Apply a batch of ``(user, item, rating)`` events; return the delta.

        The container stays immutable: this builds the merged dataset and
        wraps it in a :class:`DatasetDelta` describing exactly what changed.
        Unknown user/item labels register new rows/columns appended in
        first-appearance order; known labels address their existing indices.
        The ``duplicates`` policy (shared with :meth:`from_triples`) governs
        pairs already rated in the base *and* pairs repeated within the
        batch: ``"error"`` raises :class:`DataError` naming the labels,
        ``"last"`` keeps the latest value (a re-rate overwrites in place).
        Ratings are validated against the base's ``rating_scale`` up front
        so a bad event fails with its labels, not a matrix-level message.
        """
        check_in_options(duplicates, "duplicates", ("error", "last"))
        user_index: dict[Hashable, int] = dict(self._user_index)
        item_index: dict[Hashable, int] = dict(self._item_index)
        base_csr = self._csr
        # pair -> position in the event arrays; "last" overwrites in place.
        pending: dict[tuple[int, int], int] = {}
        ev_users: list[int] = []
        ev_items: list[int] = []
        ev_ratings: list[float] = []
        ev_replaced: list[bool] = []
        for user, item, rating in events:
            rating = self.check_event_rating(user, item, rating)
            u = user_index.setdefault(user, len(user_index))
            i = item_index.setdefault(item, len(item_index))
            position = pending.get((u, i))
            if position is not None:
                if duplicates == "error":
                    raise DataError(
                        f"duplicate event for (user={user!r}, item={item!r}); "
                        "pass duplicates='last' to keep the latest value"
                    )
                ev_ratings[position] = rating
                continue
            replaced = (
                u < self.n_users and i < self.n_items
                and bool(base_csr[u, i] != 0)
            )
            if replaced and duplicates == "error":
                raise DataError(
                    f"(user={user!r}, item={item!r}) is already rated; "
                    "pass duplicates='last' to overwrite"
                )
            pending[(u, i)] = len(ev_users)
            ev_users.append(u)
            ev_items.append(i)
            ev_ratings.append(rating)
            ev_replaced.append(replaced)

        users = np.asarray(ev_users, dtype=np.int64)
        items = np.asarray(ev_items, dtype=np.int64)
        ratings = np.asarray(ev_ratings, dtype=np.float64)
        replaced = np.asarray(ev_replaced, dtype=bool)
        shape = (len(user_index), len(item_index))

        old = base_csr.tocoo()
        old_rows, old_cols, old_vals = old.row, old.col, old.data
        if replaced.any():
            # Drop the overwritten base entries so the COO build stays
            # duplicate-free (the CSR constructor would *sum* collisions).
            keys = old_rows.astype(np.int64) * shape[1] + old_cols
            dropped = users[replaced] * shape[1] + items[replaced]
            keep = ~np.isin(keys, dropped)
            old_rows, old_cols, old_vals = old_rows[keep], old_cols[keep], old_vals[keep]
        matrix = sp.csr_matrix(
            (np.concatenate([old_vals, ratings]),
             (np.concatenate([old_rows.astype(np.int64), users]),
              np.concatenate([old_cols.astype(np.int64), items]))),
            shape=shape,
        )
        # A halo shard keeps its frozen deficit across updates: an event that
        # lands inside the shard raises the local row sum while the deficit is
        # unchanged, so local + deficit still equals the new global degree.
        # New rows/columns appended by the batch have no cut edges (zeros).
        user_deficit = _pad_deficit(self._user_deficit, shape[0])
        item_deficit = _pad_deficit(self._item_deficit, shape[1])
        merged = RatingDataset(
            matrix, tuple(user_index), tuple(item_index),
            rating_scale=self.rating_scale,
            user_degree_deficit=user_deficit,
            item_degree_deficit=item_deficit,
        )
        return DatasetDelta(
            base_n_users=self.n_users,
            base_n_items=self.n_items,
            base_n_ratings=self.n_ratings,
            dataset=merged,
            users=users,
            items=items,
            ratings=ratings,
            replaced=replaced,
            new_user_labels=tuple(merged.user_labels[self.n_users:]),
            new_item_labels=tuple(merged.item_labels[self.n_items:]),
        )

    # -- basic shape ------------------------------------------------------

    @property
    def matrix(self) -> sp.csr_matrix:
        """The user×item CSR rating matrix (do not mutate)."""
        return self._csr

    @property
    def n_users(self) -> int:
        return self._csr.shape[0]

    @property
    def n_items(self) -> int:
        return self._csr.shape[1]

    @property
    def n_ratings(self) -> int:
        return self._csr.nnz

    @property
    def user_degree_deficit(self) -> np.ndarray | None:
        """Per-user cut rating mass (``None`` when this is not a halo cut)."""
        return self._user_deficit

    @property
    def item_degree_deficit(self) -> np.ndarray | None:
        """Per-item cut rating mass (``None`` when this is not a halo cut)."""
        return self._item_deficit

    @property
    def has_degree_deficit(self) -> bool:
        """Whether any node carries cut-edge mass (degree-true halo mode)."""
        return self._user_deficit is not None or self._item_deficit is not None

    @property
    def density(self) -> float:
        """Fraction of filled cells (the paper reports 4.26% / 0.039%)."""
        return self.n_ratings / (self.n_users * self.n_items)

    def __repr__(self) -> str:
        return (
            f"RatingDataset(n_users={self.n_users}, n_items={self.n_items}, "
            f"n_ratings={self.n_ratings}, density={self.density:.4%})"
        )

    # -- id mapping --------------------------------------------------------

    def user_id(self, label: Hashable) -> int:
        """Internal index of a user label."""
        try:
            return self._user_index[label]
        except KeyError:
            raise UnknownUserError(label) from None

    def item_id(self, label: Hashable) -> int:
        """Internal index of an item label."""
        try:
            return self._item_index[label]
        except KeyError:
            raise UnknownItemError(label) from None

    # -- per-user / per-item views ------------------------------------------

    def _csc_matrix(self) -> sp.csc_matrix:
        if self._csc is None:
            self._csc = self._csr.tocsc()
        return self._csc

    def items_of_user(self, user: int) -> np.ndarray:
        """Item indices rated by ``user`` (the paper's set :math:`S_u`)."""
        self._check_user(user)
        return self._csr.indices[self._csr.indptr[user]:self._csr.indptr[user + 1]].astype(np.int64)

    def ratings_of_user(self, user: int) -> np.ndarray:
        """Rating values aligned with :meth:`items_of_user`."""
        self._check_user(user)
        return self._csr.data[self._csr.indptr[user]:self._csr.indptr[user + 1]].copy()

    def users_of_item(self, item: int) -> np.ndarray:
        """User indices who rated ``item``."""
        self._check_item(item)
        csc = self._csc_matrix()
        return csc.indices[csc.indptr[item]:csc.indptr[item + 1]].astype(np.int64)

    def rating(self, user: int, item: int) -> float:
        """The stored rating, or 0.0 when unrated."""
        self._check_user(user)
        self._check_item(item)
        return float(self._csr[user, item])

    # -- aggregate statistics ------------------------------------------------

    def item_popularity(self) -> np.ndarray:
        """Number of ratings per item — the paper's popularity measure (§5.1.3)."""
        return np.asarray((self._csr != 0).sum(axis=0)).ravel().astype(np.int64)

    def item_rating_sum(self) -> np.ndarray:
        """Sum of rating values per item (weighted popularity)."""
        return np.asarray(self._csr.sum(axis=0)).ravel()

    def user_activity(self) -> np.ndarray:
        """Number of ratings per user."""
        return np.diff(self._csr.indptr).astype(np.int64)

    def mean_rating(self) -> float:
        return float(self._csr.data.mean())

    # -- serialization -------------------------------------------------------

    def to_arrays(self) -> dict:
        """Flat dict of numpy arrays fully describing the dataset.

        The inverse of :meth:`from_arrays`; used by the model-artifact layer
        (:mod:`repro.core.artifacts`) to embed the training data in a saved
        artifact so a loaded recommender can serve (exclusions, graph
        reconstruction) without the original data files.
        """
        scale = (np.empty(0, dtype=np.float64) if self.rating_scale is None
                 else np.array([self.rating_scale[0], self.rating_scale[1]],
                               dtype=np.float64))
        arrays = {
            "data": self._csr.data,
            "indices": self._csr.indices,
            "indptr": self._csr.indptr,
            "shape": np.array(self._csr.shape, dtype=np.int64),
            # A still-undecoded raw encoding round-trips verbatim — no
            # decode/re-encode cycle when checkpointing a mapped dataset.
            "user_labels": (np.array(np.asarray(self._user_labels_raw)[()])
                            if self._user_labels_cache is None
                            else labels_to_json(self.user_labels)),
            "item_labels": (np.array(np.asarray(self._item_labels_raw)[()])
                            if self._item_labels_cache is None
                            else labels_to_json(self.item_labels)),
            "rating_scale": scale,
        }
        # Optional keys: only halo-cut shard datasets carry deficits, and
        # readers that predate them ignore unknown npz keys.
        if self._user_deficit is not None:
            arrays["user_degree_deficit"] = self._user_deficit
        if self._item_deficit is not None:
            arrays["item_degree_deficit"] = self._item_deficit
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Mapping,
                    validate: bool = True) -> "RatingDataset":
        """Rebuild a dataset from :meth:`to_arrays` output.

        ``validate=False`` is the trusted fast path for arrays that came
        out of this class's own :meth:`to_arrays` (a versioned artifact —
        validated when it was written): the CSR is wrapped as-is from the
        triplet views and the O(nnz) canonicalisation/range scans and the
        O(n) duplicate-label check are skipped. That keeps a memory-mapped
        artifact load O(open) — a validating load would page every array
        in just to re-prove what ``save`` already proved. Never pass
        untrusted input with ``validate=False``.
        """
        try:
            shape = tuple(int(s) for s in np.asarray(arrays["shape"]).ravel())
            matrix = sp.csr_matrix(
                (np.asarray(arrays["data"], dtype=np.float64),
                 np.asarray(arrays["indices"]), np.asarray(arrays["indptr"])),
                shape=shape,
            )
            scale = np.asarray(arrays["rating_scale"], dtype=np.float64).ravel()
            user_labels_raw = arrays["user_labels"]
            item_labels_raw = arrays["item_labels"]
        except KeyError as exc:
            raise DataError(f"dataset arrays missing key {exc.args[0]!r}") from None
        rating_scale = None if scale.size == 0 else (float(scale[0]), float(scale[1]))
        user_deficit = arrays.get("user_degree_deficit")
        item_deficit = arrays.get("item_degree_deficit")
        if validate:
            return cls(matrix,
                       labels_from_json(user_labels_raw),
                       labels_from_json(item_labels_raw),
                       rating_scale=rating_scale,
                       user_degree_deficit=user_deficit,
                       item_degree_deficit=item_deficit)
        self = object.__new__(cls)
        self._csr = matrix
        self._user_deficit = (
            None if user_deficit is None
            else np.asarray(user_deficit, dtype=np.float64).ravel()
        )
        self._item_deficit = (
            None if item_deficit is None
            else np.asarray(item_deficit, dtype=np.float64).ravel()
        )
        self.rating_scale = rating_scale
        # Defer the O(n) JSON decode to first label access (see the
        # user_labels property) — trusted loads stay O(open).
        self._user_labels_cache = None
        self._item_labels_cache = None
        self._user_labels_raw = user_labels_raw
        self._item_labels_raw = item_labels_raw
        self._user_index_cache = None
        self._item_index_cache = None
        self._csc = None
        return self

    # -- transforms ----------------------------------------------------------

    def without_ratings(self, pairs: Iterable[tuple[int, int]]) -> "RatingDataset":
        """Return a copy with the given (user, item) index pairs removed.

        Used by the evaluation splits to hold out test ratings. Removing a
        pair that is not present raises :class:`DataError` (it would silently
        weaken the test set).
        """
        lil = self._csr.tolil(copy=True)
        for user, item in pairs:
            self._check_user(user)
            self._check_item(item)
            if lil[user, item] == 0:
                raise DataError(f"cannot remove absent rating (user={user}, item={item})")
            lil[user, item] = 0
        return RatingDataset(
            lil.tocsr(), self.user_labels, self.item_labels, rating_scale=self.rating_scale
        )

    def subset_users(self, users: np.ndarray) -> "RatingDataset":
        """Dataset restricted to the given user indices (items unchanged)."""
        return self.subset(users=users)

    def subset(self, users: np.ndarray | None = None,
               items: np.ndarray | None = None,
               track_cut_degrees: bool = False) -> "RatingDataset":
        """Dataset restricted to the given user and/or item indices.

        Labels are preserved (row ``r`` of the result is the user
        ``users[r]`` of this dataset, likewise for item columns), which is
        what lets the sharding layer route by external label and map local
        indices back to the global catalogue. Ratings whose user is kept but
        whose item is dropped (or vice versa) disappear from the result —
        the component shard planner never produces such cuts and guards
        against them separately, while the edge-cut planner *expects* them
        and passes ``track_cut_degrees=True`` so each kept node remembers the
        rating mass its severed edges carried (as a degree deficit, see
        :attr:`user_degree_deficit`). Any deficit this dataset already
        carries is sliced through either way, so cuts compose.
        ``None`` keeps the full axis.
        """
        matrix = self._csr
        user_labels = self.user_labels
        item_labels = self.item_labels
        user_deficit = self._user_deficit
        item_deficit = self._item_deficit
        if users is not None:
            users = as_index_array(users, self.n_users, "users")
            matrix = matrix[users]
            user_labels = tuple(self.user_labels[u] for u in users)
            if user_deficit is not None:
                user_deficit = user_deficit[users]
        if items is not None:
            items = as_index_array(items, self.n_items, "items")
            matrix = matrix[:, items]
            item_labels = tuple(self.item_labels[i] for i in items)
            if item_deficit is not None:
                item_deficit = item_deficit[items]
        if track_cut_degrees:
            full_user_mass = np.asarray(self._csr.sum(axis=1)).ravel()
            full_item_mass = np.asarray(self._csr.sum(axis=0)).ravel()
            kept_user_mass = np.asarray(matrix.sum(axis=1)).ravel()
            kept_item_mass = np.asarray(matrix.sum(axis=0)).ravel()
            cut_user = full_user_mass[users] - kept_user_mass if users is not None \
                else full_user_mass - kept_user_mass
            cut_item = full_item_mass[items] - kept_item_mass if items is not None \
                else full_item_mass - kept_item_mass
            # Tiny negative residue from float summation order is noise.
            cut_user = np.maximum(cut_user, 0.0)
            cut_item = np.maximum(cut_item, 0.0)
            user_deficit = cut_user if user_deficit is None else user_deficit + cut_user
            item_deficit = cut_item if item_deficit is None else item_deficit + cut_item
        return RatingDataset(
            matrix, user_labels, item_labels, rating_scale=self.rating_scale,
            user_degree_deficit=user_deficit, item_degree_deficit=item_deficit,
        )

    # -- internals -------------------------------------------------------------

    def _check_user(self, user: int) -> None:
        if not is_index(user, self.n_users):
            raise UnknownUserError(user)

    def _check_item(self, item: int) -> None:
        if not is_index(item, self.n_items):
            raise UnknownItemError(item)

"""Datasets and data substrates: containers, loaders, synthetic generators,
long-tail analysis, evaluation splits, the category ontology, and toy
fixtures (including the paper's Figure 2 graph)."""

from repro.data.dataset import DatasetDelta, RatingDataset
from repro.data.longtail import (
    LongTailSplit,
    LongTailStats,
    long_tail_split,
    long_tail_stats,
)
from repro.data.movielens import load_movielens_1m, load_movielens_100k, load_rating_csv
from repro.data.ontology import CategoryTree, ItemOntology, path_prefix_similarity
from repro.data.splits import RecallSplit, make_recall_split, sample_test_users
from repro.data.synthetic import (
    SyntheticConfig,
    SyntheticData,
    douban_like,
    generate_dataset,
    movielens_like,
)
from repro.data.toy import (
    FIGURE2_PAPER_HITTING_TIMES,
    FIGURE2_RATINGS,
    chain_dataset,
    figure2_dataset,
    two_community_dataset,
)

__all__ = [
    "RatingDataset",
    "DatasetDelta",
    "LongTailSplit",
    "LongTailStats",
    "long_tail_split",
    "long_tail_stats",
    "load_movielens_1m",
    "load_movielens_100k",
    "load_rating_csv",
    "CategoryTree",
    "ItemOntology",
    "path_prefix_similarity",
    "RecallSplit",
    "make_recall_split",
    "sample_test_users",
    "SyntheticConfig",
    "SyntheticData",
    "douban_like",
    "generate_dataset",
    "movielens_like",
    "FIGURE2_PAPER_HITTING_TIMES",
    "FIGURE2_RATINGS",
    "chain_dataset",
    "figure2_dataset",
    "two_community_dataset",
]

"""Train/test splitting for the paper's evaluation protocols (§5.2.1–5.2.2).

Two samplers live here:

* :func:`make_recall_split` — the Recall@N protocol setup: hold out
  highly-rated (default 5-star) *long-tail* ratings as test cases and remove
  them from the training matrix (the paper holds out 4000 such ratings).
* :func:`sample_test_users` — the 2000-user panel used for the popularity /
  diversity / similarity / efficiency experiments (§5.2.2 ff).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.longtail import long_tail_split
from repro.exceptions import DataError
from repro.utils.validation import check_positive_int, check_random_state

__all__ = ["RecallSplit", "make_recall_split", "sample_test_users"]


@dataclass(frozen=True)
class RecallSplit:
    """A Recall@N evaluation split.

    Attributes
    ----------
    train:
        Training dataset with the test ratings removed.
    test_cases:
        ``(user, item)`` index pairs; each pair was rated ``min_rating`` or
        higher in the source data and the item lies in the long tail.
    source:
        The unsplit dataset (used by the protocol to exclude *all* known
        ratings when sampling distractors).
    """

    train: RatingDataset
    test_cases: tuple[tuple[int, int], ...]
    source: RatingDataset

    @property
    def n_cases(self) -> int:
        return len(self.test_cases)


def make_recall_split(dataset: RatingDataset, n_cases: int = 400,
                      tail_ratio: float = 0.20, min_rating: float = 5.0,
                      min_item_popularity: int = 2, min_user_activity: int = 3,
                      seed=0) -> RecallSplit:
    """Sample held-out favourite long-tail ratings, paper §5.2.1 style.

    Eligible test ratings must satisfy: the item is in the ``tail_ratio``
    long tail; the rating is ``>= min_rating``; the item keeps at least
    ``min_item_popularity - 1`` other ratings (so it stays attached to the
    training graph); the user keeps at least ``min_user_activity - 1`` other
    ratings (so the recommenders have a profile to work from). At most one
    test case is drawn per (user, item) pair; multiple cases per user are
    allowed, but never so many that the user's floor is violated.

    Raises :class:`DataError` if fewer than ``n_cases`` eligible ratings
    exist — a silent shortfall would make Recall@N incomparable across runs.
    """
    n_cases = check_positive_int(n_cases, "n_cases")
    rng = check_random_state(seed)
    tail = long_tail_split(dataset, tail_ratio)
    tail_mask = tail.is_tail()
    popularity = dataset.item_popularity()
    activity = dataset.user_activity()

    coo = dataset.matrix.tocoo()
    eligible = np.flatnonzero(
        (coo.data >= min_rating)
        & tail_mask[coo.col]
        & (popularity[coo.col] >= min_item_popularity)
        & (activity[coo.row] >= min_user_activity)
    )
    if eligible.size < n_cases:
        raise DataError(
            f"only {eligible.size} eligible long-tail ratings "
            f"(needed {n_cases}); lower n_cases or min_rating"
        )
    order = rng.permutation(eligible)

    # Greedy selection honouring the per-user and per-item floors.
    user_budget = activity - (min_user_activity - 1)
    item_budget = popularity - (min_item_popularity - 1)
    chosen: list[tuple[int, int]] = []
    for idx in order:
        u, i = int(coo.row[idx]), int(coo.col[idx])
        if user_budget[u] <= 0 or item_budget[i] <= 0:
            continue
        user_budget[u] -= 1
        item_budget[i] -= 1
        chosen.append((u, i))
        if len(chosen) == n_cases:
            break
    if len(chosen) < n_cases:
        raise DataError(
            f"could only select {len(chosen)} test cases under the "
            f"user/item floors (needed {n_cases})"
        )
    train = dataset.without_ratings(chosen)
    return RecallSplit(train=train, test_cases=tuple(chosen), source=dataset)


def sample_test_users(dataset: RatingDataset, n_users: int = 200,
                      min_activity: int = 3, seed=0) -> np.ndarray:
    """Sample the test-user panel for the top-N experiments.

    Only users with at least ``min_activity`` ratings are eligible (a user
    with an empty profile cannot anchor the absorbing set :math:`S_q`).
    """
    n_users = check_positive_int(n_users, "n_users")
    rng = check_random_state(seed)
    eligible = np.flatnonzero(dataset.user_activity() >= min_activity)
    if eligible.size < n_users:
        raise DataError(
            f"only {eligible.size} users have >= {min_activity} ratings "
            f"(needed {n_users})"
        )
    return np.sort(rng.choice(eligible, size=n_users, replace=False))

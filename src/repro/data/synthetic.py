"""Synthetic long-tail rating data (the paper's MovieLens / Douban stand-ins).

The paper evaluates on MovieLens-1M and a proprietary Douban crawl; neither is
available in this offline environment, so this module provides a generative
model that reproduces the *structural* properties the algorithms exercise:

* **Long-tail popularity**: item attractiveness follows a Zipf law, so the
  realised rating counts have a Pareto shape (paper Figure 1; ≈66–73% of the
  catalogue carries 20% of ratings — §5.1.2).
* **Latent tastes**: a ground-truth genre tree drives both item categories and
  user preferences. Users draw a Dirichlet genre mixture; *taste-specific*
  users (small concentration) coexist with *generalists* (large
  concentration) — exactly the distinction the entropy-biased Absorbing Cost
  models (§4.2) are designed to exploit.
* **Preference-correlated ratings**: the star value grows with the affinity
  between the user's genre mixture and the item's genre, so held-out 5-star
  long-tail ratings (the Recall@N protocol, §5.2.1) are genuinely "favourite
  niche items".

Because the generator knows the ground truth, experiments that the paper
could only eyeball (topic coherence in Table 1, taste match in Tables 3/6)
become quantitatively checkable here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import RatingDataset
from repro.data.ontology import CategoryTree, ItemOntology
from repro.exceptions import ConfigError
from repro.utils.sampling import truncated_lognormal, zipf_weights
from repro.utils.validation import (
    check_fraction,
    check_positive_float,
    check_positive_int,
    check_random_state,
)

__all__ = [
    "SyntheticConfig",
    "SyntheticData",
    "generate_dataset",
    "federated_dataset",
    "giant_component",
    "movielens_like",
    "douban_like",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the generative model.

    Attributes
    ----------
    n_users, n_items:
        Matrix dimensions.
    n_genres, subgenres_per_genre, leaves_per_subgenre:
        Shape of the ground-truth category tree (genres are the latent topics;
        the two levels below them form the ontology used by Table 3).
    popularity_exponent:
        Zipf exponent of item attractiveness; higher = heavier head.
    target_density:
        Desired fill fraction of the rating matrix; the lognormal
        ratings-per-user distribution is centred so the expected density
        matches (paper: MovieLens 4.26%, Douban 0.039%).
    activity_sigma_log:
        Lognormal sigma of ratings-per-user.
    activity_min, activity_max:
        Hard bounds on ratings-per-user (paper's MovieLens: 20–737).
    specific_user_fraction:
        Fraction of users drawn with the *specific* Dirichlet concentration.
    dirichlet_specific, dirichlet_general:
        Dirichlet concentration for taste-specific vs generalist users.
    popularity_bias:
        Exponent on item attractiveness when users pick what to rate;
        0 = taste only, 1 = strong rich-get-richer.
    affinity_weight:
        Weight of taste affinity (vs popularity) in the star-rating mean.
    rating_noise:
        Std-dev of Gaussian noise added before rounding to 1–5 stars.
    prune_unrated:
        Drop items that received no rating from the final dataset (real
        rating datasets contain, by construction, only items somebody rated;
        keeping ghosts would distort the tail statistics).
    name:
        Human-readable config name used in reports.
    """

    n_users: int = 900
    n_items: int = 700
    n_genres: int = 8
    subgenres_per_genre: int = 3
    leaves_per_subgenre: int = 2
    popularity_exponent: float = 1.0
    target_density: float = 0.042
    activity_sigma_log: float = 0.7
    activity_min: int = 12
    activity_max: int = 350
    specific_user_fraction: float = 0.45
    dirichlet_specific: float = 0.08
    dirichlet_general: float = 1.5
    popularity_bias: float = 1.3
    affinity_weight: float = 0.7
    rating_noise: float = 0.55
    prune_unrated: bool = True
    name: str = "synthetic"

    def __post_init__(self):
        check_positive_int(self.n_users, "n_users")
        check_positive_int(self.n_items, "n_items")
        check_positive_int(self.n_genres, "n_genres")
        check_positive_int(self.subgenres_per_genre, "subgenres_per_genre")
        check_positive_int(self.leaves_per_subgenre, "leaves_per_subgenre")
        check_positive_float(self.popularity_exponent, "popularity_exponent")
        check_fraction(self.target_density, "target_density", inclusive_high=False)
        check_positive_float(self.activity_sigma_log, "activity_sigma_log")
        check_positive_int(self.activity_min, "activity_min")
        check_positive_int(self.activity_max, "activity_max")
        if self.activity_min >= self.activity_max:
            raise ConfigError("activity_min must be < activity_max")
        if self.activity_max > self.n_items:
            raise ConfigError(
                f"activity_max={self.activity_max} exceeds n_items={self.n_items}"
            )
        check_fraction(self.specific_user_fraction, "specific_user_fraction",
                       inclusive_low=True)
        check_positive_float(self.dirichlet_specific, "dirichlet_specific")
        check_positive_float(self.dirichlet_general, "dirichlet_general")
        if self.popularity_bias < 0:
            raise ConfigError("popularity_bias must be >= 0")
        check_fraction(self.affinity_weight, "affinity_weight", inclusive_low=True)
        if self.rating_noise < 0:
            raise ConfigError("rating_noise must be >= 0")

    @property
    def activity_mean_log(self) -> float:
        """Lognormal mu that makes the *mean* activity hit ``target_density``.

        For a lognormal, ``E[x] = exp(mu + sigma^2 / 2)``, so
        ``mu = log(density * n_items) - sigma^2 / 2``.
        """
        mean_activity = max(float(self.activity_min), self.target_density * self.n_items)
        return float(np.log(mean_activity) - self.activity_sigma_log ** 2 / 2.0)

    def scaled(self, factor: float) -> "SyntheticConfig":
        """Return a copy with user/item counts scaled by ``factor``.

        ``target_density`` is preserved (so relative sparsity contrasts
        between configs survive rescaling) and the activity bounds are scaled
        and re-clipped so they stay feasible at small sizes.
        """
        factor = check_positive_float(factor, "factor")
        if factor == 1.0:
            return self
        n_users = max(20, int(round(self.n_users * factor)))
        n_items = max(30, int(round(self.n_items * factor)))
        activity_min = max(3, int(round(self.activity_min * factor)))
        activity_max = int(np.clip(round(self.activity_max * factor),
                                   activity_min + 2, n_items // 2))
        return replace(self, n_users=n_users, n_items=n_items,
                       activity_min=activity_min, activity_max=activity_max)


@dataclass(frozen=True)
class SyntheticData:
    """Everything the generator produces.

    Attributes
    ----------
    dataset:
        The :class:`RatingDataset` (this is what recommenders consume).
    ontology:
        :class:`ItemOntology` binding each item to a leaf category.
    item_genres:
        Ground-truth genre index per item.
    user_topics:
        Ground-truth per-user genre mixture, shape ``(n_users, n_genres)``.
    config:
        The generating configuration.
    """

    dataset: RatingDataset
    ontology: ItemOntology
    item_genres: np.ndarray
    user_topics: np.ndarray
    config: SyntheticConfig = field(repr=False)

    @property
    def n_genres(self) -> int:
        return self.user_topics.shape[1]


def movielens_like(scale: float = 1.0) -> SyntheticConfig:
    """MovieLens-1M-shaped config: denser matrix, moderate tail.

    At scale 1.0: 900 users × 700 items, ≈4.2% density (paper: 4.26%);
    the 20%-of-ratings tail spans roughly ⅔ of the catalogue (paper: ≈66%).
    """
    return SyntheticConfig(name=f"movielens-like(x{scale:g})").scaled(scale)


def douban_like(scale: float = 1.0) -> SyntheticConfig:
    """Douban-shaped config: much sparser matrix, deeper tail, bigger catalogue.

    The real Douban crawl is ~100× sparser than MovieLens; a pure-Python
    reproduction keeps the *direction* of the contrast (≈8× sparser here so
    the graph stays usable at laptop scale) and the heavier head
    (tail catalogue share above the MovieLens-like config; paper reports
    73% vs 66%).
    """
    config = SyntheticConfig(
        n_users=1400,
        n_items=2400,
        n_genres=10,
        popularity_exponent=1.0,
        target_density=0.005,
        activity_sigma_log=0.6,
        activity_min=5,
        activity_max=120,
        specific_user_fraction=0.55,
        popularity_bias=1.0,
        name=f"douban-like(x{scale:g})",
    )
    return config.scaled(scale)


def federated_dataset(n_tenants: int, scale: float = 1.0, seed=0,
                      base: SyntheticConfig | None = None) -> RatingDataset:
    """``n_tenants`` disjoint rating blocks as one catalogue.

    Real multi-tenant deployments (regional catalogues, per-market stores,
    federated recommenders) produce exactly this graph shape: several
    connected components with no cross-tenant edges. The single-block
    generators above yield one giant component — correct for the paper's
    MovieLens/Douban reproductions, useless for exercising anything
    component-parallel — so the sharding tier
    (:class:`~repro.service.sharding.ShardPlan`), its benchmark and the CLI
    ``shard-fit`` path build their workloads here.

    Each tenant is an independent :func:`generate_dataset` draw (seeded
    ``seed + tenant``) of ``base`` (default: a movielens-density block of
    ``400 × scale`` users by ``300 × scale`` items — the federated workload
    ``benchmarks/bench_incremental.py`` and ``bench_sharded.py`` share);
    labels are prefixed ``t{tenant}:`` and the rating matrix is
    block-diagonal. A custom ``base`` is the scale-1.0 template: ``scale``
    applies to it the same way it applies to the default block.
    """
    n_tenants = check_positive_int(n_tenants, "n_tenants")
    scale = check_positive_float(scale, "scale")
    blocks = []
    user_labels: list = []
    item_labels: list = []
    for tenant in range(n_tenants):
        if base is None:
            n_users = max(int(400 * scale), 30)
            n_items = max(int(300 * scale), 24)
            config = SyntheticConfig(
                n_users=n_users, n_items=n_items,
                n_genres=4, target_density=0.06,
                activity_min=3, activity_max=min(40, n_items - 1),
                name=f"tenant{tenant}",
            )
        else:
            config = replace(base.scaled(scale), name=f"tenant{tenant}")
        dataset = generate_dataset(config, seed=seed + tenant).dataset
        blocks.append(dataset.matrix)
        user_labels.extend(f"t{tenant}:{label}" for label in dataset.user_labels)
        item_labels.extend(f"t{tenant}:{label}" for label in dataset.item_labels)
    return RatingDataset(
        sp.block_diag(blocks, format="csr"), user_labels, item_labels
    )


def giant_component(scale: float = 1.0, seed=0, *,
                    window: float = 0.08,
                    popularity_exponent: float = 0.9,
                    activity_min: int = 6,
                    activity_max: int = 42) -> RatingDataset:
    """One single giant-component power-law dataset for edge-cut sharding.

    :func:`federated_dataset` produces disjoint blocks — the workload the
    component partitioner wants and exactly the workload an *edge-cut*
    partitioner cannot be measured on, because there is nothing to cut.
    This generator builds the opposite: every node in one connected
    component, yet with enough locality that a balanced edge cut with
    small k-hop halos exists (the regime ``ShardPlan.build_edge_cut``
    targets).

    Structure (all draws from ``seed``):

    * Users and items sit on a shared ring: user ``u`` is centred at item
      position ``u * n_items / n_users``. Each user rates only items
      within a ``window`` fraction of the catalogue around its centre
      (wrap-around), so edges are *local*: cutting the ring anywhere
      severs only the ratings that straddle the cut, and a k-hop halo
      reaches at most ``k`` windows past it. There are deliberately no
      global hub items — a hub would drag the whole ring into every
      shard's halo.
    * Within its window a user picks items by Gumbel top-k over Zipf
      attractiveness (rank order shuffled per catalogue), so realised
      item popularity keeps the long-tail shape the rest of the repo
      assumes; ratings-per-user is log-uniform between the activity
      bounds, giving a heavy-tailed activity profile.
    * Deterministic fix-up: every zero-rating item gets one rating from
      the user centred nearest to it, then any stray secondary component
      is linked to the main one the same way, so the result is a single
      connected component for any seed.

    At scale 1.0 the dataset is 2400 users × 1600 items (~4000 graph
    nodes — within the solver's µ=6000 subgraph budget, so unsharded
    reference sweeps stay exact).
    """
    scale = check_positive_float(scale, "scale")
    check_fraction(window, "window", inclusive_high=False)
    check_positive_int(activity_min, "activity_min")
    check_positive_int(activity_max, "activity_max")
    if activity_min >= activity_max:
        raise ConfigError("activity_min must be < activity_max")
    n_users = max(int(round(2400 * scale)), 40)
    n_items = max(int(round(1600 * scale)), 30)
    rng = check_random_state(seed)

    # Window geometry: wide enough to hold the largest activity budget.
    half = max(int(round(window * n_items / 2.0)), 2)
    width = min(2 * half + 1, n_items)
    activity_max = min(activity_max, width - 1)
    activity_min = min(activity_min, activity_max - 1) or 1

    attractiveness = zipf_weights(n_items, popularity_exponent)
    attractiveness = attractiveness[rng.permutation(n_items)]
    log_attr = np.log(attractiveness)

    centers = np.floor(np.arange(n_users) * n_items / n_users).astype(np.int64)
    activity = np.exp(rng.uniform(np.log(activity_min),
                                  np.log(activity_max + 1.0),
                                  size=n_users)).astype(np.int64)
    activity = np.clip(activity, activity_min, activity_max)

    offsets = np.arange(-half, width - half, dtype=np.int64)
    rows, cols, vals = [], [], []
    for user in range(n_users):
        window_items = (centers[user] + offsets) % n_items
        gumbel = rng.gumbel(size=width)
        take = int(activity[user])
        local = np.argpartition(-(log_attr[window_items] + gumbel), take)[:take]
        chosen = window_items[local]
        closeness = 1.0 - np.abs(offsets[local]) / float(half + 1)
        stars = np.rint(1.0 + 4.0 * (0.6 * closeness + 0.4 * rng.random(take)))
        rows.extend([user] * take)
        cols.extend(chosen.tolist())
        vals.extend(np.clip(stars, 1, 5).tolist())

    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(n_users, n_items)
    ).tolil()

    # Fix-up 1: no orphan items — nearest-centred user adopts them.
    def nearest_user(item: int, among: np.ndarray) -> int:
        distance = np.abs(centers[among] - item)
        distance = np.minimum(distance, n_items - distance)  # ring metric
        return int(among[np.argmin(distance)])  # argmin ties → lowest user

    all_users = np.arange(n_users, dtype=np.int64)
    item_mass = np.asarray(abs(matrix).sum(axis=0)).ravel()
    for item in np.flatnonzero(item_mass == 0):
        matrix[nearest_user(int(item), all_users), int(item)] = 3.0

    # Fix-up 2: one connected component. Stray components are rare (the
    # windows overlap) but possible at tiny scales; stitch each one onto
    # the component of item 0 by handing its lowest item to the nearest
    # *main-component* user (nearest overall could be a stray neighbour).
    from scipy.sparse.csgraph import connected_components

    adjacency = sp.bmat(
        [[None, abs(matrix.tocsr())], [abs(matrix.tocsr()).T, None]],
        format="csr",
    )
    count, labels = connected_components(adjacency, directed=False)
    if count > 1:
        main = labels[n_users]  # component of item 0
        main_users = np.flatnonzero(labels[:n_users] == main)
        item_labels = labels[n_users:]
        for component in range(count):
            if component == main:
                continue
            stray = np.flatnonzero(item_labels == component)
            if stray.size == 0:  # component of users only: impossible,
                continue         # every user rates >= 1 item
            matrix[nearest_user(int(stray[0]), main_users), int(stray[0])] = 3.0

    return RatingDataset(
        matrix.tocsr(),
        user_labels=tuple(f"user{u}" for u in range(n_users)),
        item_labels=tuple(f"item{i}" for i in range(n_items)),
    )


def _build_tree(config: SyntheticConfig) -> CategoryTree:
    return CategoryTree.build_balanced(
        [config.n_genres, config.subgenres_per_genre, config.leaves_per_subgenre],
        root_name=config.name,
        level_names=["genre", "subgenre", "category"],
    )


def generate_dataset(config: SyntheticConfig, seed=0) -> SyntheticData:
    """Sample a dataset from the generative model.

    The procedure (all draws from ``seed``):

    1. Build the category tree; spread items uniformly over leaf categories;
       an item's *genre* is its top-level ancestor.
    2. Give items Zipf attractiveness (rank order randomised so popularity is
       independent of genre).
    3. For each user, draw a genre mixture θ_u (specific or generalist) and an
       activity budget n_u.
    4. The user rates n_u distinct items sampled ∝ attractiveness^bias ×
       affinity(θ_u, genre(item)) via Gumbel top-k (weighted sampling without
       replacement).
    5. Star value = 1 + 4·(affinity_weight·affinity + (1-w)·uniform) + noise,
       rounded and clipped to 1–5.
    """
    if not isinstance(config, SyntheticConfig):
        raise ConfigError(f"config must be SyntheticConfig; got {type(config).__name__}")
    rng = check_random_state(seed)

    tree = _build_tree(config)
    leaves = tree.leaves()
    n_leaves = leaves.size

    # 1. items → leaf categories (uniform, shuffled), genre = top ancestor.
    item_leaves = leaves[rng.integers(0, n_leaves, size=config.n_items)]
    leaf_to_genre = {}
    genre_nodes = tree.children(0)
    for leaf in leaves:
        top = tree.path(int(leaf))[0]
        leaf_to_genre[int(leaf)] = genre_nodes.index(top)
    item_genres = np.array([leaf_to_genre[int(l)] for l in item_leaves], dtype=np.int64)

    # 2. Zipf attractiveness with randomised rank order.
    attractiveness = zipf_weights(config.n_items, config.popularity_exponent)
    attractiveness = attractiveness[rng.permutation(config.n_items)]

    # 3. user activity, then tastes. Breadth correlates with activity —
    # the empirical regularity behind the paper's item-based entropy
    # (Eq. 10: "the broader a user's tastes are, the more items he/she
    # rates"): light raters are likelier to be taste-specific.
    activity = truncated_lognormal(
        config.n_users, config.activity_mean_log, config.activity_sigma_log,
        config.activity_min, config.activity_max, rng,
    ).astype(np.int64)
    activity_percentile = np.argsort(np.argsort(activity)) / max(config.n_users - 1, 1)
    p_specific = np.clip(
        2.0 * config.specific_user_fraction * (1.0 - activity_percentile), 0.0, 1.0
    )
    is_specific = rng.random(config.n_users) < p_specific
    concentrations = np.where(
        is_specific, config.dirichlet_specific, config.dirichlet_general
    )
    user_topics = np.vstack([
        rng.dirichlet(np.full(config.n_genres, c)) for c in concentrations
    ])

    # 4–5. choices + stars.
    log_attr = config.popularity_bias * np.log(attractiveness)
    rows, cols, vals = [], [], []
    for user in range(config.n_users):
        affinity = user_topics[user, item_genres]          # in [0, 1]
        # Plackett–Luce weights; epsilon keeps off-taste items reachable.
        log_w = log_attr + np.log(affinity + 0.02)
        gumbel = rng.gumbel(size=config.n_items)
        chosen = np.argpartition(-(log_w + gumbel), activity[user])[:activity[user]]

        rel_affinity = affinity[chosen] / max(user_topics[user].max(), 1e-12)
        base = (config.affinity_weight * rel_affinity
                + (1.0 - config.affinity_weight) * rng.random(chosen.size))
        stars = np.rint(1.0 + 4.0 * base + rng.normal(0.0, config.rating_noise,
                                                      size=chosen.size))
        stars = np.clip(stars, 1, 5)
        rows.extend([user] * chosen.size)
        cols.extend(chosen.tolist())
        vals.extend(stars.tolist())

    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(config.n_users, config.n_items)
    )
    if config.prune_unrated:
        rated = np.flatnonzero(np.asarray((matrix != 0).sum(axis=0)).ravel() > 0)
        matrix = sp.csr_matrix(matrix[:, rated])
        item_leaves = item_leaves[rated]
        item_genres = item_genres[rated]
        item_labels = tuple(f"item{i}" for i in rated)
    else:
        item_labels = tuple(f"item{i}" for i in range(config.n_items))
    dataset = RatingDataset(
        matrix,
        user_labels=tuple(f"user{u}" for u in range(config.n_users)),
        item_labels=item_labels,
    )
    ontology = ItemOntology(tree, item_leaves)
    return SyntheticData(
        dataset=dataset,
        ontology=ontology,
        item_genres=item_genres,
        user_topics=user_topics,
        config=config,
    )

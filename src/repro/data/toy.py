"""Small exactly-known fixtures, including the paper's Figure 2 graph.

:func:`figure2_dataset` reproduces the worked example of §3.3: five users,
six movies, ratings as in the Figure 2 table. The paper reports truncated
hitting times ``H(U5|M4)=17.7 < H(U5|M1)=19.6 < H(U5|M5)=20.2 <
H(U5|M6)=20.3``, which this library reproduces to two decimals (see
``tests/core/test_fig2_golden.py``) — the fixture doubles as the library's
convention anchor (edge weight = raw rating).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import RatingDataset

__all__ = [
    "figure2_dataset",
    "FIGURE2_RATINGS",
    "FIGURE2_PAPER_HITTING_TIMES",
    "FIGURE2_MOVIE_TITLES",
    "chain_dataset",
    "two_community_dataset",
]

#: (user, movie, stars) triples exactly as printed in Figure 2 of the paper.
FIGURE2_RATINGS: tuple[tuple[str, str, int], ...] = (
    ("U1", "M1", 5), ("U1", "M2", 3), ("U1", "M5", 3), ("U1", "M6", 5),
    ("U2", "M1", 5), ("U2", "M2", 4), ("U2", "M3", 5), ("U2", "M5", 4), ("U2", "M6", 5),
    ("U3", "M1", 4), ("U3", "M2", 5), ("U3", "M3", 4),
    ("U4", "M3", 5), ("U4", "M4", 5),
    ("U5", "M2", 4), ("U5", "M3", 5),
)

#: Truncated hitting times to U5 reported in §3.3 of the paper.
FIGURE2_PAPER_HITTING_TIMES: dict[str, float] = {
    "M4": 17.7,
    "M1": 19.6,
    "M5": 20.2,
    "M6": 20.3,
}

#: Movie titles printed in Figure 2 (M1–M3 Action, M4–M6 per figure labels).
FIGURE2_MOVIE_TITLES: dict[str, str] = {
    "M1": "Patton (1970)",
    "M2": "Gandhi (1982)",
    "M3": "First Blood (1982)",
    "M4": "Highlander (1986)",
    "M5": "Ben-Hur (1959)",
    "M6": "The Seventh Scroll (1999)",
}


def figure2_dataset() -> RatingDataset:
    """The 5-user × 6-movie rating matrix of the paper's Figure 2."""
    return RatingDataset.from_triples(FIGURE2_RATINGS)


def chain_dataset(n_links: int = 3) -> RatingDataset:
    """A path-shaped bipartite graph: u0–i0–u1–i1–…

    Every user rates the items adjacent to it in the chain with rating 1.
    Useful for closed-form expectations: on a path the hitting times of a
    simple random walk are exactly computable.
    """
    triples = []
    for k in range(n_links):
        triples.append((f"u{k}", f"i{k}", 1.0))
        triples.append((f"u{k + 1}", f"i{k}", 1.0))
    return RatingDataset.from_triples(triples, rating_scale=None)


def two_community_dataset(bridge: bool = True) -> RatingDataset:
    """Two dense user-item blocks, optionally joined by one bridge rating.

    With ``bridge=False`` the graph is disconnected — the fixture for the
    disconnectivity error paths.
    """
    triples = []
    for u in range(3):
        for i in range(3):
            triples.append((f"a_u{u}", f"a_i{i}", 4.0))
    for u in range(3):
        for i in range(3):
            triples.append((f"b_u{u}", f"b_i{i}", 4.0))
    if bridge:
        triples.append((f"a_u0", f"b_i0", 3.0))
    return RatingDataset.from_triples(triples)

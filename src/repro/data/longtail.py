"""Long-tail catalogue analysis: the paper's r% head/tail split (§5.1.2).

The paper defines *long tail products* as the least-rated items that in
aggregate generate ``r%`` of total ratings (``r = 20`` following the 80/20
rule), and reports that ≈66% of MovieLens movies and ≈73% of Douban books are
in that tail. :func:`long_tail_split` implements that definition, and
:class:`LongTailStats` packages the Pareto-shape statistics behind Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import DataError
from repro.utils.validation import check_fraction

__all__ = ["LongTailSplit", "LongTailStats", "long_tail_split", "long_tail_stats"]


@dataclass(frozen=True)
class LongTailSplit:
    """Result of the r% tail split.

    Attributes
    ----------
    tail_items, head_items:
        Item indices in the tail / head, each sorted ascending.
    tail_fraction_of_catalog:
        |tail| / |catalog| — the paper's "66% of movies" number.
    tail_fraction_of_ratings:
        Achieved fraction of ratings carried by the tail (≤ requested r).
    popularity:
        Per-item rating counts the split was computed from.
    """

    tail_items: np.ndarray
    head_items: np.ndarray
    tail_fraction_of_catalog: float
    tail_fraction_of_ratings: float
    popularity: np.ndarray

    def is_tail(self) -> np.ndarray:
        """Boolean mask over items, True for tail members."""
        mask = np.zeros(self.popularity.size, dtype=bool)
        mask[self.tail_items] = True
        return mask


def long_tail_split(dataset_or_popularity, ratio: float = 0.20) -> LongTailSplit:
    """Split the catalogue into tail and head by the paper's r% rule.

    Items are sorted by ascending popularity (ties by ascending index, i.e.
    never-rated items first); the tail is the maximal prefix whose cumulative
    rating count stays **at or below** ``ratio`` of the total.

    Parameters
    ----------
    dataset_or_popularity:
        A :class:`RatingDataset` or a 1-D array of per-item rating counts.
    ratio:
        Fraction of total ratings the tail may carry (paper: 0.20).
    """
    ratio = check_fraction(ratio, "ratio", inclusive_high=False)
    if isinstance(dataset_or_popularity, RatingDataset):
        popularity = dataset_or_popularity.item_popularity()
    else:
        popularity = np.asarray(dataset_or_popularity, dtype=np.int64).ravel()
        if popularity.size == 0:
            raise DataError("empty popularity vector")
        if np.any(popularity < 0):
            raise DataError("popularity counts must be non-negative")
    total = popularity.sum()
    if total == 0:
        raise DataError("no ratings at all; tail split is undefined")
    order = np.lexsort((np.arange(popularity.size), popularity))
    cumulative = np.cumsum(popularity[order])
    n_tail = int(np.searchsorted(cumulative, ratio * total, side="right"))
    tail = np.sort(order[:n_tail])
    head = np.sort(order[n_tail:])
    achieved = float(cumulative[n_tail - 1] / total) if n_tail else 0.0
    return LongTailSplit(
        tail_items=tail,
        head_items=head,
        tail_fraction_of_catalog=n_tail / popularity.size,
        tail_fraction_of_ratings=achieved,
        popularity=popularity,
    )


@dataclass(frozen=True)
class LongTailStats:
    """Pareto-shape statistics of a catalogue (Figure 1 material).

    Attributes
    ----------
    n_items, n_ratings:
        Catalogue size and rating volume.
    top20_share:
        Fraction of ratings carried by the most popular 20% of items — the
        classic Pareto "80" number.
    gini:
        Gini coefficient of the popularity distribution (0 = uniform, →1 =
        all ratings on one item).
    tail_fraction_of_catalog:
        Catalogue share of the 20%-of-ratings tail (paper: ≈0.66 / ≈0.73).
    popularity_curve:
        Rating counts sorted descending — Figure 1's sales-vs-rank curve.
    """

    n_items: int
    n_ratings: int
    top20_share: float
    gini: float
    tail_fraction_of_catalog: float
    popularity_curve: np.ndarray


def long_tail_stats(dataset_or_popularity, ratio: float = 0.20) -> LongTailStats:
    """Compute the Figure 1 shape statistics for a catalogue."""
    split = long_tail_split(dataset_or_popularity, ratio)
    popularity = split.popularity
    curve = np.sort(popularity)[::-1].astype(np.int64)
    total = int(curve.sum())
    n_top = max(1, int(np.ceil(0.2 * curve.size)))
    top20 = float(curve[:n_top].sum() / total)
    sorted_asc = np.sort(popularity).astype(np.float64)
    n = sorted_asc.size
    if sorted_asc.sum() == 0:
        gini = 0.0
    else:
        ranks = np.arange(1, n + 1)
        gini = float((2 * np.sum(ranks * sorted_asc) / (n * sorted_asc.sum())) - (n + 1) / n)
    return LongTailStats(
        n_items=n,
        n_ratings=total,
        top20_share=top20,
        gini=gini,
        tail_fraction_of_catalog=split.tail_fraction_of_catalog,
        popularity_curve=curve,
    )

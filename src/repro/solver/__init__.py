"""Prepared walk operators: the zero-revalidation solver core.

The absorbing-chain free functions in :mod:`repro.graph.absorbing` validate
their transition matrix on every call — an O(nnz) scan that is pure waste on
the warm serving path, where the matrix came out of our own
:class:`~repro.graph.cache.TransitionCache` and was row-normalized at build
time. :class:`WalkOperator` moves that validation to construction time and
owns every other request-independent structure of the τ-sweep solve:

* the CSR transition matrix, validated **exactly once**, plus a lazily
  materialized float32 copy for the bandwidth-halved serving mode;
* connected-component labels for O(n) label-indexed reachability lookups
  (replacing per-query ``np.isin`` sorts);
* memoized per-cost-model local cost vectors;
* an LRU of *solve plans* (pin coordinates) plus a per-set reachability
  column memo, so a repeated cohort re-derives nothing;
* chunked multi-RHS sweeps through a single pair of ping-pong buffers,
  bounding dense memory at ``2 × n_nodes × chunk_size`` floats regardless
  of cohort size;
* an LRU of ``splu`` factorizations (one per absorbing set) for the exact
  mode.

:class:`~repro.graph.cache.TransitionCache` hands out prepared operators;
:class:`~repro.core.graph_base.RandomWalkRecommender` consumes them. The
free functions remain as thin validated wrappers for external callers.
"""

from repro.solver.operator import SOLVE_DTYPES, WalkOperator

__all__ = ["SOLVE_DTYPES", "WalkOperator"]

"""The prepared walk operator: validate once, solve many times.

:class:`WalkOperator` is the solver core behind both the free functions of
:mod:`repro.graph.absorbing` and the warm serving path. It is built around
one idea: everything that does not depend on the query — matrix validation,
the float32 copy, cost vectors, component-label reachability, LU factors —
is computed at most once per operator, and the per-query remainder (pin
coordinates, reachability columns) is memoized in a small plan LRU so a
repeated cohort re-derives nothing.

The truncated sweep itself runs as ``Y ← P·X`` through scipy's low-level
``csr_matvecs`` kernel (the same routine scipy's ``@`` dispatches to), which
*accumulates* into a caller-owned buffer. That lets the τ-sweep ping-pong
between two preallocated ``n_nodes × chunk`` buffers instead of allocating a
fresh dense matrix per sweep, and keeps the float64 results bit-identical to
the historical ``x = c + P @ x`` formulation (IEEE addition is commutative,
and CSR mat-mat accumulates each output row in the same nonzero order
regardless of the number of right-hand sides — so chunking never changes a
column either).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.csgraph import dijkstra

from repro.exceptions import GraphError
from repro.utils.validation import as_index_array, check_in_options, check_positive_int

try:  # scipy's C kernel for Y += A @ X (what `csr @ dense` calls internally)
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - ancient/renamed scipy layouts
    _csr_matvecs = None

__all__ = ["SOLVE_DTYPES", "WalkOperator"]

#: The dtype policies the solver core supports.
SOLVE_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class _SolvePlan:
    """Pin structure of one absorbing-set cohort, memoized by content.

    ``pin_rows``/``pin_cols`` are the flat (node, column) coordinates of
    every absorbing entry (``pin_cols`` ascending, so chunk slicing is a
    ``searchsorted``). Reachability is deliberately *not* stored here — it
    is memoized per set in the operator's column memo, which hits across
    different cohorts containing the same user and costs one boolean
    column per entry instead of an ``(n_nodes, n_sets)`` matrix per plan.
    """

    sets: tuple
    pin_rows: np.ndarray
    pin_cols: np.ndarray


class WalkOperator:
    """A transition matrix prepared for repeated absorbing-walk solves.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` (zero rows allowed for isolated nodes).
        Validated here, exactly once; every solve afterwards trusts it.
    labels:
        Optional connected-component id per node. When given, per-set
        reachability is an O(n) label-indexed lookup (valid on symmetric
        graphs, where component membership *is* reachability); when absent
        it falls back to a reversed-edge Dijkstra per absorbing set, which
        is correct for arbitrary transition patterns.
    user_mask, node_entropy:
        Optional per-node structure handed to cost models by
        :meth:`costs_for`; required only when a cost model is used.
    dtype:
        Default solve precision: ``"float64"`` (reference) or ``"float32"``
        (serving mode — halves SpMM bandwidth; top-k parity with float64 is
        asserted in the test suite). Overridable per solve.
    chunk_size:
        Default column budget per multi-RHS chunk; bounds the dense sweep
        memory at ``2 × n_nodes × chunk_size`` floats.
    validate:
        Set False only for matrices this library normalized itself.
    """

    def __init__(self, transition, *, labels: np.ndarray | None = None,
                 user_mask: np.ndarray | None = None,
                 node_entropy: np.ndarray | None = None,
                 dtype: str = "float64", chunk_size: int = 1024,
                 validate: bool = True, plan_cache_size: int = 32,
                 factor_cache_size: int = 8, substochastic: bool = False):
        self.dtype = check_in_options(dtype, "dtype", SOLVE_DTYPES)
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.substochastic = bool(substochastic)
        self.validations = 0
        self.solves = 0
        self.columns_solved = 0
        self.plan_hits = 0
        self.plan_misses = 0
        if validate:
            self.transition = self._validate(transition)
        else:
            self.transition = self._as_csr64(transition)
        # Per-node leaked walk mass (substochastic row shortfall). The
        # τ-sweep charges it the *remaining walk budget* each iteration —
        # pessimistic completion: a walk escaping the halo is billed as if
        # it wandered for every step truncation still allows, so halo
        # values are one-sided overestimates of the full-graph values and
        # an item can only ever be *demoted* by sharding, never promoted.
        # (Zero rows get leak 1, but they are unreachable and masked to
        # inf by every solve path, so the charge is inert.)
        if self.substochastic:
            shortfall = 1.0 - np.asarray(self.transition.sum(axis=1)).ravel()
            self._leak = np.where(shortfall > 1e-12, shortfall, 0.0)
        else:
            self._leak = None
        n = self.transition.shape[0]
        if labels is not None:
            labels = np.asarray(labels).ravel()
            if labels.shape[0] != n:
                raise GraphError(
                    f"labels length {labels.shape[0]} != node count {n}"
                )
        self.labels = labels
        self.user_mask = (None if user_mask is None
                          else np.asarray(user_mask, dtype=bool).ravel())
        self.node_entropy = (None if node_entropy is None
                             else np.asarray(node_entropy, dtype=np.float64).ravel())
        self._transition32: sp.csr_matrix | None = None
        self._unit_costs: np.ndarray | None = None
        self._cost_memo: tuple | None = None  # (cost_model, costs)
        self._plans: OrderedDict[tuple, _SolvePlan] = OrderedDict()
        self._plan_cache_size = check_positive_int(plan_cache_size, "plan_cache_size")
        self._factors: OrderedDict[bytes, object] = OrderedDict()
        self._factor_cache_size = check_positive_int(
            factor_cache_size, "factor_cache_size"
        )
        # Per-set reachability columns, keyed by the set's component labels
        # (labels mode) or the set itself (Dijkstra mode). One n-byte bool
        # column per entry; hits across any cohort containing the set.
        self._reachable_memo: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._reachable_memo_size = 1024

    # -- construction-time validation ----------------------------------------

    @staticmethod
    def _as_csr64(transition) -> sp.csr_matrix:
        if (sp.issparse(transition) and transition.format == "csr"
                and transition.dtype == np.float64):
            return transition
        return sp.csr_matrix(transition, dtype=np.float64)

    def _validate(self, transition) -> sp.csr_matrix:
        p = self._as_csr64(transition)
        self.validations += 1
        if p.shape[0] != p.shape[1]:
            raise GraphError(f"transition matrix must be square; got {p.shape}")
        if p.nnz and (p.data.min() < 0):
            raise GraphError("transition matrix has negative entries")
        sums = np.asarray(p.sum(axis=1)).ravel()
        if self.substochastic:
            # Degree-true halo mode (DESIGN.md §12): boundary rows leak walk
            # mass across the shard cut, so any row sum in [0, 1] is legal —
            # only mass *creation* would corrupt the sweep.
            bad = np.flatnonzero(sums > 1.0 + 1e-6)
            if bad.size:
                raise GraphError(
                    f"{bad.size} rows exceed unit mass in substochastic mode "
                    f"(first offender: row {bad[0]}, sum {sums[bad[0]]:.6f})"
                )
            return p
        bad = np.flatnonzero((sums > 1e-9) & (np.abs(sums - 1.0) > 1e-6))
        if bad.size:
            raise GraphError(
                f"{bad.size} rows are neither zero nor stochastic "
                f"(first offender: row {bad[0]}, sum {sums[bad[0]]:.6f}); "
                "pass substochastic=True for degree-true halo transitions"
            )
        return p

    @property
    def n_nodes(self) -> int:
        return self.transition.shape[0]

    def matrix(self, dtype: str | None = None) -> sp.csr_matrix:
        """The CSR transition matrix in the requested solve dtype.

        The float32 copy (same sparsity pattern, down-cast data) is
        materialized on first use and kept for the operator's lifetime.
        """
        dtype = self.dtype if dtype is None else check_in_options(
            dtype, "dtype", SOLVE_DTYPES
        )
        if dtype == "float64":
            return self.transition
        if self._transition32 is None:
            p = self.transition
            self._transition32 = sp.csr_matrix(
                (p.data.astype(np.float32), p.indices, p.indptr), shape=p.shape
            )
        return self._transition32

    # -- cost vectors ---------------------------------------------------------

    def _check_costs(self, local_costs) -> np.ndarray:
        n = self.n_nodes
        if local_costs is None:
            if self._unit_costs is None:
                self._unit_costs = np.ones(n)
            return self._unit_costs
        c = np.asarray(local_costs, dtype=np.float64).ravel()
        if c.shape[0] != n:
            raise GraphError(f"local_costs length {c.shape[0]} != node count {n}")
        if np.any(~np.isfinite(c)) or np.any(c < 0):
            raise GraphError("local_costs must be finite and non-negative")
        return c

    def costs_for(self, cost_model) -> np.ndarray | None:
        """Memoized local-cost vector for ``cost_model`` (None = unit costs).

        The cost vector depends only on the operator's frozen structures
        (transition, user mask, entropy slice), so one instance of a cost
        model maps to one vector for the operator's lifetime.
        """
        if cost_model is None:
            return None
        if self._cost_memo is not None and self._cost_memo[0] is cost_model:
            return self._cost_memo[1]
        if self.user_mask is None or self.node_entropy is None:
            raise GraphError(
                "cost models need user_mask and node_entropy; construct the "
                "WalkOperator with both"
            )
        costs = cost_model.local_costs(
            self.transition, self.user_mask, self.node_entropy
        )
        costs = self._check_costs(costs)
        self._cost_memo = (cost_model, costs)
        return costs

    # -- reachability ---------------------------------------------------------

    def _reachable_column(self, absorbing: np.ndarray) -> np.ndarray:
        """Memoized boolean reachability column for one absorbing set.

        With component labels the column depends only on the *labels*
        present in the set — a tiny key space (usually one component per
        query) — and is a label-indexed gather on a miss; without labels
        the key is the set itself and a miss runs the reversed-edge
        Dijkstra the free functions always used.
        """
        if self.labels is not None:
            labels = self.labels
            present_labels = np.unique(labels[absorbing])
            key = b"l" + present_labels.tobytes()
            column = self._reachable_memo.get(key)
            if column is None:
                n_labels = int(labels.max()) + 1 if labels.size else 0
                present = np.zeros(n_labels, dtype=bool)
                present[present_labels] = True
                column = present[labels]
        else:
            key = b"d" + absorbing.tobytes()
            column = self._reachable_memo.get(key)
            if column is None:
                dist = dijkstra(self.transition.T, indices=absorbing,
                                unweighted=True, min_only=True)
                column = np.isfinite(dist)
        if key in self._reachable_memo:
            self._reachable_memo.move_to_end(key)
        else:
            self._reachable_memo[key] = column
            while len(self._reachable_memo) > self._reachable_memo_size:
                self._reachable_memo.popitem(last=False)
        return column

    def reachable_columns(self, sets: list[np.ndarray]) -> np.ndarray:
        """``(n_nodes, len(sets))`` reachability, one boolean column per set.

        Columns come from the per-set memo (:meth:`_reachable_column`):
        no sorting, no repeated graph traversal.
        """
        n = self.n_nodes
        if not sets:
            return np.zeros((n, 0), dtype=bool)
        out = np.empty((n, len(sets)), dtype=bool)
        for column, absorbing in enumerate(sets):
            out[:, column] = self._reachable_column(absorbing)
        return out

    # -- solve plans ----------------------------------------------------------

    def _plan(self, absorbing_sets: list[np.ndarray]) -> _SolvePlan:
        n = self.n_nodes
        sets = tuple(
            as_index_array(a, n, "absorbing") for a in absorbing_sets
        )
        if any(a.size == 0 for a in sets):
            raise GraphError("absorbing set is empty")
        key = tuple(a.tobytes() for a in sets)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.plan_hits += 1
            return plan
        self.plan_misses += 1
        pin_rows = np.concatenate(sets)
        pin_cols = np.repeat(np.arange(len(sets)), [a.size for a in sets])
        plan = _SolvePlan(sets=sets, pin_rows=pin_rows, pin_cols=pin_cols)
        self._plans[key] = plan
        while len(self._plans) > self._plan_cache_size:
            self._plans.popitem(last=False)
        return plan

    # -- truncated sweeps -----------------------------------------------------

    @staticmethod
    def _spmm_into(p: sp.csr_matrix, x: np.ndarray, y: np.ndarray) -> None:
        """``y ← P @ x`` into the caller's buffer (zero-filled here)."""
        if _csr_matvecs is not None:
            y.fill(0)
            _csr_matvecs(p.shape[0], p.shape[1], x.shape[1],
                         p.indptr, p.indices, p.data, x.ravel(), y.ravel())
        else:  # pragma: no cover - fallback for scipys without the kernel
            y[:] = p @ x

    def _sweep_chunk(self, p: sp.csr_matrix, costs: np.ndarray,
                     n_iterations: int, pin_rows: np.ndarray,
                     pin_cols: np.ndarray, x: np.ndarray,
                     y: np.ndarray,
                     leak_costs: np.ndarray | None = None) -> np.ndarray:
        """Run the τ-sweep for one chunk through the (x, y) ping-pong pair.

        The first sweep of the classical loop computes ``c + P·0`` — its
        result is just the pinned cost column — so the iteration starts
        there and runs ``τ − 1`` SpMMs, bit-identical to τ sweeps from zero.

        ``leak_costs`` (substochastic mode) is the per-node escaped mass
        scaled by the per-step cost bound; sweep ``k`` (computing the
        ``k+1``-step values) adds ``leak_costs · k`` — the upper bound on
        what an escaped walk could still cost with ``k`` budget steps left.
        By induction the chunk's result dominates the full-graph truncated
        values entrywise.
        """
        col = costs[:, None]
        x[:] = col
        x[pin_rows, pin_cols] = 0
        for step in range(1, n_iterations):
            self._spmm_into(p, x, y)
            y += col
            if leak_costs is not None:
                y += leak_costs[:, None] * step
            y[pin_rows, pin_cols] = 0
            x, y = y, x
        return x

    def solve_multi(self, absorbing_sets: list[np.ndarray],
                    n_iterations: int = 15,
                    local_costs: np.ndarray | None = None,
                    dtype: str | None = None,
                    chunk_size: int | None = None,
                    reachable: np.ndarray | None = None) -> np.ndarray:
        """Truncated absorbing values, one column per absorbing set.

        The cohort is processed in chunks of at most ``chunk_size`` columns;
        each chunk's τ sweeps ping-pong between two preallocated buffers that
        are reused across chunks, so peak dense memory is
        ``2 × n_nodes × chunk_size`` solve-dtype floats plus the float64
        output — a 10k-user cohort no longer materializes a fresh
        ``(n_nodes, 10k)`` matrix per sweep.

        ``reachable`` overrides the plan's reachability columns (shape
        ``(n_nodes, n_sets)``); callers with precomputed masks keep the
        historical free-function semantics.
        """
        n = self.n_nodes
        n_sets = len(absorbing_sets)
        if n_sets == 0:
            return np.zeros((n, 0))
        n_iterations = check_positive_int(n_iterations, "n_iterations")
        chunk = self.chunk_size if chunk_size is None else check_positive_int(
            chunk_size, "chunk_size"
        )
        costs = self._check_costs(local_costs)
        plan = self._plan(absorbing_sets)
        if reachable is None:
            reachable = self.reachable_columns(list(plan.sets))
        else:
            reachable = np.asarray(reachable, dtype=bool)
            if reachable.shape != (n, n_sets):
                raise GraphError(
                    f"reachable must have shape {(n, n_sets)}; got {reachable.shape}"
                )
        dtype = self.dtype if dtype is None else check_in_options(
            dtype, "dtype", SOLVE_DTYPES
        )
        np_dtype = np.float32 if dtype == "float32" else np.float64
        p = self.matrix(dtype)
        solve_costs = costs.astype(np_dtype, copy=False)
        leak_costs = None
        if self._leak is not None and self._leak.any():
            # Pessimistic completion rate: escaped mass billed at the local
            # per-step cost ceiling (exactly 1 for unit-cost AT/HT; the
            # shard-local max is the bound proxy for entropy cost models).
            leak_costs = (self._leak * float(costs.max())).astype(np_dtype)

        out = np.empty((n, n_sets))
        width = min(chunk, n_sets)
        x = np.empty((n, width), dtype=np_dtype)
        y = np.empty((n, width), dtype=np_dtype)
        for lo in range(0, n_sets, width):
            hi = min(lo + width, n_sets)
            m = hi - lo
            # pin_cols is ascending, so each chunk's pins are one slice.
            plo, phi = np.searchsorted(plan.pin_cols, [lo, hi])
            rows = plan.pin_rows[plo:phi]
            cols = plan.pin_cols[plo:phi] - lo
            if m == width:
                xb, yb = x, y
            else:  # final partial chunk: exact-width pair, ravel stays a view
                xb = np.empty((n, m), dtype=np_dtype)
                yb = np.empty((n, m), dtype=np_dtype)
            result = self._sweep_chunk(p, solve_costs, n_iterations,
                                       rows, cols, xb, yb,
                                       leak_costs=leak_costs)
            out[:, lo:hi] = result
        out[~reachable] = np.inf
        out[plan.pin_rows, plan.pin_cols] = 0.0
        self.solves += 1
        self.columns_solved += n_sets
        return out

    def solve(self, absorbing: np.ndarray, n_iterations: int = 15,
              local_costs: np.ndarray | None = None,
              dtype: str | None = None) -> np.ndarray:
        """Truncated absorbing values for a single absorbing set.

        A cohort of one: bit-identical to the matching
        :meth:`solve_multi` column by the CSR accumulation-order argument in
        the module docstring.
        """
        return self.solve_multi([np.atleast_1d(np.asarray(absorbing))],
                                n_iterations, local_costs=local_costs,
                                dtype=dtype)[:, 0]

    # -- exact mode -----------------------------------------------------------

    def solve_exact(self, absorbing: np.ndarray,
                    local_costs: np.ndarray | None = None) -> np.ndarray:
        """Exact expected cost-to-absorption via a cached LU factorization.

        The ``(I − P_TT)`` system depends on the absorbing set, so factors
        are memoized per set in a small LRU — a repeated exact query pays
        one triangular solve, not a fresh factorization.
        """
        n = self.n_nodes
        plan = self._plan([np.atleast_1d(np.asarray(absorbing))])
        absorbing = plan.sets[0]
        costs = self._check_costs(local_costs)
        reachable = self._reachable_column(absorbing)
        values = np.full(n, np.inf)
        values[absorbing] = 0.0
        transient_mask = reachable.copy()
        transient_mask[absorbing] = False
        transient = np.flatnonzero(transient_mask)
        self.solves += 1
        self.columns_solved += 1
        if transient.size == 0:
            return values
        key = absorbing.tobytes()
        factor = self._factors.get(key)
        if factor is None:
            q = self.transition[transient][:, transient].tocsc()
            system = (sp.eye(transient.size, format="csc") - q).tocsc()
            factor = spla.splu(system)
            self._factors[key] = factor
            while len(self._factors) > self._factor_cache_size:
                self._factors.popitem(last=False)
        else:
            self._factors.move_to_end(key)
        values[transient] = np.atleast_1d(factor.solve(costs[transient]))
        return values

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Counters for cache/serving reports."""
        return {
            "validations": self.validations,
            "solves": self.solves,
            "columns_solved": self.columns_solved,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "factors_cached": len(self._factors),
            "dtype": self.dtype,
            "chunk_size": self.chunk_size,
        }

    def __repr__(self) -> str:
        return (
            f"WalkOperator(n_nodes={self.n_nodes}, nnz={self.transition.nnz}, "
            f"dtype={self.dtype!r}, chunk_size={self.chunk_size}, "
            f"validations={self.validations}, solves={self.solves})"
        )

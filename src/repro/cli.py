"""Command-line interface: experiments, model artifacts, cohort serving.

Usage (module form; also installed as the ``repro-experiments`` script)::

    python -m repro.cli list
    python -m repro.cli run fig5a [--scale 0.5] [--out results.csv]
    python -m repro.cli run table2 --scale 0.3
    python -m repro.cli serve-batch --algorithm AT --n-users 64 --k 10
    python -m repro.cli fit --algorithm AT --out at-model.npz
    python -m repro.cli serve --artifact at-model.npz --n-users 64 --k 10
    python -m repro.cli update --artifact at-model.npz --events events.log \
        --out at-model-updated.npz
    python -m repro.cli shard-fit --algorithm AT --shards 4 --out fleet/
    python -m repro.cli serve --shards fleet/ --n-users 64 --k 10
    python -m repro.cli serve --shards fleet/ --fleet-procs 4 --n-users 64
    python -m repro.cli update --shards fleet/ --events events.log --out fleet/

``run`` maps each experiment name to its driver in :mod:`repro.experiments`
and prints the paper-shaped text table (optionally a CSV). ``serve-batch``
exercises the batch serving layer end-to-end: fit one algorithm, score a
cohort of users through the vectorised batch path, and report the ranked
lists plus the achieved throughput. ``fit`` and ``serve`` are the
offline/online split: ``fit`` trains once and saves a versioned model
artifact (optionally plus a precomputed top-K store); ``serve`` boots a
:class:`~repro.service.ServingEngine` from the artifact — no refitting —
and answers a cohort with warm-cache statistics in the report. ``update``
is the incremental half: it replays a rating-event log (new users, new
items, re-rates) against a saved artifact through
:meth:`~repro.service.ServingEngine.apply_updates` — no refit, targeted
cache invalidation — and can save the updated artifact back.
``--fleet-procs N`` on ``serve`` / ``serve-http`` runs a sharded fleet as
one supervised worker process per shard (crash restarts, write-ahead-log
replay, degraded serving while a shard is down); ``serve-http`` stops
admission, drains in-flight requests, and prints its report when it
receives SIGTERM or SIGINT.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys

import numpy as np

from repro.eval.reporting import format_series, format_table, write_csv
from repro.experiments import (
    ExperimentConfig,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig6,
    run_jump_cost_ablation,
    run_lda_engine_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_tau_convergence,
)
from repro.data.synthetic import federated_dataset, giant_component
from repro.experiments.suite import PAPER_ORDER, make_algorithms, make_data
from repro.core.artifacts import peek_artifact
from repro.exceptions import ConfigError, ReproError
from repro.service import (
    PARTITIONERS,
    BatchingServer,
    HttpFrontend,
    ProcessShardFleet,
    ServingEngine,
    ShardedEngine,
    ShardPlan,
    TopKStore,
    load_event_file,
    load_user_file,
    serve_user_cohort,
)
from repro.utils.timer import Timer

__all__ = ["main", "EXPERIMENTS"]


def _fig5_rows(result):
    ns = [1, 5, 10, 20, 30, 50]
    rows = []
    for n in ns:
        row = {"N": n}
        row.update({name: round(v, 3) for name, v in result.recall_at(n).items()})
        rows.append(row)
    return rows


def _fig6_rows(result):
    return [result.row_at(rank) for rank in range(1, result.k + 1)]


def _table1_rows(result):
    best, second = result.best_two()
    return best.rows() + second.rows()


#: name -> (description, callable(config) -> rows)
EXPERIMENTS = {
    "fig1": ("long-tail catalogue statistics (Figure 1)",
             lambda c: [r.row() for r in run_fig1(c)]),
    "fig2": ("worked hitting-time example (Figure 2)",
             lambda c: [r.row() for r in run_fig2()]),
    "fig5a": ("Recall@N on movielens-like data (Figure 5a)",
              lambda c: _fig5_rows(run_fig5("movielens", c))),
    "fig5b": ("Recall@N on douban-like data (Figure 5b)",
              lambda c: _fig5_rows(run_fig5("douban", c, n_cases=150))),
    "fig6a": ("Popularity@N on douban-like data (Figure 6a)",
              lambda c: _fig6_rows(run_fig6("douban", c))),
    "fig6b": ("Popularity@N on movielens-like data (Figure 6b)",
              lambda c: _fig6_rows(run_fig6("movielens", c))),
    "table1": ("LDA topic listings (Table 1)",
               lambda c: _table1_rows(run_table1(c, engine="gibbs",
                                                 n_iterations=40))),
    "table2": ("recommendation diversity (Table 2)",
               lambda c: run_table2(c).rows()),
    "table3": ("ontology similarity (Table 3)",
               lambda c: run_table3(c).rows()),
    "table4": ("subgraph budget sweep (Table 4)",
               lambda c: run_table4(c).rows()),
    "table5": ("per-user efficiency (Table 5)",
               lambda c: run_table5(c).rows()),
    "table6": ("simulated user study (Table 6)",
               lambda c: run_table6(c).rows()),
    "ablation-tau": ("truncation-depth convergence",
                     lambda c: run_tau_convergence(c).rows()),
    "ablation-lda": ("Gibbs vs CVB0 LDA engines",
                     lambda c: run_lda_engine_ablation(c).rows()),
    "ablation-jump-cost": ("Eq. 9 jump-cost sensitivity",
                           lambda c: run_jump_cost_ablation(c)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate experiments from 'Challenging the Long Tail "
                    "Recommendation' (VLDB 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale multiplier (default 1.0)")
    run.add_argument("--seed", type=int, default=7, help="data seed")
    run.add_argument("--out", default=None, help="optional CSV output path")

    serve = sub.add_parser(
        "serve-batch",
        help="score a user cohort end-to-end through the batch serving layer",
    )
    serve.add_argument("--algorithm", default="AT", choices=sorted(PAPER_ORDER),
                       help="recommender to serve (default AT)")
    serve.add_argument("--dataset", default="movielens",
                       choices=("movielens", "douban"),
                       help="synthetic dataset family (default movielens)")
    serve.add_argument("--scale", type=float, default=0.5,
                       help="dataset scale multiplier (default 0.5)")
    serve.add_argument("--seed", type=int, default=7, help="data seed")
    serve.add_argument("--users-file", default=None,
                       help="file with one user index per line "
                            "(default: the first --n-users users)")
    serve.add_argument("--n-users", type=int, default=64,
                       help="cohort size when --users-file is absent (default 64)")
    serve.add_argument("--k", type=int, default=10, help="list length (default 10)")
    serve.add_argument("--batch-size", type=int, default=256,
                       help="users scored per batch (default 256)")
    serve.add_argument("--out", default=None,
                       help="optional CSV path for the full (user, rank, item) rows")

    fit = sub.add_parser(
        "fit",
        help="fit one algorithm and save it as a versioned model artifact",
    )
    fit.add_argument("--algorithm", default="AT", choices=sorted(PAPER_ORDER),
                     help="recommender to fit (default AT)")
    fit.add_argument("--dataset", default="movielens",
                     choices=("movielens", "douban"),
                     help="synthetic dataset family (default movielens)")
    fit.add_argument("--scale", type=float, default=0.5,
                     help="dataset scale multiplier (default 0.5)")
    fit.add_argument("--seed", type=int, default=7, help="data seed")
    fit.add_argument("--out", required=True,
                     help="artifact output path (.npz appended when missing)")
    fit.add_argument("--store-out", default=None,
                     help="also precompute a TopKStore and save it here")
    fit.add_argument("--store-depth", type=int, default=50,
                     help="cached list depth for --store-out (default 50)")
    fit.add_argument("--dtype", default=None, choices=("float32", "float64"),
                     help="serving precision policy baked into the artifact "
                          "(float32 halves walk-solver bandwidth; top-k "
                          "parity with float64 is asserted in the test suite)")

    shard_fit = sub.add_parser(
        "shard-fit",
        help="partition the graph by component and fit one artifact per shard",
    )
    shard_fit.add_argument("--algorithm", default="AT",
                           choices=sorted(PAPER_ORDER),
                           help="recommender to fit per shard (default AT)")
    shard_fit.add_argument("--dataset", default="federated",
                           choices=("federated", "giant", "movielens",
                                    "douban"),
                           help="synthetic dataset family (default federated "
                                "— disjoint tenant blocks; 'giant' is one "
                                "single-component ring catalogue; the other "
                                "single-block families form one component "
                                "and need --partitioner edge-cut for "
                                "--shards > 1)")
    shard_fit.add_argument("--tenants", type=int, default=None,
                           help="tenant blocks in the federated catalogue "
                                "(default: max(--shards, 2))")
    shard_fit.add_argument("--scale", type=float, default=0.5,
                           help="dataset scale multiplier (default 0.5)")
    shard_fit.add_argument("--seed", type=int, default=7, help="data seed")
    shard_fit.add_argument("--shards", type=int, required=True,
                           help="number of shards to balance components into")
    shard_fit.add_argument("--partitioner", default="component",
                           choices=PARTITIONERS,
                           help="'component' balances whole graph components "
                                "(rejects cutting one); 'edge-cut' splits a "
                                "giant component with k-hop halos "
                                "(default component)")
    shard_fit.add_argument("--halo-hops", type=int, default=2,
                           help="ghost-node depth around each edge-cut shard "
                                "(--partitioner edge-cut only; default 2)")
    shard_fit.add_argument("--out", required=True,
                           help="output directory for plan.npz + shard-NNN.npz")

    online = sub.add_parser(
        "serve",
        help="load a model artifact (or sharded-artifact directory) and "
             "serve a cohort through the engine",
    )
    online.add_argument("--artifact", default=None,
                        help="model artifact written by 'fit'")
    online.add_argument("--shards", default=None, metavar="DIR",
                        help="sharded-artifact directory written by "
                             "'shard-fit' (instead of --artifact)")
    online.add_argument("--fleet-procs", type=int, default=0, metavar="N",
                        help="with --shards: run the fleet as N supervised "
                             "worker processes (one per shard; N must equal "
                             "the plan's shard count) with crash restarts "
                             "and WAL recovery; 0 = in-process (default)")
    online.add_argument("--store", default=None,
                        help="optional TopKStore written by 'fit --store-out'")
    online.add_argument("--users-file", default=None,
                        help="file with one user index per line "
                             "(default: the first --n-users users)")
    online.add_argument("--n-users", type=int, default=64,
                        help="cohort size when --users-file is absent (default 64)")
    online.add_argument("--k", type=int, default=10,
                        help="list length (default 10)")
    online.add_argument("--batch-size", type=int, default=256,
                        help="users scored per batch (default 256)")
    online.add_argument("--repeat", type=int, default=1,
                        help="serve the cohort this many times (>1 shows the "
                             "warm-cache speedup; default 1)")
    online.add_argument("--dtype", default=None, choices=("float32", "float64"),
                        help="override the artifact's serving precision policy")
    online.add_argument("--workers", type=int, default=1,
                        help="worker-pool size for dispatching independent "
                             "component-groups of a cohort (default 1)")
    online.add_argument("--worker-mode", default="thread",
                        choices=("thread", "process"),
                        help="worker pool flavour for --workers > 1 "
                             "(default thread)")
    online.add_argument("--mmap", action="store_true",
                        help="memory-map the artifact arrays (v3 artifacts) "
                             "instead of materialising them: O(open) boot, "
                             "copy-on-first-write, pages shared across "
                             "processes")
    online.add_argument("--out", default=None,
                        help="optional CSV path for the full (user, rank, item) rows")

    http = sub.add_parser(
        "serve-http",
        help="serve concurrent single-user requests over HTTP through the "
             "micro-batching front end (artifact or sharded fleet)",
    )
    http.add_argument("--artifact", default=None,
                      help="model artifact written by 'fit'")
    http.add_argument("--shards", default=None, metavar="DIR",
                      help="sharded-artifact directory written by "
                           "'shard-fit' (instead of --artifact)")
    http.add_argument("--fleet-procs", type=int, default=0, metavar="N",
                      help="with --shards: run the fleet as N supervised "
                           "worker processes (one per shard; N must equal "
                           "the plan's shard count); degraded shards answer "
                           "HTTP 503 until restarted; 0 = in-process "
                           "(default)")
    http.add_argument("--store", default=None,
                      help="optional TopKStore written by 'fit --store-out' "
                           "(single-artifact serving only)")
    http.add_argument("--host", default="127.0.0.1",
                      help="bind address (default 127.0.0.1)")
    http.add_argument("--port", type=int, default=8377,
                      help="TCP port; 0 picks an ephemeral port "
                           "(default 8377)")
    http.add_argument("--max-batch", type=int, default=32,
                      help="most requests coalesced into one cohort solve "
                           "(default 32; 1 disables batching)")
    http.add_argument("--max-delay-ms", type=float, default=2.0,
                      help="longest wait for stragglers after a batch opens "
                           "(default 2.0)")
    http.add_argument("--max-queue", type=int, default=1024,
                      help="admission-queue bound; arrivals beyond it are "
                           "shed with HTTP 429 (default 1024)")
    http.add_argument("--timeout-ms", type=float, default=None,
                      help="default per-request deadline; a miss answers "
                           "HTTP 504 (default: none)")
    http.add_argument("--workers", type=int, default=1,
                      help="engine worker-pool size per cohort solve "
                           "(default 1)")
    http.add_argument("--mmap", action="store_true",
                      help="memory-map the artifact arrays (v3 artifacts) "
                           "instead of materialising them")
    http.add_argument("--duration", type=float, default=0.0,
                      help="serve for this many seconds then print the "
                           "server report and exit (default 0 = forever)")
    http.add_argument("--self-test", type=int, default=0, metavar="N",
                      help="boot, fire N concurrent HTTP requests against "
                           "the live socket, assert responses bit-identical "
                           "to direct engine.recommend, print the report, "
                           "exit non-zero on mismatch")
    http.add_argument("--k", type=int, default=10,
                      help="list length for --self-test requests (default 10)")

    update = sub.add_parser(
        "update",
        help="replay a rating-event log against a saved artifact — the "
             "incremental update pipeline (no refit)",
    )
    update.add_argument("--artifact", default=None,
                        help="model artifact written by 'fit'")
    update.add_argument("--shards", default=None, metavar="DIR",
                        help="sharded-artifact directory written by "
                             "'shard-fit'; events are routed to the owning "
                             "shard (instead of --artifact)")
    update.add_argument("--events", required=True,
                        help="event log: 'user_label item_label rating' per "
                             "line (# comments allowed); unknown labels "
                             "register new users/items")
    update.add_argument("--batch-size", type=int, default=0,
                        help="events applied per update batch "
                             "(0 = one batch, default)")
    update.add_argument("--duplicates", default="last",
                        choices=("last", "error"),
                        help="re-rate policy: overwrite ('last', default) or "
                             "reject ('error')")
    update.add_argument("--max-pending", type=int, default=None,
                        help="consolidate (full refit) once this many events "
                             "have been absorbed since the last fit")
    update.add_argument("--serve-users", type=int, default=0,
                        help="serve the first N users after updating, showing "
                             "the retained warm-cache stats")
    update.add_argument("--mmap", action="store_true",
                        help="memory-map the artifact arrays (v3 artifacts); "
                             "updates copy only the pages they touch")
    update.add_argument("--out", default=None,
                        help="save the updated model artifact here")
    return parser


def _serve_batch(args) -> int:
    config = ExperimentConfig(scale=args.scale, data_seed=args.seed)
    print(f"Generating {args.dataset} data (scale {args.scale}) ...", flush=True)
    train = make_data(args.dataset, config).dataset
    print(f"   {train}")

    print(f"Fitting {args.algorithm} ...", flush=True)
    recommender = make_algorithms(config, train=train,
                                  include=(args.algorithm,))[0]
    with Timer() as fit_timer:
        recommender.fit(train)
    print(f"   fitted in {fit_timer.elapsed:.2f}s")

    if args.users_file is not None:
        users = load_user_file(args.users_file, train.n_users)
    else:
        users = np.arange(min(args.n_users, train.n_users))
    print(f"Serving {users.size} users (k={args.k}, "
          f"batch size {args.batch_size}) ...", flush=True)
    report = serve_user_cohort(recommender, users, k=args.k,
                               batch_size=args.batch_size)

    print(format_table([report.summary()],
                       title=f"serve-batch: {args.algorithm} throughput"))
    preview = report.rows[:3 * args.k]
    if preview:
        print(format_table(preview, title="first rows (full output via --out)"))
    if args.out:
        write_csv(report.rows, args.out)
        print(f"[saved] {args.out}")
    return 0


def _fit(args) -> int:
    config = ExperimentConfig(scale=args.scale, data_seed=args.seed)
    print(f"Generating {args.dataset} data (scale {args.scale}) ...", flush=True)
    train = make_data(args.dataset, config).dataset
    print(f"   {train}")

    print(f"Fitting {args.algorithm} ...", flush=True)
    recommender = make_algorithms(config, train=train,
                                  include=(args.algorithm,))[0]
    with Timer() as fit_timer:
        recommender.fit(train)
    print(f"   fitted in {fit_timer.elapsed:.2f}s")

    if args.dtype is not None:
        recommender.set_serving_dtype(args.dtype)
        if "dtype" in recommender.get_config():
            print(f"   serving dtype policy: {args.dtype} (saved in artifact)")
        else:
            print(f"   note: {recommender.name} has no bandwidth-bound solve; "
                  f"--dtype {args.dtype} is ignored and not persisted")
    path = recommender.save(args.out)
    print(f"[saved] artifact {path} ({os.path.getsize(path) // 1024} KiB)")

    if args.store_out:
        print(f"Precomputing TopKStore (depth {args.store_depth}) ...", flush=True)
        store = TopKStore.from_recommender(recommender, depth=args.store_depth)
        store_path = store.save(args.store_out)
        print(f"[saved] store {store_path} "
              f"({os.path.getsize(store_path) // 1024} KiB)")
    return 0


def _shard_fit(args) -> int:
    config = ExperimentConfig(scale=args.scale, data_seed=args.seed)
    print(f"Generating {args.dataset} data (scale {args.scale}) ...", flush=True)
    if args.dataset == "federated":
        tenants = args.tenants if args.tenants is not None else max(args.shards, 2)
        train = federated_dataset(tenants, scale=args.scale, seed=args.seed)
    elif args.dataset == "giant":
        train = giant_component(scale=args.scale, seed=args.seed)
    else:
        train = make_data(args.dataset, config).dataset
    print(f"   {train}")

    if args.partitioner == "edge-cut":
        print(f"Planning {args.shards} shard(s) by balanced edge cut "
              f"({args.halo_hops}-hop halos) ...", flush=True)
        plan = ShardPlan.build_edge_cut(train, args.shards,
                                        halo_hops=args.halo_hops)
        print(format_table(plan.summary(train),
                           title="shard plan (edge-cut, k-hop halos)"))
    else:
        print(f"Planning {args.shards} shard(s) by graph component ...",
              flush=True)
        plan = ShardPlan.build(train, args.shards)
        print(format_table(plan.summary(train),
                           title="shard plan (component-balanced)"))

    print(f"Fitting {args.algorithm} per shard ...", flush=True)
    # train=None: each shard trains its own topic model over its own
    # catalogue (a full-catalogue LDA would not match the shard's items).
    def factory():
        return make_algorithms(config, train=None,
                               include=(args.algorithm,))[0]

    with Timer() as fit_timer:
        fleet = ShardedEngine.fit(train, factory, plan=plan)
    print(f"   fitted {plan.n_shards} shard(s) in {fit_timer.elapsed:.2f}s")
    path = fleet.save(args.out)
    size_kib = sum(
        os.path.getsize(os.path.join(path, name)) for name in os.listdir(path)
    ) // 1024
    print(f"[saved] sharded artifacts in {path}/ ({size_kib} KiB total)")
    return 0


def _require_one_source(args, parser_hint: str) -> bool:
    """True when exactly one of --artifact / --shards was given."""
    if (args.artifact is None) == (args.shards is None):
        print(f"error: {parser_hint} needs exactly one of --artifact or "
              "--shards", file=sys.stderr)
        return False
    if getattr(args, "fleet_procs", 0) and args.shards is None:
        print(f"error: {parser_hint} --fleet-procs requires --shards",
              file=sys.stderr)
        return False
    return True


def _boot_fleet(args) -> ProcessShardFleet:
    """Boot a supervised multi-process fleet from ``--shards``.

    ``--fleet-procs`` must equal the plan's shard count — the fleet runs
    exactly one worker process per shard, so any other value is a config
    mistake, not a tunable.
    """
    plan = ShardPlan.load(os.path.join(args.shards, "plan.npz"))
    if args.fleet_procs != plan.n_shards:
        raise ConfigError(
            f"--fleet-procs {args.fleet_procs} does not match the plan's "
            f"{plan.n_shards} shard(s); the fleet runs exactly one worker "
            "process per shard (use --fleet-procs "
            f"{plan.n_shards}, or 0 for in-process serving)"
        )
    engine_kwargs = {}
    workers = getattr(args, "workers", 1)
    if workers and workers > 1:
        engine_kwargs["n_workers"] = workers
    if getattr(args, "mmap", False):
        engine_kwargs["mmap"] = True
    kwargs = {"engine_kwargs": engine_kwargs} if engine_kwargs else {}
    return ProcessShardFleet.from_directory(args.shards, **kwargs)


def _fleet_name(args) -> str:
    """Recommender name from the first shard's artifact header (O(open))."""
    return peek_artifact(os.path.join(args.shards, "shard-000.npz"))["name"]


def _serve(args) -> int:
    if not _require_one_source(args, "serve"):
        return 2
    if args.shards is not None and args.fleet_procs:
        print(f"Loading sharded artifacts {args.shards} "
              "(multi-process fleet) ...", flush=True)
        with Timer() as load_timer:
            engine = _boot_fleet(args)
        if args.store:
            print("   note: --store is ignored for sharded serving")
        if args.dtype is not None:
            print("   note: --dtype is ignored for --fleet-procs; workers "
                  "boot with the artifact's saved precision policy")
        name = _fleet_name(args)
        n_users_total = engine.n_users
        print(f"   {name} fleet: {engine.n_shards} worker process(es), "
              f"{engine.n_users} users × {engine.n_items} items "
              f"(booted in {load_timer.elapsed:.2f}s, no refit)")
    elif args.shards is not None:
        print(f"Loading sharded artifacts {args.shards} ...", flush=True)
        with Timer() as load_timer:
            engine = ShardedEngine.from_directory(
                args.shards, n_workers=args.workers,
                worker_mode=args.worker_mode, mmap=args.mmap,
            )
        if args.store:
            print("   note: --store is ignored for sharded serving")
        if args.dtype is not None:
            for shard_engine in engine.engines:
                shard_engine.recommender.set_serving_dtype(args.dtype)
        name = engine.engines[0].recommender.name
        n_users_total = engine.n_users
        print(f"   {name} fleet: {engine.n_shards} shard(s), "
              f"{engine.n_users} users × {engine.n_items} items "
              f"(loaded in {load_timer.elapsed:.2f}s, no refit)")
    else:
        print(f"Loading artifact {args.artifact} ...", flush=True)
        with Timer() as load_timer:
            engine = ServingEngine.from_artifact(
                args.artifact, store_path=args.store,
                n_workers=args.workers, worker_mode=args.worker_mode,
                mmap=args.mmap,
            )
        if args.dtype is not None:
            engine.recommender.set_serving_dtype(args.dtype)
        name = engine.recommender.name
        n_users_total = engine.dataset.n_users
        print(f"   {name} over {engine.dataset} "
              f"(loaded in {load_timer.elapsed:.2f}s, no refit, "
              f"dtype {engine.recommender.serving_dtype}, "
              f"workers {engine.n_workers})")

    if args.users_file is not None:
        users = load_user_file(args.users_file, n_users_total)
    else:
        users = np.arange(min(args.n_users, n_users_total))
    print(f"Serving {users.size} users (k={args.k}, "
          f"batch size {args.batch_size}, x{max(args.repeat, 1)}) ...", flush=True)
    summaries = []
    report = None
    for pass_number in range(1, max(args.repeat, 1) + 1):
        report = engine.serve_cohort(users, k=args.k, batch_size=args.batch_size)
        summaries.append({"pass": pass_number, **report.summary()})

    print(format_table(summaries, title=f"serve: {name} via engine"))
    if args.shards is not None and report.per_shard:
        print(format_table(report.shard_summaries(),
                           title="last pass, per shard"))
    preview = report.rows[:3 * args.k]
    if preview:
        print(format_table(preview, title="first rows (full output via --out)"))
    if args.out:
        write_csv(report.rows, args.out)
        print(f"[saved] {args.out}")
    if isinstance(engine, ProcessShardFleet):
        engine.close()
    return 0


async def _http_get(host: str, port: int, path: str) -> tuple[int, dict]:
    """One GET against the live frontend, JSON body decoded."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split()[1])
        length = 0
        for line in head.decode("latin-1").split("\r\n"):
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        body = await reader.readexactly(length)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return status, json.loads(body)


async def _http_self_test(engine, host: str, port: int, n: int, k: int,
                          n_users_total: int) -> int:
    """Fire ``n`` concurrent requests; count responses that differ from the
    direct engine answer (0 = bit-identical across the wire)."""
    users = [i % n_users_total for i in range(n)]
    responses = await asyncio.gather(*[
        _http_get(host, port, f"/recommend?user={user}&k={k}")
        for user in users
    ])
    mismatches = 0
    for user, (status, payload) in zip(users, responses):
        expected = engine.recommend(user, k=k)
        if (status != 200
                or payload["items"] != [r.item for r in expected]
                or payload["scores"] != [r.score for r in expected]):
            mismatches += 1
    return mismatches


def _serve_http(args) -> int:
    if not _require_one_source(args, "serve-http"):
        return 2
    if args.shards is not None and args.fleet_procs:
        print(f"Loading sharded artifacts {args.shards} "
              "(multi-process fleet) ...", flush=True)
        with Timer() as load_timer:
            engine = _boot_fleet(args)
        if args.store:
            print("   note: --store is ignored for sharded serving")
        name = _fleet_name(args)
        n_users_total = engine.n_users
        print(f"   {name} fleet: {engine.n_shards} worker process(es), "
              f"{engine.n_users} users × {engine.n_items} items "
              f"(booted in {load_timer.elapsed:.2f}s, no refit)")
    elif args.shards is not None:
        print(f"Loading sharded artifacts {args.shards} ...", flush=True)
        with Timer() as load_timer:
            engine = ShardedEngine.from_directory(args.shards,
                                                  n_workers=args.workers,
                                                  mmap=args.mmap)
        if args.store:
            print("   note: --store is ignored for sharded serving")
        name = engine.engines[0].recommender.name
        n_users_total = engine.n_users
        print(f"   {name} fleet: {engine.n_shards} shard(s), "
              f"{engine.n_users} users × {engine.n_items} items "
              f"(loaded in {load_timer.elapsed:.2f}s, no refit)")
    else:
        print(f"Loading artifact {args.artifact} ...", flush=True)
        with Timer() as load_timer:
            engine = ServingEngine.from_artifact(
                args.artifact, store_path=args.store, n_workers=args.workers,
                mmap=args.mmap,
            )
        name = engine.recommender.name
        n_users_total = engine.dataset.n_users
        print(f"   {name} over {engine.dataset} "
              f"(loaded in {load_timer.elapsed:.2f}s, no refit)")

    async def _run() -> int:
        server = BatchingServer(
            engine, max_batch_size=args.max_batch,
            max_delay_ms=args.max_delay_ms, max_queue=args.max_queue,
            timeout_ms=args.timeout_ms,
        )
        async with server:
            async with HttpFrontend(server, host=args.host,
                                    port=args.port) as front:
                print(f"[serve-http] {name} listening on "
                      f"http://{args.host}:{front.port} "
                      f"(max_batch={args.max_batch}, "
                      f"max_delay={args.max_delay_ms:g}ms, "
                      f"max_queue={args.max_queue})", flush=True)
                status = 0
                if args.self_test > 0:
                    mismatches = await _http_self_test(
                        engine, args.host, front.port, args.self_test,
                        args.k, n_users_total,
                    )
                    if mismatches:
                        print(f"[self-test] FAILED: {mismatches}/"
                              f"{args.self_test} responses differ from "
                              "direct engine.recommend", file=sys.stderr)
                        status = 1
                    else:
                        print(f"[self-test] OK: {args.self_test} concurrent "
                              "responses bit-identical to engine.recommend")
                else:
                    # Clean drain on SIGTERM/SIGINT: the signal only sets
                    # an event; leaving the HttpFrontend context then stops
                    # admission (closes the listener) and leaving the
                    # BatchingServer context finishes every in-flight
                    # request before the report below is flushed.
                    stop = asyncio.Event()
                    loop = asyncio.get_running_loop()
                    hooked = []
                    for signum in (signal.SIGINT, signal.SIGTERM):
                        try:
                            loop.add_signal_handler(signum, stop.set)
                        except (NotImplementedError, RuntimeError,
                                ValueError):
                            continue  # non-main thread / platform limits
                        hooked.append(signum)
                    try:
                        if args.duration > 0:
                            try:
                                await asyncio.wait_for(stop.wait(),
                                                       timeout=args.duration)
                            except asyncio.TimeoutError:
                                pass
                        else:
                            await stop.wait()  # serve until a signal lands
                        if stop.is_set():
                            print("\n[serve-http] signal received; draining "
                                  "in-flight requests ...", flush=True)
                    finally:
                        for signum in hooked:
                            loop.remove_signal_handler(signum)
            report = server.report()
        print(format_table([report.summary()],
                           title=f"serve-http: {name} front-end report"))
        return status

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        # Fallback for platforms where add_signal_handler is unavailable;
        # on the normal path SIGINT is absorbed by the drain above.
        print("\n[serve-http] interrupted; shutting down")
        return 0
    finally:
        if isinstance(engine, ProcessShardFleet):
            engine.close()


def _update(args) -> int:
    if not _require_one_source(args, "update"):
        return 2
    if args.shards is not None:
        print(f"Loading sharded artifacts {args.shards} ...", flush=True)
        with Timer() as load_timer:
            engine = ShardedEngine.from_directory(
                args.shards, max_pending_events=args.max_pending,
                update_duplicates=args.duplicates, mmap=args.mmap,
            )
        n_users_total = engine.n_users
        print(f"   {engine.engines[0].recommender.name} fleet: "
              f"{engine.n_shards} shard(s), {engine.n_users} users × "
              f"{engine.n_items} items (loaded in {load_timer.elapsed:.2f}s)")
    else:
        print(f"Loading artifact {args.artifact} ...", flush=True)
        with Timer() as load_timer:
            engine = ServingEngine.from_artifact(
                args.artifact, max_pending_events=args.max_pending,
                update_duplicates=args.duplicates, mmap=args.mmap,
            )
        n_users_total = engine.dataset.n_users
        print(f"   {engine.recommender.name} over {engine.dataset} "
              f"(loaded in {load_timer.elapsed:.2f}s)")
    if args.serve_users > 0:
        # Warm the caches first so the update report shows what survives.
        users = np.arange(min(args.serve_users, n_users_total))
        engine.serve_cohort(users, k=10)

    events = load_event_file(args.events)
    batch_size = args.batch_size if args.batch_size > 0 else len(events)
    print(f"Applying {len(events)} events "
          f"(batches of {batch_size}, duplicates={args.duplicates}) ...",
          flush=True)
    summaries = []
    last_report = None
    for start in range(0, len(events), batch_size):
        last_report = engine.apply_updates(events[start:start + batch_size])
        summaries.append({"batch": len(summaries) + 1, **last_report.summary()})
    print(format_table(summaries, title="update: applied event batches"))
    if args.shards is not None:
        if last_report is not None and last_report.per_shard:
            print(format_table(last_report.shard_summaries(),
                               title="last batch, per shard"))
        print(f"   now serving {engine.n_users} users × {engine.n_items} "
              "items across the fleet")
    else:
        print(f"   now serving {engine.dataset} at model version "
              f"{engine.model_version}")

    if args.serve_users > 0:
        total = (engine.n_users if args.shards is not None
                 else engine.dataset.n_users)
        users = np.arange(min(args.serve_users, total))
        served = engine.serve_cohort(users, k=10)
        print(format_table([served.summary()],
                           title="post-update cohort (warm retention)"))
    if args.out:
        if args.shards is not None:
            path = engine.save(args.out)
            print(f"[saved] updated sharded artifacts in {path}/")
        else:
            path = engine.recommender.save(args.out)
            print(f"[saved] updated artifact {path} "
                  f"({os.path.getsize(path) // 1024} KiB)")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # Operator-facing failures (missing artifact dir, format-version
        # mismatch, bad flag values) are reported as one clean line, not a
        # traceback: the message already names the path and the remedy.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "serve-batch":
        return _serve_batch(args)
    if args.command == "fit":
        return _fit(args)
    if args.command == "shard-fit":
        return _shard_fit(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "serve-http":
        return _serve_http(args)
    if args.command == "update":
        return _update(args)
    if args.command == "list":
        rows = [{"experiment": name, "description": desc}
                for name, (desc, _) in sorted(EXPERIMENTS.items())]
        print(format_table(rows, title="Available experiments"))
        return 0

    description, driver = EXPERIMENTS[args.experiment]
    config = ExperimentConfig(scale=args.scale, data_seed=args.seed)
    print(f"Running {args.experiment}: {description} (scale {args.scale}) ...",
          flush=True)
    rows = driver(config)
    print(format_table(rows, title=f"{args.experiment}: {description}"))
    if args.out:
        write_csv(rows, args.out)
        print(f"[saved] {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries while tests can assert on the
precise subtype.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class DataError(ReproError):
    """Invalid or inconsistent rating data (bad shapes, ids, values)."""


class DataFormatError(DataError):
    """A data file could not be parsed (malformed MovieLens/CSV input)."""


class GraphError(ReproError):
    """Invalid graph construction or an operation unsupported on the graph."""


class DisconnectedGraphError(GraphError):
    """An operation that requires connectivity was run on a disconnected
    graph (e.g. exact hitting times to an unreachable node)."""


class NotFittedError(ReproError):
    """A model method that requires :meth:`fit` was called before fitting."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class ConfigError(ReproError):
    """Invalid configuration or parameter value supplied by the caller."""


class ArtifactError(ReproError):
    """A persisted model artifact or precomputed cache could not be used
    (missing/mismatched format version, unregistered class, corrupt file)."""


class OverloadedError(ReproError):
    """The serving front end shed this request: its bounded admission queue
    is full. A typed rejection so callers can tell deliberate load shedding
    (retry later, route elsewhere) apart from a genuine failure."""


class DeadlineExceededError(ReproError):
    """A request missed its deadline before a result could be produced.

    Raised by the micro-batching front end when a per-request (or
    server-default) timeout elapses while the request is queued or
    in-flight; the pending solve result, if any, is discarded."""


class ShardUnavailableError(ReproError):
    """A request was routed to a shard whose worker process is down.

    Raised by the multi-process fleet's degraded-serving mode: the
    supervisor exhausted its restart budget (or the shard is mid-restart
    and the request cannot wait), so requests owned by that shard fail
    with this typed error while every healthy shard keeps answering.
    Recover with ``ProcessShardFleet.restart_shard``.

    Attributes
    ----------
    shard:
        The unavailable shard id.
    """

    def __init__(self, shard: int, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"shard {shard} is unavailable{detail}")
        self.shard = shard


class UnknownUserError(ReproError):
    """A user id was not found in the dataset.

    Attributes
    ----------
    user:
        The offending user identifier.
    """

    def __init__(self, user: object):
        super().__init__(f"unknown user: {user!r}")
        self.user = user


class UnknownItemError(ReproError):
    """An item id was not found in the dataset.

    Attributes
    ----------
    item:
        The offending item identifier.
    """

    def __init__(self, item: object):
        super().__init__(f"unknown item: {item!r}")
        self.item = item

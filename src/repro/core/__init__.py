"""The paper's core contribution: the Hitting Time, Absorbing Time and
Absorbing Cost long-tail recommenders, their cost models and user-entropy
features, the shared recommender interface, and the persistent model-artifact
layer (fit once, save, serve many times)."""

from repro.core.absorbing_cost import AbsorbingCostRecommender
from repro.core.absorbing_time import AbsorbingTimeRecommender
from repro.core.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    load_artifact,
    register_recommender,
    registered_recommenders,
    save_artifact,
)
from repro.core.base import PartialFitReport, Recommendation, Recommender
from repro.core.costs import CostModel, EntropyCostModel, UnitCostModel
from repro.core.entropy import distribution_entropy, item_entropy, topic_entropy
from repro.core.explain import Explanation, PathEvidence, explain_recommendation
from repro.core.graph_base import RandomWalkRecommender
from repro.core.hitting_time import HittingTimeRecommender

__all__ = [
    "AbsorbingCostRecommender",
    "AbsorbingTimeRecommender",
    "ARTIFACT_FORMAT_VERSION",
    "load_artifact",
    "register_recommender",
    "registered_recommenders",
    "save_artifact",
    "PartialFitReport",
    "Recommendation",
    "Recommender",
    "CostModel",
    "EntropyCostModel",
    "UnitCostModel",
    "distribution_entropy",
    "Explanation",
    "PathEvidence",
    "explain_recommendation",
    "item_entropy",
    "topic_entropy",
    "RandomWalkRecommender",
    "HittingTimeRecommender",
]

"""Shared machinery for the random-walk recommenders (HT / AT / AC).

All three of the paper's graph algorithms follow the same template:

1. build the bipartite user-item graph from the training ratings;
2. per query, choose an *absorbing set* (the query user node for Hitting
   Time, the user's rated items ``S_q`` for Absorbing Time/Cost);
3. optionally restrict to a BFS subgraph of at most µ item nodes around the
   absorbing set (Algorithm 1, step 2);
4. solve for expected steps (or entropy-weighted cost) until absorption,
   exactly or by τ truncated sweeps;
5. rank candidate items by *ascending* value.

:class:`RandomWalkRecommender` implements 1–5 once; subclasses choose the
absorbing set and, for Absorbing Cost, the cost model and per-user entropy.

Batch serving
-------------
Scoring a cohort one user at a time repeats the same sparse setup — the
µ-subgraph extraction, the row normalisation, the per-sweep sparse matvec —
once per user. :meth:`RandomWalkRecommender._score_users_batch` instead
groups query users that share a µ-subgraph (equivalently: whose BFS would
cover the same connected components without exhausting the µ budget),
builds each shared transition matrix once, and advances *all* of a group's
walk vectors together through the truncated iteration as one sparse-matrix ×
dense-matrix product per sweep (a multi-RHS solve). Only users whose BFS
genuinely truncates at µ — where the subgraph is query-specific by
construction — fall back to the per-user path.

Warm serving
------------
All request-independent structures — the per-group transition matrices,
masks, component labels and entropy slices, and the per-query BFS subgraphs
— are memoized in a :class:`~repro.graph.cache.TransitionCache` owned by the
fitted recommender. A serving process hitting the same component groups
request after request pays the sparse slice + normalization once; repeat
requests go straight to the solve. The cache is (re)built lazily after
``fit`` or ``load_state_dict`` and its hit/miss counters surface through
:meth:`Recommender.scoring_cache_stats` into the serving-engine reports.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Recommender
from repro.core.costs import CostModel
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.graph.absorbing import (
    exact_absorbing_values,
    truncated_absorbing_values,
    truncated_absorbing_values_multi,
)
from repro.graph.bipartite import UserItemGraph
from repro.graph.cache import TransitionCache
from repro.utils.validation import check_in_options, check_positive_int

__all__ = ["RandomWalkRecommender"]


class RandomWalkRecommender(Recommender):
    """Base class for Hitting Time, Absorbing Time and Absorbing Cost.

    Parameters
    ----------
    method:
        ``"truncated"`` — Algorithm 1's fixed-sweep dynamic programming
        (the paper's choice; rankings stabilise within ~15 sweeps) — or
        ``"exact"`` — direct sparse linear solve.
    n_iterations:
        τ, the sweep count for the truncated method (ignored for exact).
    subgraph_size:
        µ, the BFS item budget; ``None`` runs on the global graph.
    """

    def __init__(self, method: str = "truncated", n_iterations: int = 15,
                 subgraph_size: int | None = 6000):
        super().__init__()
        self.method = check_in_options(method, "method", ("truncated", "exact"))
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        if subgraph_size is not None:
            subgraph_size = check_positive_int(subgraph_size, "subgraph_size")
        self.subgraph_size = subgraph_size
        self.graph: UserItemGraph | None = None
        self._transition_cache: TransitionCache | None = None

    # -- subclass hooks -----------------------------------------------------

    def _absorbing_nodes(self, user: int) -> np.ndarray:
        """Parent-graph node indices of the absorbing set for ``user``."""
        raise NotImplementedError

    def _cost_model(self) -> CostModel | None:
        """Cost model, or ``None`` for unit costs (absorbing *time*)."""
        return None

    def _user_entropies(self) -> np.ndarray | None:
        """Per-user entropies for the cost model (``None`` if not needed)."""
        return None

    def _post_fit(self, dataset: RatingDataset) -> None:
        """Optional extra fitting after the graph is built."""

    # -- template ------------------------------------------------------------

    def _fit(self, dataset: RatingDataset) -> None:
        self.graph = UserItemGraph(dataset)
        self._transition_cache = None
        self._post_fit(dataset)

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> dict:
        return {
            "method": self.method,
            "n_iterations": self.n_iterations,
            "subgraph_size": self.subgraph_size,
        }

    def _state_arrays(self) -> dict:
        return self.graph.to_arrays()

    def _load_state_arrays(self, arrays: dict) -> None:
        self.graph = UserItemGraph.from_arrays(self.dataset, arrays)
        self._transition_cache = None

    # -- warm cache ----------------------------------------------------------

    @property
    def transition_cache(self) -> TransitionCache | None:
        """The scoring-layer cache, or ``None`` before the first batch call."""
        return self._transition_cache

    def _ensure_cache(self) -> TransitionCache:
        # Built lazily so fit()/load_state_dict() stay cheap; the entropy
        # vector is frozen into the cache, matching the fit-once contract.
        if self._transition_cache is None:
            self._transition_cache = TransitionCache(
                self.graph, node_entropy=self._node_entropy_vector()
            )
        return self._transition_cache

    def scoring_cache_stats(self) -> dict | None:
        if self._transition_cache is None:
            return None
        return self._transition_cache.stats()

    def _node_entropy_vector(self, nodes: np.ndarray | None = None) -> np.ndarray:
        """Entropy per graph node: E(u) at user nodes, 0 at item nodes.

        With ``nodes`` given, returns the vector restricted to those parent
        node indices (subgraph order).
        """
        graph = self.graph
        entropies = self._user_entropies()
        full = np.zeros(graph.n_nodes)
        if entropies is not None:
            entropies = np.asarray(entropies, dtype=np.float64).ravel()
            if entropies.shape[0] != graph.n_users:
                raise ConfigError(
                    f"user entropies length {entropies.shape[0]} != n_users {graph.n_users}"
                )
            full[:graph.n_users] = entropies
        return full if nodes is None else full[nodes]

    def _solve(self, transition, absorbing_local: np.ndarray,
               user_mask: np.ndarray, node_entropy: np.ndarray) -> np.ndarray:
        cost_model = self._cost_model()
        local_costs = None
        if cost_model is not None:
            local_costs = cost_model.local_costs(transition, user_mask, node_entropy)
        if self.method == "exact":
            return exact_absorbing_values(transition, absorbing_local, local_costs)
        return truncated_absorbing_values(
            transition, absorbing_local, self.n_iterations, local_costs
        )

    def _score_user(self, user: int) -> np.ndarray:
        # Single queries ride the batch path as a cohort of one, so the
        # per-user and batch rankings agree by construction.
        return self._score_users_batch(np.array([user], dtype=np.int64))[0]

    def _score_user_bfs(self, user: int, absorbing: np.ndarray) -> np.ndarray:
        """Per-user scoring on the µ-truncated BFS subgraph (Algorithm 1).

        Used when the BFS budget genuinely truncates: the subgraph then
        depends on the query's expansion order and cannot be shared across
        *different* queries — but it is deterministic per query, so the
        subgraph and its normalized transition come from the cache and a
        repeated request skips the traversal and the sparse setup.
        """
        graph = self.graph
        cache = self._ensure_cache()
        scores = np.full(self.dataset.n_items, -np.inf)
        seed_items = self._subgraph_seed_items(user, absorbing)
        sub, transition = cache.bfs(user, seed_items, absorbing, self.subgraph_size)
        if not all(sub.contains(int(a)) for a in absorbing):
            # The absorbing set must live inside the subgraph; for HT the
            # query user is adjacent to their items so this only triggers on
            # pathological inputs.
            return scores
        absorbing_local = sub.to_local(absorbing)
        user_mask = sub.nodes < graph.n_users
        node_entropy = cache.node_entropy[sub.nodes]
        values = self._solve(transition, absorbing_local, user_mask, node_entropy)

        item_node_positions = np.flatnonzero(~user_mask)
        item_indices = sub.nodes[item_node_positions] - graph.n_users
        item_values = values[item_node_positions]
        finite = np.isfinite(item_values)
        scores[item_indices[finite]] = -item_values[finite]
        return scores

    # -- batch path ----------------------------------------------------------

    def _solve_multi(self, transition, absorbing_sets: list[np.ndarray],
                     user_mask: np.ndarray, node_entropy: np.ndarray,
                     node_labels: np.ndarray) -> np.ndarray:
        """``(n_nodes, n_sets)`` absorbing values, one column per query.

        ``node_labels`` are connected-component ids of the (sub)graph nodes;
        on these symmetric graphs component membership *is* reachability, so
        the per-query reachability masks need no graph traversal at all.
        """
        cost_model = self._cost_model()
        local_costs = None
        if cost_model is not None:
            local_costs = cost_model.local_costs(transition, user_mask, node_entropy)
        if self.method == "exact":
            columns = [
                exact_absorbing_values(transition, absorbing, local_costs)
                for absorbing in absorbing_sets
            ]
            return np.stack(columns, axis=1)
        reachable = np.column_stack([
            np.isin(node_labels, node_labels[absorbing])
            for absorbing in absorbing_sets
        ])
        return truncated_absorbing_values_multi(
            transition, absorbing_sets, self.n_iterations, local_costs,
            reachable=reachable,
        )

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        graph = self.graph
        dataset = self.dataset
        scores = np.full((users.size, dataset.n_items), -np.inf)
        if users.size == 0:
            return scores
        cache = self._ensure_cache()
        absorbing_sets = [self._absorbing_nodes(int(u)) for u in users]

        groups: dict[tuple[int, ...] | None, list[int]] = {}
        solo: list[int] = []
        if self.subgraph_size is None:
            # Global graph: every query shares one transition matrix; solve
            # all non-cold-start queries as one multi-RHS batch.
            active = [i for i in range(users.size) if absorbing_sets[i].size]
            if active:
                groups[None] = active
        else:
            # µ-subgraph mode: a query whose BFS never exhausts the µ budget
            # ends up with the full union of the connected components its
            # seed items live in — a set many queries share. Group on that
            # component key.
            labels = graph.component_labels()
            item_component_sizes = graph.item_component_sizes()
            for i, user in enumerate(users):
                absorbing = absorbing_sets[i]
                if absorbing.size == 0:
                    continue  # cold start: row stays -inf
                seed_items = self._subgraph_seed_items(int(user), absorbing)
                if seed_items.size == 0:
                    solo.append(i)
                    continue
                components = np.unique(labels[graph.item_nodes(seed_items)])
                if (int(item_component_sizes[components].sum()) > self.subgraph_size
                        or not np.all(np.isin(labels[absorbing], components))):
                    solo.append(i)
                    continue
                key = tuple(int(c) for c in components)
                groups.setdefault(key, []).append(i)

        for i in solo:
            scores[i] = self._score_user_bfs(int(users[i]), absorbing_sets[i])

        for components, members in groups.items():
            entry = cache.group(components)
            # Local indices of each absorbing set; entry.nodes is sorted
            # ascending, and on the global (None) key it is the identity.
            absorbing_local = [
                np.searchsorted(entry.nodes, absorbing_sets[i]) for i in members
            ]
            values = self._solve_multi(
                entry.transition, absorbing_local, entry.user_mask,
                entry.node_entropy, entry.labels,
            )
            item_values = values[entry.item_positions, :]
            finite = np.isfinite(item_values)
            for column, i in enumerate(members):
                keep = finite[:, column]
                scores[i, entry.item_indices[keep]] = -item_values[keep, column]
        return scores

    def _subgraph_seed_items(self, user: int, absorbing: np.ndarray) -> np.ndarray:
        """Item indices seeding the BFS (default: the user's rated items)."""
        return self.dataset.items_of_user(user)

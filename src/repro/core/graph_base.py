"""Shared machinery for the random-walk recommenders (HT / AT / AC).

All three of the paper's graph algorithms follow the same template:

1. build the bipartite user-item graph from the training ratings;
2. per query, choose an *absorbing set* (the query user node for Hitting
   Time, the user's rated items ``S_q`` for Absorbing Time/Cost);
3. optionally restrict to a BFS subgraph of at most µ item nodes around the
   absorbing set (Algorithm 1, step 2);
4. solve for expected steps (or entropy-weighted cost) until absorption,
   exactly or by τ truncated sweeps;
5. rank candidate items by *ascending* value.

:class:`RandomWalkRecommender` implements 1–5 once; subclasses choose the
absorbing set and, for Absorbing Cost, the cost model and per-user entropy.

Batch serving
-------------
Scoring a cohort one user at a time repeats the same sparse setup — the
µ-subgraph extraction, the row normalisation, the per-sweep sparse matvec —
once per user. :meth:`RandomWalkRecommender._score_users_batch` instead
groups query users that share a µ-subgraph (equivalently: whose BFS would
cover the same connected components without exhausting the µ budget),
builds each shared transition matrix once, and advances *all* of a group's
walk vectors together through the truncated iteration as one sparse-matrix ×
dense-matrix product per sweep (a multi-RHS solve). Only users whose BFS
genuinely truncates at µ — where the subgraph is query-specific by
construction — fall back to the per-user path.

Warm serving
------------
All request-independent structures are memoized in a
:class:`~repro.graph.cache.TransitionCache` owned by the fitted recommender,
and every cache entry carries a prepared
:class:`~repro.solver.WalkOperator`: the transition matrix is validated
exactly once when the entry is built, the per-group cost vectors and
label-indexed reachability are memoized inside the operator, and the
τ-sweeps run chunked through preallocated buffers in the configured
``dtype`` policy (``float32`` halves SpMM bandwidth; top-k parity with
float64 is asserted in the test suite). A serving process hitting the same
component groups request after request pays the sparse slice, normalization
and validation once; repeat requests go straight to the solve. The cache is
(re)built lazily after ``fit`` or ``load_state_dict`` and its hit/miss and
operator counters surface through :meth:`Recommender.scoring_cache_stats`
into the serving-engine reports.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.base import PartialFitReport, Recommender
from repro.core.costs import CostModel
from repro.data.dataset import DatasetDelta, RatingDataset
from repro.exceptions import ConfigError
from repro.graph.bipartite import GraphUpdate, UserItemGraph
from repro.graph.cache import TransitionCache
from repro.solver import WalkOperator
from repro.utils.validation import check_in_options, check_positive_int

__all__ = ["RandomWalkRecommender"]


class RandomWalkRecommender(Recommender):
    """Base class for Hitting Time, Absorbing Time and Absorbing Cost.

    Parameters
    ----------
    method:
        ``"truncated"`` — Algorithm 1's fixed-sweep dynamic programming
        (the paper's choice; rankings stabilise within ~15 sweeps) — or
        ``"exact"`` — direct sparse linear solve.
    n_iterations:
        τ, the sweep count for the truncated method (ignored for exact).
    subgraph_size:
        µ, the BFS item budget; ``None`` runs on the global graph.
    dtype:
        Serving precision policy for the truncated sweeps: ``"float64"``
        (reference, default) or ``"float32"`` (halved SpMM bandwidth,
        identical top-k — see the dtype-parity tests).
    chunk_size:
        Column budget per multi-RHS chunk; bounds the dense sweep memory at
        ``2 × n_subgraph_nodes × chunk_size`` floats however large the
        cohort is.
    """

    def __init__(self, method: str = "truncated", n_iterations: int = 15,
                 subgraph_size: int | None = 6000, dtype: str = "float64",
                 chunk_size: int = 1024):
        super().__init__()
        self.method = check_in_options(method, "method", ("truncated", "exact"))
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        if subgraph_size is not None:
            subgraph_size = check_positive_int(subgraph_size, "subgraph_size")
        self.subgraph_size = subgraph_size
        self.set_serving_dtype(dtype)
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.graph: UserItemGraph | None = None
        # guarded-by: _cache_build_lock
        self._transition_cache: TransitionCache | None = None
        self._cache_build_lock = threading.Lock()
        # user -> component-group key ("solo" = µ-truncated BFS path). The
        # key depends only on the frozen graph and the user's rated items,
        # so it is memoized across requests.
        self._group_keys: dict[int, tuple[int, ...] | str] = {}

    # -- subclass hooks -----------------------------------------------------

    def _absorbing_nodes(self, user: int) -> np.ndarray:
        """Parent-graph node indices of the absorbing set for ``user``."""
        raise NotImplementedError

    def _cost_model(self) -> CostModel | None:
        """Cost model, or ``None`` for unit costs (absorbing *time*)."""
        return None

    def _user_entropies(self) -> np.ndarray | None:
        """Per-user entropies for the cost model (``None`` if not needed)."""
        return None

    def _post_fit(self, dataset: RatingDataset) -> None:
        """Optional extra fitting after the graph is built."""

    # -- template ------------------------------------------------------------

    def _fit(self, dataset: RatingDataset) -> None:
        self.graph = UserItemGraph(dataset)
        self._transition_cache = None
        self._group_keys = {}
        self._post_fit(dataset)

    # -- incremental updates --------------------------------------------------

    def _post_partial_fit(self, delta: DatasetDelta,
                          update: GraphUpdate) -> None:
        """Refresh non-graph derived state after a delta (AC: entropies)."""

    def _partial_fit(self, delta: DatasetDelta) -> PartialFitReport:
        """Incremental update: union-find graph merge + targeted invalidation.

        The graph swaps to the delta-applied instance (component labels
        maintained, never recomputed), per-user derived state is refreshed
        through :meth:`_post_partial_fit`, and then only the structures the
        touched components invalidate are dropped: group-key memo entries
        whose key intersects the touched set, and — through
        :meth:`TransitionCache.apply_update` — exactly the cache entries
        covering a touched component. Entries over untouched components
        stay warm, prepared operators included, which is what makes a small
        update batch cheaper than a refit-plus-rewarm cycle.
        """
        update = self.graph.apply_delta(delta)
        self.dataset = delta.dataset
        self.graph = update.graph
        self._post_partial_fit(delta, update)
        touched = set(int(c) for c in update.touched_components)
        labels = update.graph.component_labels()
        if self._group_keys:
            # A user's group key depends only on their rated items'
            # components; both are stable unless the user's own component
            # was touched ("solo" keys record no components, so test the
            # user's node label directly).
            self._group_keys = {
                user: key for user, key in self._group_keys.items()
                if (int(labels[user]) not in touched if key == "solo"
                    else not touched.intersection(key))
            }
        if self._transition_cache is not None:
            self._transition_cache.apply_update(
                update, node_entropy=self._node_entropy_vector()
            )
        return PartialFitReport(
            mode="incremental", n_events=delta.n_events,
            n_new_users=update.n_new_users, n_new_items=update.n_new_items,
            affected_users=update.affected_users(),
            touched_components=tuple(sorted(touched)),
        )

    def clear_scoring_cache(self) -> None:
        """Drop the transition cache and the group-key memo entirely."""
        self._transition_cache = None
        self._group_keys = {}

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> dict:
        return {
            "method": self.method,
            "n_iterations": self.n_iterations,
            "subgraph_size": self.subgraph_size,
            "dtype": self.serving_dtype,
            "chunk_size": self.chunk_size,
        }

    def _state_arrays(self) -> dict:
        return self.graph.to_arrays()

    def _load_state_arrays(self, arrays: dict) -> None:
        self.graph = UserItemGraph.from_arrays(self.dataset, arrays)
        self._transition_cache = None
        self._group_keys = {}

    def __getstate__(self) -> dict:
        # The transition cache holds prepared operators whose splu factors
        # are not picklable (nor is its build lock); both are pure memo
        # machinery, so process-pool workers simply rebuild on first use.
        state = dict(self.__dict__)
        state["_transition_cache"] = None
        state["_cache_build_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cache_build_lock = threading.Lock()

    # -- warm cache ----------------------------------------------------------

    @property
    def transition_cache(self) -> TransitionCache | None:
        """The scoring-layer cache, or ``None`` before the first batch call."""
        return self._transition_cache

    def _ensure_cache(self) -> TransitionCache:
        # Built lazily so fit()/load_state_dict() stay cheap; the entropy
        # vector is frozen into the cache, matching the fit-once contract.
        # Double-checked under a lock: engine worker threads hit this
        # concurrently on a cold model, and every thread must share the one
        # cache (and its operator/validation counters).
        if self._transition_cache is None:
            with self._cache_build_lock:
                if self._transition_cache is None:
                    self._transition_cache = TransitionCache(
                        self.graph, node_entropy=self._node_entropy_vector()
                    )
        return self._transition_cache

    def scoring_cache_stats(self) -> dict | None:
        if self._transition_cache is None:
            return None
        return self._transition_cache.stats()

    def _node_entropy_vector(self, nodes: np.ndarray | None = None) -> np.ndarray:
        """Entropy per graph node: E(u) at user nodes, 0 at item nodes.

        With ``nodes`` given, returns the vector restricted to those parent
        node indices (subgraph order).
        """
        graph = self.graph
        entropies = self._user_entropies()
        full = np.zeros(graph.n_nodes)
        if entropies is not None:
            entropies = np.asarray(entropies, dtype=np.float64).ravel()
            if entropies.shape[0] != graph.n_users:
                raise ConfigError(
                    f"user entropies length {entropies.shape[0]} != n_users {graph.n_users}"
                )
            full[:graph.n_users] = entropies
        return full if nodes is None else full[nodes]

    # -- prepared solves ------------------------------------------------------

    def _solve(self, operator: WalkOperator,
               absorbing_local: np.ndarray) -> np.ndarray:
        """Single-query absorbing values through a prepared operator."""
        local_costs = operator.costs_for(self._cost_model())
        if self.method == "exact":
            return operator.solve_exact(absorbing_local, local_costs)
        return operator.solve(absorbing_local, self.n_iterations, local_costs,
                              dtype=self.serving_dtype)

    def _solve_multi(self, operator: WalkOperator,
                     absorbing_sets: list[np.ndarray]) -> np.ndarray:
        """``(n_nodes, n_sets)`` absorbing values, one column per query.

        The operator's component labels make per-query reachability a
        label-indexed lookup — no graph traversal, no ``np.isin`` sort.
        """
        local_costs = operator.costs_for(self._cost_model())
        if self.method == "exact":
            columns = [
                operator.solve_exact(absorbing, local_costs)
                for absorbing in absorbing_sets
            ]
            return np.stack(columns, axis=1)
        return operator.solve_multi(
            absorbing_sets, self.n_iterations, local_costs=local_costs,
            dtype=self.serving_dtype, chunk_size=self.chunk_size,
        )

    def _score_user(self, user: int) -> np.ndarray:
        # Single queries ride the batch path as a cohort of one, so the
        # per-user and batch rankings agree by construction.
        return self._score_users_batch(np.array([user], dtype=np.int64))[0]

    def _score_user_bfs(self, user: int, absorbing: np.ndarray) -> np.ndarray:
        """Per-user scoring on the µ-truncated BFS subgraph (Algorithm 1).

        Used when the BFS budget genuinely truncates: the subgraph then
        depends on the query's expansion order and cannot be shared across
        *different* queries — but it is deterministic per query, so the
        subgraph and its prepared operator come from the cache and a
        repeated request skips the traversal, the sparse setup and the
        validation.
        """
        graph = self.graph
        cache = self._ensure_cache()
        scores = np.full(self.dataset.n_items, -np.inf)
        seed_items = self._subgraph_seed_items(user, absorbing)
        sub, operator = cache.bfs(user, seed_items, absorbing, self.subgraph_size)
        if not np.isin(absorbing, sub.nodes).all():
            # The absorbing set must live inside the subgraph; for HT the
            # query user is adjacent to their items so this only triggers on
            # pathological inputs.
            return scores
        absorbing_local = sub.to_local(absorbing)
        values = self._solve(operator, absorbing_local)

        user_mask = sub.nodes < graph.n_users
        item_node_positions = np.flatnonzero(~user_mask)
        item_indices = sub.nodes[item_node_positions] - graph.n_users
        item_values = values[item_node_positions]
        finite = np.isfinite(item_values)
        scores[item_indices[finite]] = -item_values[finite]
        return scores

    # -- batch path ----------------------------------------------------------

    def _partition_cohort(self, users: np.ndarray,
                          absorbing_sets: list[np.ndarray],
                          ) -> tuple[dict, list[int]]:
        """Split cohort positions into shared component-groups and solos.

        Returns ``(groups, solo)``: ``groups`` maps a component-group key
        (``None`` = whole graph) to the cohort positions solvable on that
        shared subgraph; ``solo`` holds positions whose BFS genuinely
        truncates at µ (query-specific subgraph). Cold-start positions
        (empty absorbing set) appear in neither.
        """
        graph = self.graph
        groups: dict[tuple[int, ...] | None, list[int]] = {}
        solo: list[int] = []
        if self.subgraph_size is None:
            # Global graph: every query shares one transition matrix; solve
            # all non-cold-start queries as one multi-RHS batch.
            active = [i for i in range(users.size) if absorbing_sets[i].size]
            if active:
                groups[None] = active
            return groups, solo
        # µ-subgraph mode: a query whose BFS never exhausts the µ budget
        # ends up with the full union of the connected components its
        # seed items live in — a set many queries share. Group on that
        # component key, memoized per user (it depends only on the frozen
        # graph and the user's rated items, never on the cohort).
        for i, user in enumerate(users):
            absorbing = absorbing_sets[i]
            if absorbing.size == 0:
                continue  # cold start: row stays -inf
            key = self._group_keys.get(int(user))
            if key is None:
                key = self._compute_group_key(int(user), absorbing)
                self._group_keys[int(user)] = key
            if key == "solo":
                solo.append(i)
            else:
                groups.setdefault(key, []).append(i)
        return groups, solo

    def _compute_group_key(self, user: int,
                           absorbing: np.ndarray) -> tuple[int, ...] | str:
        """Component-group key for one user, ``"solo"`` when µ truncates."""
        graph = self.graph
        seed_items = self._subgraph_seed_items(user, absorbing)
        if seed_items.size == 0:
            return "solo"
        labels = graph.component_labels()
        components = np.unique(labels[graph.item_nodes(seed_items)])
        if (int(graph.item_component_sizes()[components].sum()) > self.subgraph_size
                or not np.all(np.isin(labels[absorbing], components))):
            return "solo"
        return tuple(int(c) for c in components)

    def cohort_partitions(self, users: np.ndarray) -> list[np.ndarray]:
        """Independent slices of a cohort, for parallel group dispatch.

        Each returned array holds cohort *positions* whose solves share no
        walk structure with the other partitions: one partition per shared
        component-group, plus one for the per-user BFS / cold-start
        remainder. The serving engine fans these out across its worker
        pool; scoring partitions separately is score-identical to one batch
        call because group solves are independent multi-RHS systems.
        """
        self._require_fitted()
        users = np.asarray(users, dtype=np.int64)
        absorbing_sets = [self._absorbing_nodes(int(u)) for u in users]
        groups, solo = self._partition_cohort(users, absorbing_sets)
        grouped = set()
        partitions = []
        for members in groups.values():
            partitions.append(np.asarray(members, dtype=np.int64))
            grouped.update(members)
        grouped.update(solo)
        remainder = [i for i in range(users.size) if i not in grouped]
        leftover = sorted(solo + remainder)
        if leftover or not partitions:
            partitions.append(np.asarray(leftover, dtype=np.int64))
        return partitions

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        dataset = self.dataset
        scores = np.full((users.size, dataset.n_items), -np.inf)
        if users.size == 0:
            return scores
        cache = self._ensure_cache()
        absorbing_sets = [self._absorbing_nodes(int(u)) for u in users]
        groups, solo = self._partition_cohort(users, absorbing_sets)

        for i in solo:
            scores[i] = self._score_user_bfs(int(users[i]), absorbing_sets[i])

        for components, members in groups.items():
            entry = cache.group(components)
            if components is None:
                # Global pseudo-group: entry.nodes is the identity map, so
                # parent indices already are local indices.
                absorbing_local = [absorbing_sets[i] for i in members]
            else:
                # entry.nodes is sorted ascending; searchsorted inverts it.
                absorbing_local = [
                    np.searchsorted(entry.nodes, absorbing_sets[i])
                    for i in members
                ]
            values = self._solve_multi(entry.operator, absorbing_local)
            item_values = values[entry.item_positions, :]
            # One vectorized scatter per group: non-finite values land as
            # -inf, matching the rows' initial fill.
            block = np.where(np.isfinite(item_values), -item_values, -np.inf)
            rows = np.asarray(members, dtype=np.int64)[:, None]
            scores[rows, entry.item_indices[None, :]] = block.T
        return scores

    def _subgraph_seed_items(self, user: int, absorbing: np.ndarray) -> np.ndarray:
        """Item indices seeding the BFS (default: the user's rated items)."""
        return self.dataset.items_of_user(user)

"""The common recommender interface.

Every algorithm in this library — the paper's four graph recommenders and
all baselines — implements :class:`Recommender`:

* :meth:`Recommender.fit` ingests a :class:`~repro.data.RatingDataset`;
* :meth:`Recommender.score_items` returns a score per item for a user, where
  **higher is better** (time/cost-ranked algorithms negate internally) and
  ``-inf`` marks items the algorithm refuses to recommend (unreachable in the
  graph, outside the candidate subgraph, …);
* :meth:`Recommender.recommend` turns scores into a top-k list, excluding
  already-rated items by default.

The uniform sign convention is what lets one evaluation harness (Recall@N,
popularity, diversity, similarity, efficiency) run every algorithm
unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError, NotFittedError
from repro.utils.topk import top_k_indices
from repro.utils.validation import check_positive_int

__all__ = ["Recommendation", "Recommender"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked recommendation: item index, its label, and the score."""

    item: int
    label: object
    score: float


class Recommender(abc.ABC):
    """Abstract base class for all recommendation algorithms.

    Subclasses implement :meth:`_fit` (ingest the dataset, precompute
    models) and :meth:`_score_user` (score every item for one user).
    """

    #: Short name used in experiment tables ("HT", "AT", "AC2", "PureSVD", …).
    name: str = "recommender"

    def __init__(self):
        self.dataset: RatingDataset | None = None

    # -- template methods ---------------------------------------------------

    @abc.abstractmethod
    def _fit(self, dataset: RatingDataset) -> None:
        """Algorithm-specific fitting; ``self.dataset`` is already set."""

    @abc.abstractmethod
    def _score_user(self, user: int) -> np.ndarray:
        """Scores for every item (length ``n_items``), higher = better."""

    # -- public API --------------------------------------------------------

    def fit(self, dataset: RatingDataset) -> "Recommender":
        """Fit the recommender on a dataset and return ``self``."""
        if not isinstance(dataset, RatingDataset):
            raise ConfigError(
                f"fit expects a RatingDataset; got {type(dataset).__name__}"
            )
        self.dataset = dataset
        self._fit(dataset)
        return self

    @property
    def is_fitted(self) -> bool:
        return self.dataset is not None

    def _require_fitted(self) -> RatingDataset:
        if self.dataset is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.dataset

    def score_items(self, user: int, candidates: np.ndarray | None = None) -> np.ndarray:
        """Score items for ``user``; higher = more recommendable.

        With ``candidates`` (item indices), returns scores aligned with that
        array; otherwise returns scores for the full catalogue. ``-inf``
        means "cannot recommend".
        """
        dataset = self._require_fitted()
        dataset._check_user(user)
        scores = np.asarray(self._score_user(int(user)), dtype=np.float64)
        if scores.shape != (dataset.n_items,):
            raise ConfigError(
                f"{type(self).__name__}._score_user returned shape {scores.shape}; "
                f"expected ({dataset.n_items},)"
            )
        if candidates is None:
            return scores
        candidates = np.asarray(candidates, dtype=np.int64).ravel()
        if candidates.size and (candidates.min() < 0 or candidates.max() >= dataset.n_items):
            raise ConfigError("candidates contains out-of-range item indices")
        return scores[candidates]

    def recommend(self, user: int, k: int = 10, exclude_rated: bool = True,
                  candidates: np.ndarray | None = None) -> list[Recommendation]:
        """Top-``k`` recommendations for ``user``.

        Items scored ``-inf`` are never returned, so the list may be shorter
        than ``k`` (e.g. a cold-start user on a graph method).
        """
        dataset = self._require_fitted()
        k = check_positive_int(k, "k")
        scores = self.score_items(user)
        if exclude_rated:
            scores = scores.copy()
            scores[dataset.items_of_user(int(user))] = -np.inf
        if candidates is not None:
            mask = np.full(dataset.n_items, -np.inf)
            candidates = np.asarray(candidates, dtype=np.int64).ravel()
            mask[candidates] = 0.0
            scores = scores + mask
        order = top_k_indices(scores, k)
        return [
            Recommendation(int(i), dataset.item_labels[int(i)], float(scores[i]))
            for i in order
            if np.isfinite(scores[i])
        ]

    def recommend_items(self, user: int, k: int = 10, **kwargs) -> np.ndarray:
        """Like :meth:`recommend` but returning just the item-index array."""
        return np.array(
            [r.item for r in self.recommend(user, k, **kwargs)], dtype=np.int64
        )

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"

"""The common recommender interface.

Every algorithm in this library — the paper's four graph recommenders and
all baselines — implements :class:`Recommender`:

* :meth:`Recommender.fit` ingests a :class:`~repro.data.RatingDataset`;
* :meth:`Recommender.score_items` returns a score per item for a user, where
  **higher is better** (time/cost-ranked algorithms negate internally) and
  ``-inf`` marks items the algorithm refuses to recommend (unreachable in the
  graph, outside the candidate subgraph, …);
* :meth:`Recommender.recommend` turns scores into a top-k list, excluding
  already-rated items by default;
* :meth:`Recommender.score_users` / :meth:`Recommender.recommend_batch` are
  the batch-serving counterparts: one ``(n_users, n_items)`` score matrix /
  one ranked list per user for a whole query cohort. A generic fallback
  stacks per-user scores; algorithms whose hot path vectorises (multi-RHS
  walk solves, factor-matrix products, …) override
  :meth:`Recommender._score_users_batch` to answer the cohort in one shot.

The uniform sign convention is what lets one evaluation harness (Recall@N,
popularity, diversity, similarity, efficiency) run every algorithm
unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError, NotFittedError
from repro.utils.topk import top_k_indices
from repro.utils.validation import as_index_array, check_positive_int

__all__ = ["Recommendation", "Recommender"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked recommendation: item index, its label, and the score."""

    item: int
    label: object
    score: float


class Recommender(abc.ABC):
    """Abstract base class for all recommendation algorithms.

    Subclasses implement :meth:`_fit` (ingest the dataset, precompute
    models) and :meth:`_score_user` (score every item for one user).
    """

    #: Short name used in experiment tables ("HT", "AT", "AC2", "PureSVD", …).
    name: str = "recommender"

    def __init__(self):
        self.dataset: RatingDataset | None = None

    # -- template methods ---------------------------------------------------

    @abc.abstractmethod
    def _fit(self, dataset: RatingDataset) -> None:
        """Algorithm-specific fitting; ``self.dataset`` is already set."""

    @abc.abstractmethod
    def _score_user(self, user: int) -> np.ndarray:
        """Scores for every item (length ``n_items``), higher = better."""

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        """Scores for every item for each user in ``users``.

        The generic fallback stacks :meth:`_score_user` row by row.
        Vectorised algorithms override this with an implementation whose
        row ``k`` agrees with scoring ``users[k]`` alone — bit-identical for
        the sparse solvers, to floating-point rounding for BLAS-backed
        products — and typically delegate :meth:`_score_user` back to a
        batch of one so the two paths share one code path. Implementations
        must return a fresh ``(len(users), n_items)`` float array — callers
        may mutate it.
        """
        dataset = self.dataset
        out = np.empty((users.size, dataset.n_items), dtype=np.float64)
        for row, user in enumerate(users):
            scores = np.asarray(self._score_user(int(user)), dtype=np.float64)
            if scores.shape != (dataset.n_items,):
                raise ConfigError(
                    f"{type(self).__name__}._score_user returned shape {scores.shape}; "
                    f"expected ({dataset.n_items},)"
                )
            out[row] = scores
        return out

    # -- public API --------------------------------------------------------

    def fit(self, dataset: RatingDataset) -> "Recommender":
        """Fit the recommender on a dataset and return ``self``."""
        if not isinstance(dataset, RatingDataset):
            raise ConfigError(
                f"fit expects a RatingDataset; got {type(dataset).__name__}"
            )
        self.dataset = dataset
        self._fit(dataset)
        return self

    @property
    def is_fitted(self) -> bool:
        return self.dataset is not None

    def _require_fitted(self) -> RatingDataset:
        if self.dataset is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.dataset

    def score_items(self, user: int, candidates: np.ndarray | None = None) -> np.ndarray:
        """Score items for ``user``; higher = more recommendable.

        With ``candidates`` (item indices), returns scores aligned with that
        array; otherwise returns scores for the full catalogue. ``-inf``
        means "cannot recommend".
        """
        dataset = self._require_fitted()
        dataset._check_user(user)
        scores = np.asarray(self._score_user(int(user)), dtype=np.float64)
        if scores.shape != (dataset.n_items,):
            raise ConfigError(
                f"{type(self).__name__}._score_user returned shape {scores.shape}; "
                f"expected ({dataset.n_items},)"
            )
        if candidates is None:
            return scores
        return scores[self._check_candidates_array(candidates)]

    def recommend(self, user: int, k: int = 10, exclude_rated: bool = True,
                  candidates: np.ndarray | None = None) -> list[Recommendation]:
        """Top-``k`` recommendations for ``user``.

        Items scored ``-inf`` are never returned, so the list may be shorter
        than ``k`` (e.g. a cold-start user on a graph method). A single user
        is served as a cohort of one, so this and :meth:`recommend_batch`
        can never disagree.
        """
        dataset = self._require_fitted()
        dataset._check_user(user)
        return self.recommend_batch(
            np.array([int(user)], dtype=np.int64), k,
            exclude_rated=exclude_rated, candidates=candidates,
        )[0]

    def recommend_items(self, user: int, k: int = 10, **kwargs) -> np.ndarray:
        """Like :meth:`recommend` but returning just the item-index array."""
        return np.array(
            [r.item for r in self.recommend(user, k, **kwargs)], dtype=np.int64
        )

    # -- batch API ---------------------------------------------------------

    def _check_users_array(self, users) -> np.ndarray:
        dataset = self._require_fitted()
        if users is None:
            return np.arange(dataset.n_users, dtype=np.int64)
        return as_index_array(
            np.atleast_1d(np.asarray(users)), dataset.n_users, "users"
        )

    def _check_candidates_array(self, candidates) -> np.ndarray:
        dataset = self._require_fitted()
        return as_index_array(
            np.atleast_1d(np.asarray(candidates)), dataset.n_items, "candidates"
        )

    def score_users(self, users: np.ndarray | None = None,
                    candidates: np.ndarray | None = None) -> np.ndarray:
        """Score matrix ``(len(users), n_items)`` for a cohort of users.

        The batch counterpart of :meth:`score_items`: row ``k`` holds the
        scores of ``users[k]`` (higher = better, ``-inf`` = cannot
        recommend). ``users=None`` scores every user. With ``candidates``,
        columns are aligned with that item-index array instead of the full
        catalogue.

        Vectorised subclasses answer the whole cohort in one pass (shared
        transition matrices, multi-RHS solves, one factor-matrix product);
        the base implementation falls back to a per-user loop, so the method
        is always available.
        """
        dataset = self._require_fitted()
        users = self._check_users_array(users)
        scores = np.asarray(self._score_users_batch(users), dtype=np.float64)
        if scores.shape != (users.size, dataset.n_items):
            raise ConfigError(
                f"{type(self).__name__}._score_users_batch returned shape "
                f"{scores.shape}; expected ({users.size}, {dataset.n_items})"
            )
        if candidates is None:
            return scores
        return scores[:, self._check_candidates_array(candidates)]

    def recommend_batch(self, users: np.ndarray | None = None, k: int = 10,
                        exclude_rated: bool = True,
                        candidates: np.ndarray | None = None,
                        ) -> list[list[Recommendation]]:
        """Top-``k`` lists for a cohort — ``recommend`` for many users at once.

        Returns one list per user, in ``users`` order, each matching what
        :meth:`recommend` would return for that user alone: the same items in
        the same order, with scores agreeing to floating-point rounding (most
        algorithms are bit-identical; BLAS-backed ones like PureSVD may
        differ in the last ulp). The cohort shares a single batch scoring
        pass.
        """
        dataset = self._require_fitted()
        k = check_positive_int(k, "k")
        users = self._check_users_array(users)
        scores = self.score_users(users)
        if exclude_rated:
            for row, user in enumerate(users):
                scores[row, dataset.items_of_user(int(user))] = -np.inf
        if candidates is not None:
            mask = np.full(dataset.n_items, -np.inf)
            mask[self._check_candidates_array(candidates)] = 0.0
            scores = scores + mask
        results = []
        for row in range(users.size):
            row_scores = scores[row]
            order = top_k_indices(row_scores, k)
            results.append([
                Recommendation(int(i), dataset.item_labels[int(i)],
                               float(row_scores[i]))
                for i in order
                if np.isfinite(row_scores[i])
            ])
        return results

    def recommend_batch_items(self, users: np.ndarray | None = None,
                              k: int = 10, **kwargs) -> list[np.ndarray]:
        """Like :meth:`recommend_batch` but returning item-index arrays."""
        return [
            np.array([r.item for r in recs], dtype=np.int64)
            for recs in self.recommend_batch(users, k, **kwargs)
        ]

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"

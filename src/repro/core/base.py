"""The common recommender interface.

Every algorithm in this library — the paper's four graph recommenders and
all baselines — implements :class:`Recommender`:

* :meth:`Recommender.fit` ingests a :class:`~repro.data.RatingDataset`;
* :meth:`Recommender.score_items` returns a score per item for a user, where
  **higher is better** (time/cost-ranked algorithms negate internally) and
  ``-inf`` marks items the algorithm refuses to recommend (unreachable in the
  graph, outside the candidate subgraph, …);
* :meth:`Recommender.recommend` turns scores into a top-k list, excluding
  already-rated items by default;
* :meth:`Recommender.score_users` / :meth:`Recommender.recommend_batch` are
  the batch-serving counterparts: one ``(n_users, n_items)`` score matrix /
  one ranked list per user for a whole query cohort. A generic fallback
  stacks per-user scores; algorithms whose hot path vectorises (multi-RHS
  walk solves, factor-matrix products, …) override
  :meth:`Recommender._score_users_batch` to answer the cohort in one shot.
  :meth:`Recommender.recommend_batch_arrays` is the array-shaped variant
  (padded int item / float score matrices) that the serving layer builds
  rows and caches from without materialising per-item objects;
* :meth:`Recommender.state_dict` / :meth:`Recommender.load_state_dict` are
  the persistence contract: every fitted recommender round-trips through a
  plain dict of numpy arrays (and from there to a versioned ``.npz``
  artifact via :mod:`repro.core.artifacts`), enabling the offline-fit /
  online-serve split. Subclasses declare their fitted state through
  :meth:`Recommender.get_config` (constructor arguments, JSON-serializable)
  and :meth:`Recommender._state_arrays` / ``_load_state_arrays`` (fitted
  numpy/sparse arrays);
* :meth:`Recommender.partial_fit` is the incremental-update contract: absorb
  a :class:`~repro.data.dataset.DatasetDelta` of rating events (new users,
  new items, re-rates) *without* a full refit, bit-identical in scoring to a
  from-scratch fit on the merged dataset. Node-local algorithms override
  :meth:`Recommender._partial_fit` to refresh touched state only; globally
  coupled ones fall back to the (parity-trivial) refit default.

The uniform sign convention is what lets one evaluation harness (Recall@N,
popularity, diversity, similarity, efficiency) run every algorithm
unchanged.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DatasetDelta, RatingDataset
from repro.exceptions import ArtifactError, ConfigError, NotFittedError
from repro.utils.topk import top_k_indices
from repro.utils.validation import (
    as_index_array,
    check_in_options,
    check_positive_int,
)

__all__ = ["Recommendation", "Recommender", "PartialFitReport"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked recommendation: item index, its label, and the score."""

    item: int
    label: object
    score: float


@dataclass
class PartialFitReport:
    """Outcome of one :meth:`Recommender.partial_fit` call.

    Attributes
    ----------
    mode:
        ``"incremental"`` — derived state was refreshed for the touched
        nodes only — or ``"refit"`` — the algorithm fell back to a full fit
        on the merged dataset (globally coupled models: SVD factors, LDA
        topics, dense similarity matrices). Both modes satisfy the parity
        contract: scoring after ``partial_fit`` is bit-identical to a
        from-scratch fit on the merged dataset.
    n_events, n_new_users, n_new_items:
        Echo of the applied delta's shape.
    affected_users:
        Merged user indices whose scores may have changed, or ``None`` when
        every user is affected (the refit fallback, and incremental models
        with global score coupling such as popularity ranking). The serving
        engine evicts exactly these users from its result cache.
    touched_components:
        Component labels the update touched (graph-backed models only).
    seconds:
        Wall-clock of the update.
    """

    mode: str
    n_events: int
    n_new_users: int
    n_new_items: int
    affected_users: np.ndarray | None
    touched_components: tuple | None = None
    seconds: float = 0.0

    @property
    def n_affected_users(self) -> int | None:
        """Count of affected users, or ``None`` meaning "all"."""
        return None if self.affected_users is None else int(self.affected_users.size)

    def summary(self) -> dict:
        """One summary row for reporting."""
        return {
            "mode": self.mode,
            "events": self.n_events,
            "new_users": self.n_new_users,
            "new_items": self.n_new_items,
            "affected_users": ("all" if self.affected_users is None
                               else int(self.affected_users.size)),
            "seconds": round(self.seconds, 4),
        }


class Recommender(abc.ABC):
    """Abstract base class for all recommendation algorithms.

    Subclasses implement :meth:`_fit` (ingest the dataset, precompute
    models) and :meth:`_score_user` (score every item for one user).
    """

    #: Short name used in experiment tables ("HT", "AT", "AC2", "PureSVD", …).
    name: str = "recommender"

    def __init__(self):
        self.dataset: RatingDataset | None = None
        self._serving_dtype = "float64"

    # -- template methods ---------------------------------------------------

    @abc.abstractmethod
    def _fit(self, dataset: RatingDataset) -> None:
        """Algorithm-specific fitting; ``self.dataset`` is already set."""

    @abc.abstractmethod
    def _score_user(self, user: int) -> np.ndarray:
        """Scores for every item (length ``n_items``), higher = better."""

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        """Scores for every item for each user in ``users``.

        The generic fallback stacks :meth:`_score_user` row by row.
        Vectorised algorithms override this with an implementation whose
        row ``k`` agrees with scoring ``users[k]`` alone — bit-identical for
        the sparse solvers, to floating-point rounding for BLAS-backed
        products — and typically delegate :meth:`_score_user` back to a
        batch of one so the two paths share one code path. Implementations
        must return a fresh ``(len(users), n_items)`` float array — callers
        may mutate it.
        """
        dataset = self.dataset
        out = np.empty((users.size, dataset.n_items), dtype=np.float64)
        for row, user in enumerate(users):
            scores = np.asarray(self._score_user(int(user)), dtype=np.float64)
            if scores.shape != (dataset.n_items,):
                raise ConfigError(
                    f"{type(self).__name__}._score_user returned shape {scores.shape}; "
                    f"expected ({dataset.n_items},)"
                )
            out[row] = scores
        return out

    # -- persistence contract -----------------------------------------------

    def get_config(self) -> dict:
        """Constructor arguments recreating this instance (JSON-serializable).

        The artifact loader instantiates ``cls(**config)`` before restoring
        the fitted arrays, so everything a subclass's ``__init__`` validates
        must appear here. The default is an empty dict (no parameters).
        """
        return {}

    def _state_arrays(self) -> dict:
        """Fitted state as a flat ``name -> numpy array / scipy sparse`` dict.

        Subclasses override this together with :meth:`_load_state_arrays`;
        keys must be stable across versions (they become ``.npz`` member
        names). ``self.dataset`` is persisted by the base class and is *not*
        part of this dict.
        """
        return {}

    def _load_state_arrays(self, arrays: dict) -> None:
        """Restore the fitted state saved by :meth:`_state_arrays`.

        Called by :meth:`load_state_dict` after ``self.dataset`` has been
        restored; must leave the instance equivalent to a freshly fitted one
        without re-running any training.
        """
        if arrays:
            raise ArtifactError(
                f"{type(self).__name__} does not expect state arrays; "
                f"got {sorted(arrays)}"
            )

    def state_dict(self) -> dict:
        """The fitted state as a plain dict (the in-memory artifact).

        Layout: ``{"class", "config", "dataset", "arrays"}`` where
        ``dataset`` is :meth:`RatingDataset.to_arrays` output and ``arrays``
        is :meth:`_state_arrays` output. Use
        :func:`repro.core.artifacts.save_artifact` (or :meth:`save`) to
        write it as a versioned ``.npz``.
        """
        dataset = self._require_fitted()
        return {
            "class": type(self).__name__,
            "config": self.get_config(),
            "dataset": dataset.to_arrays(),
            "arrays": self._state_arrays(),
        }

    def load_state_dict(self, state: dict) -> "Recommender":
        """Restore a fitted state produced by :meth:`state_dict`.

        The receiving instance must be of the class that produced the state
        (construct it with the artifact's config first); returns ``self``,
        fitted and ready to serve — no training is re-run.
        """
        try:
            saved_class = state["class"]
            dataset_arrays = state["dataset"]
            arrays = state["arrays"]
        except (KeyError, TypeError):
            raise ArtifactError(
                "state dict must have 'class', 'dataset' and 'arrays' entries"
            ) from None
        if saved_class != type(self).__name__:
            raise ArtifactError(
                f"state dict was saved by {saved_class!r}; "
                f"cannot load into {type(self).__name__!r}"
            )
        # A state dict flagged "trusted" (set by the artifact loader for
        # memory-mapped loads of this library's own saves) skips dataset
        # re-validation — the scans would page the whole mapping in and
        # re-prove what save_artifact already proved.
        self.dataset = RatingDataset.from_arrays(
            dataset_arrays, validate=not state.get("trusted", False)
        )
        self._load_state_arrays(dict(arrays))
        return self

    def save(self, path: str) -> str:
        """Persist the fitted model as a versioned ``.npz`` artifact.

        Convenience wrapper for :func:`repro.core.artifacts.save_artifact`;
        reload with :func:`repro.core.artifacts.load_artifact`. Returns the
        path written (``.npz`` appended when missing).
        """
        from repro.core.artifacts import save_artifact

        return save_artifact(self, path)

    # -- dtype policy --------------------------------------------------------

    @property
    def serving_dtype(self) -> str:
        """The numeric policy of the scoring hot path.

        ``"float64"`` (default) is the reference precision; ``"float32"``
        halves the memory bandwidth of the solvers that honour it (the
        random-walk recommenders' prepared operators). Algorithms without a
        bandwidth-bound solve ignore the policy and always score in float64
        — the dtype-parity test suite asserts that switching the policy
        never changes a top-10 ranking for any registered recommender.
        """
        return getattr(self, "_serving_dtype", "float64")

    def set_serving_dtype(self, dtype: str) -> "Recommender":
        """Set the serving dtype policy; returns ``self`` for chaining."""
        self._serving_dtype = check_in_options(
            dtype, "dtype", ("float64", "float32")
        )
        return self

    def scoring_cache_stats(self) -> dict | None:
        """Warm-cache counters of the scoring layer, or ``None``.

        Algorithms that memoize request-independent structures (the walk
        recommenders' :class:`~repro.graph.cache.TransitionCache`) report
        their hit/miss counters here; the serving engine folds them into its
        reports. The default — no scoring-layer cache — is ``None``.
        """
        return None

    # -- public API --------------------------------------------------------

    def fit(self, dataset: RatingDataset) -> "Recommender":
        """Fit the recommender on a dataset and return ``self``."""
        if not isinstance(dataset, RatingDataset):
            raise ConfigError(
                f"fit expects a RatingDataset; got {type(dataset).__name__}"
            )
        self.dataset = dataset
        self._fit(dataset)
        return self

    def partial_fit(self, delta: DatasetDelta) -> PartialFitReport:
        """Absorb a batch of rating events without refitting from scratch.

        ``delta`` must come from :meth:`RatingDataset.extend` on **this**
        recommender's fitted dataset (base shape is validated). The parity
        contract — asserted for every registered recommender in
        ``tests/test_incremental_parity.py`` — is that scoring after
        ``partial_fit`` is *bit-identical* to a from-scratch ``fit`` on
        ``delta.dataset``. Algorithms with per-node derived state (the
        random-walk recommenders, graph baselines, popularity) override
        :meth:`_partial_fit` to refresh touched nodes only; the default
        falls back to a full refit on the merged dataset, which satisfies
        the contract trivially.
        """
        dataset = self._require_fitted()
        if not isinstance(delta, DatasetDelta):
            raise ConfigError(
                f"partial_fit expects a DatasetDelta; got {type(delta).__name__}"
            )
        if (delta.base_n_users, delta.base_n_items, delta.base_n_ratings) != (
                dataset.n_users, dataset.n_items, dataset.n_ratings):
            raise ConfigError(
                f"delta base ({delta.base_n_users} users, {delta.base_n_items} "
                f"items, {delta.base_n_ratings} ratings) does not match the "
                f"fitted dataset ({dataset.n_users} users, {dataset.n_items} "
                f"items, {dataset.n_ratings} ratings)"
            )
        start = time.perf_counter()
        report = self._partial_fit(delta)
        report.seconds = time.perf_counter() - start
        return report

    def _partial_fit(self, delta: DatasetDelta) -> PartialFitReport:
        """Algorithm-specific incremental update; default = full refit.

        Overrides must leave the instance bit-identical (for scoring) to a
        fresh ``fit(delta.dataset)`` and report which users' scores may
        have changed (``affected_users=None`` = all).
        """
        self.fit(delta.dataset)
        return PartialFitReport(
            mode="refit", n_events=delta.n_events,
            n_new_users=delta.n_new_users, n_new_items=delta.n_new_items,
            affected_users=None,
        )

    def clear_scoring_cache(self) -> None:
        """Drop any scoring-layer memo structures (default: nothing to drop).

        Algorithms owning warm caches (the walk recommenders'
        :class:`~repro.graph.cache.TransitionCache`, CommuteTime's
        pseudoinverse memo) override this; the serving engine's
        ``clear_caches`` calls it so a running deployment can shed both
        cache layers without discarding the engine.
        """

    @property
    def is_fitted(self) -> bool:
        return self.dataset is not None

    def _require_fitted(self) -> RatingDataset:
        if self.dataset is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.dataset

    def score_items(self, user: int, candidates: np.ndarray | None = None) -> np.ndarray:
        """Score items for ``user``; higher = more recommendable.

        With ``candidates`` (item indices), returns scores aligned with that
        array; otherwise returns scores for the full catalogue. ``-inf``
        means "cannot recommend".
        """
        dataset = self._require_fitted()
        dataset._check_user(user)
        scores = np.asarray(self._score_user(int(user)), dtype=np.float64)
        if scores.shape != (dataset.n_items,):
            raise ConfigError(
                f"{type(self).__name__}._score_user returned shape {scores.shape}; "
                f"expected ({dataset.n_items},)"
            )
        if candidates is None:
            return scores
        return scores[self._check_candidates_array(candidates)]

    def recommend(self, user: int, k: int = 10, exclude_rated: bool = True,
                  candidates: np.ndarray | None = None) -> list[Recommendation]:
        """Top-``k`` recommendations for ``user``.

        Items scored ``-inf`` are never returned, so the list may be shorter
        than ``k`` (e.g. a cold-start user on a graph method). A single user
        is served as a cohort of one, so this and :meth:`recommend_batch`
        can never disagree.
        """
        dataset = self._require_fitted()
        dataset._check_user(user)
        return self.recommend_batch(
            np.array([int(user)], dtype=np.int64), k,
            exclude_rated=exclude_rated, candidates=candidates,
        )[0]

    def recommend_items(self, user: int, k: int = 10, **kwargs) -> np.ndarray:
        """Like :meth:`recommend` but returning just the item-index array."""
        return np.array(
            [r.item for r in self.recommend(user, k, **kwargs)], dtype=np.int64
        )

    # -- batch API ---------------------------------------------------------

    def _check_users_array(self, users) -> np.ndarray:
        dataset = self._require_fitted()
        if users is None:
            return np.arange(dataset.n_users, dtype=np.int64)
        return as_index_array(users, dataset.n_users, "users")

    def _check_candidates_array(self, candidates) -> np.ndarray:
        dataset = self._require_fitted()
        return as_index_array(candidates, dataset.n_items, "candidates")

    def score_users(self, users: np.ndarray | None = None,
                    candidates: np.ndarray | None = None) -> np.ndarray:
        """Score matrix ``(len(users), n_items)`` for a cohort of users.

        The batch counterpart of :meth:`score_items`: row ``k`` holds the
        scores of ``users[k]`` (higher = better, ``-inf`` = cannot
        recommend). ``users=None`` scores every user. With ``candidates``,
        columns are aligned with that item-index array instead of the full
        catalogue.

        Vectorised subclasses answer the whole cohort in one pass (shared
        transition matrices, multi-RHS solves, one factor-matrix product);
        the base implementation falls back to a per-user loop, so the method
        is always available.
        """
        dataset = self._require_fitted()
        users = self._check_users_array(users)
        scores = np.asarray(self._score_users_batch(users), dtype=np.float64)
        if scores.shape != (users.size, dataset.n_items):
            raise ConfigError(
                f"{type(self).__name__}._score_users_batch returned shape "
                f"{scores.shape}; expected ({users.size}, {dataset.n_items})"
            )
        if candidates is None:
            return scores
        return scores[:, self._check_candidates_array(candidates)]

    def recommend_batch_arrays(self, users: np.ndarray | None = None,
                               k: int = 10, exclude_rated: bool = True,
                               candidates: np.ndarray | None = None,
                               ) -> tuple[np.ndarray, np.ndarray]:
        """Ranked top-``k`` lists for a cohort as padded arrays.

        Returns ``(items, scores)``, both shaped ``(len(users), k)``: row
        ``r`` holds the ranked item indices for ``users[r]`` with ``-1``
        padding (and ``-inf`` score) where the list is shorter than ``k``
        (cold-start users, ``-inf``-scored items). Padding is always
        trailing. This is the allocation-friendly shape the serving layer
        (cohort rows, :class:`~repro.service.TopKStore`, the engine's result
        cache) consumes directly; :meth:`recommend_batch` wraps it in
        :class:`Recommendation` objects.
        """
        dataset = self._require_fitted()
        k = check_positive_int(k, "k")
        users = self._check_users_array(users)
        scores = self.score_users(users)
        if exclude_rated:
            for row, user in enumerate(users):
                scores[row, dataset.items_of_user(int(user))] = -np.inf
        if candidates is not None:
            mask = np.full(dataset.n_items, -np.inf)
            mask[self._check_candidates_array(candidates)] = 0.0
            scores = scores + mask
        items = np.full((users.size, k), -1, dtype=np.int64)
        out_scores = np.full((users.size, k), -np.inf)
        for row in range(users.size):
            order = top_k_indices(scores[row], k)
            ranked = scores[row, order]
            # top_k_indices sorts -inf (and NaN) last, so the finite prefix
            # is exactly the servable list.
            length = int(np.isfinite(ranked).sum())
            items[row, :length] = order[:length]
            out_scores[row, :length] = ranked[:length]
        return items, out_scores

    def recommend_batch(self, users: np.ndarray | None = None, k: int = 10,
                        exclude_rated: bool = True,
                        candidates: np.ndarray | None = None,
                        ) -> list[list[Recommendation]]:
        """Top-``k`` lists for a cohort — ``recommend`` for many users at once.

        Returns one list per user, in ``users`` order, each matching what
        :meth:`recommend` would return for that user alone: the same items in
        the same order, with scores agreeing to floating-point rounding (most
        algorithms are bit-identical; BLAS-backed ones like PureSVD may
        differ in the last ulp). The cohort shares a single batch scoring
        pass.
        """
        dataset = self._require_fitted()
        users = self._check_users_array(users)
        items, scores = self.recommend_batch_arrays(
            users, k, exclude_rated=exclude_rated, candidates=candidates
        )
        labels = dataset.item_labels
        return [
            [Recommendation(int(item), labels[int(item)], float(score))
             for item, score in zip(row_items, row_scores) if item >= 0]
            for row_items, row_scores in zip(items, scores)
        ]

    def recommend_batch_items(self, users: np.ndarray | None = None,
                              k: int = 10, **kwargs) -> list[np.ndarray]:
        """Like :meth:`recommend_batch` but returning item-index arrays."""
        return [
            np.array([r.item for r in recs], dtype=np.int64)
            for recs in self.recommend_batch(users, k, **kwargs)
        ]

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"

"""Transition-cost models for the Absorbing Cost recommenders (Eq. 8–9).

The Absorbing Cost recursion needs, for every non-absorbing node ``i``, the
*expected one-step cost* ``c_i = Σ_j p_ij c(j|i)``. The paper's entropy-cost
model (Eq. 9) sets:

* jumping **item → user** costs the target user's entropy ``E(j)``, so the
  expected local cost of an item node is ``Σ_j p_ij E(j)``;
* jumping **user → item** costs a constant ``C`` (tuned; the paper suggests
  the mean of the item→user costs so the two directions are balanced).

:class:`EntropyCostModel` implements exactly that; :class:`UnitCostModel`
recovers Absorbing Time (every step costs 1) and is used by the equivalence
tests.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigError

__all__ = ["CostModel", "UnitCostModel", "EntropyCostModel",
           "cost_model_config", "cost_model_from_config"]


class CostModel(abc.ABC):
    """Produces per-node expected one-step costs for an absorbing walk.

    The recommenders call :meth:`local_costs` on the (sub)graph they run on;
    implementations must be agnostic to whether that graph is global or a
    BFS-extracted local subgraph.
    """

    @abc.abstractmethod
    def local_costs(self, transition: sp.spmatrix, user_mask: np.ndarray,
                    node_entropy: np.ndarray) -> np.ndarray:
        """Expected one-step cost per node.

        Parameters
        ----------
        transition:
            Row-stochastic transition matrix of the (sub)graph.
        user_mask:
            Boolean array; True where the node is a user.
        node_entropy:
            Per-node entropy values — the user's entropy at user nodes,
            0 at item nodes.
        """


class UnitCostModel(CostModel):
    """Every step costs 1 — Absorbing Cost degenerates to Absorbing Time."""

    def local_costs(self, transition, user_mask, node_entropy) -> np.ndarray:
        return np.ones(transition.shape[0])


class EntropyCostModel(CostModel):
    """The paper's entropy-biased cost (Eq. 9).

    Parameters
    ----------
    jump_cost:
        The constant ``C`` charged for every user → item step. The string
        ``"mean-entropy"`` (default) sets ``C`` to the mean entropy of the
        users present in the (sub)graph, the paper's "mean cost of jumping
        from V2 to V1"; any positive float fixes it explicitly.
    """

    def __init__(self, jump_cost: float | str = "mean-entropy"):
        if isinstance(jump_cost, str):
            if jump_cost != "mean-entropy":
                raise ConfigError(
                    f"jump_cost must be a positive number or 'mean-entropy'; got {jump_cost!r}"
                )
        elif not (isinstance(jump_cost, (int, float)) and jump_cost > 0):
            raise ConfigError(f"jump_cost must be > 0; got {jump_cost!r}")
        self.jump_cost = jump_cost

    def local_costs(self, transition, user_mask, node_entropy) -> np.ndarray:
        transition = sp.csr_matrix(transition, dtype=np.float64)
        user_mask = np.asarray(user_mask, dtype=bool).ravel()
        node_entropy = np.asarray(node_entropy, dtype=np.float64).ravel()
        n = transition.shape[0]
        if user_mask.shape[0] != n or node_entropy.shape[0] != n:
            raise ConfigError("user_mask/node_entropy length must match node count")

        if self.jump_cost == "mean-entropy":
            user_entropies = node_entropy[user_mask]
            c = float(user_entropies.mean()) if user_entropies.size else 1.0
            if c <= 0:  # all-zero entropies (e.g. every user rated one item)
                c = 1.0
        else:
            c = float(self.jump_cost)

        # Item nodes: expected entropy of the user stepped to (one matvec —
        # in a bipartite graph items only neighbour users, so entries of
        # node_entropy at item nodes never contribute).
        expected_entropy = transition @ node_entropy
        costs = np.where(user_mask, c, expected_entropy)
        # An isolated item node has zero expected cost; it is unreachable
        # anyway, but keep costs strictly positive for the solvers' sanity.
        costs = np.where((costs <= 0) & ~user_mask, c, costs)
        return costs


def cost_model_config(model: CostModel) -> dict:
    """JSON-serializable description of a built-in cost model.

    The model-artifact layer persists the Absorbing Cost recommender's cost
    model through this; custom :class:`CostModel` subclasses have no generic
    encoding and are rejected with :class:`ConfigError`.
    """
    if type(model) is UnitCostModel:
        return {"kind": "unit"}
    if type(model) is EntropyCostModel:
        return {"kind": "entropy", "jump_cost": model.jump_cost}
    raise ConfigError(
        f"{type(model).__name__} has no serializable config; only the "
        "built-in UnitCostModel/EntropyCostModel round-trip through artifacts"
    )


def cost_model_from_config(config: dict) -> CostModel:
    """Inverse of :func:`cost_model_config`."""
    kind = config.get("kind") if isinstance(config, dict) else None
    if kind == "unit":
        return UnitCostModel()
    if kind == "entropy":
        return EntropyCostModel(jump_cost=config.get("jump_cost", "mean-entropy"))
    raise ConfigError(f"unknown cost model config {config!r}")

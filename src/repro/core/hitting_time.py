"""HT — the Hitting Time recommender (paper §3.3, the "basic solution").

Given a query user ``q``, rank every unrated item ``j`` by the hitting time
``H(q|j)``: the expected number of steps a random walker starting at the
*item* needs to reach the *user* (Definition 1). Small hitting time means
the item is both relevant (many short paths to ``q``) and unpopular (the
paper's Eq. 5 analysis: ``H(q|j) ≈ π_j / (p_qj π_q)`` discounts items by
their stationary probability, i.e. their degree/popularity) — exactly the
long-tail ranking the paper wants.

Formally this is the absorbing time with the single absorbing node
``{q}``; the solver and the µ-subgraph machinery are shared with AT/AC via
:class:`~repro.core.graph_base.RandomWalkRecommender`.
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import register_recommender
from repro.core.graph_base import RandomWalkRecommender

__all__ = ["HittingTimeRecommender"]


@register_recommender
class HittingTimeRecommender(RandomWalkRecommender):
    """User-based Hitting Time ranking (the paper's HT variant).

    Parameters
    ----------
    method, n_iterations:
        Solver choice, see :class:`RandomWalkRecommender`. The default of
        τ = 30 sweeps is deeper than AT's 15 because hitting times to a
        single node converge more slowly than to an item set; the paper's
        own Figure 2 numbers correspond to τ ≈ 59 (see the golden test).
    subgraph_size:
        ``None`` (default) computes on the global graph like the paper's
        basic solution; an integer enables the µ-item BFS restriction around
        the user's rated items.
    dtype, chunk_size:
        Serving precision policy and multi-RHS chunk budget, see
        :class:`RandomWalkRecommender`.
    """

    name = "HT"

    def __init__(self, method: str = "truncated", n_iterations: int = 30,
                 subgraph_size: int | None = None, dtype: str = "float64",
                 chunk_size: int = 1024):
        super().__init__(method=method, n_iterations=n_iterations,
                         subgraph_size=subgraph_size, dtype=dtype,
                         chunk_size=chunk_size)

    def _absorbing_nodes(self, user: int) -> np.ndarray:
        graph = self.graph
        if graph.degrees[graph.user_node(user)] == 0:
            # An isolated query node can never be hit; treat as cold start.
            return np.empty(0, dtype=np.int64)
        return np.array([graph.user_node(user)], dtype=np.int64)

    def hitting_times(self, user: int) -> np.ndarray:
        """Raw hitting times ``H(user|item)`` for every item.

        Items that cannot reach the user are ``+inf``. This is the paper's
        Figure 2 quantity; :meth:`score_items` is its negation.
        """
        scores = self.score_items(user)
        times = np.where(np.isfinite(scores), -scores, np.inf)
        return times

"""User entropy — the feature behind the Absorbing Cost models (§4.2).

Two estimators, exactly as the paper proposes:

* **Item-based** (Eq. 10, §4.2.2): the Shannon entropy of the user's rating
  mass over the items they rated, ``E(u) = −Σ_{i∈S_u} p(i|u) log p(i|u)``
  with ``p(i|u) = w(u,i)/Σ w(u,·)``. A user who rated many items with even
  weights is "ambiguous" (high entropy); a user with few concentrated
  ratings is "specific".
* **Topic-based** (Eq. 11, §4.2.3): the entropy of the user's latent topic
  mixture θ_u from the rating-data LDA model — robust to the specific user
  who rates *many* items that all share one topic.

Both return entropy in nats.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.topics import fit_lda
from repro.topics.model import LatentTopicModel

__all__ = ["item_entropy", "topic_entropy", "distribution_entropy"]


def distribution_entropy(weights: np.ndarray) -> float:
    """Shannon entropy (nats) of an unnormalised non-negative weight vector.

    Zero weights contribute zero; an all-zero or empty vector has entropy 0
    (the convention for a user with no ratings — maximally "specific"
    because there is nothing to be ambiguous about).
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    if w.size == 0:
        return 0.0
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ConfigError("weights must be finite and non-negative")
    total = w.sum()
    if total == 0:
        return 0.0
    p = w / total
    p = p[p > 0]  # filter after normalising: tiny weights can underflow to 0
    return float(-(p * np.log(p)).sum())


def item_entropy(dataset: RatingDataset,
                 users: np.ndarray | None = None) -> np.ndarray:
    """Eq. 10: per-user entropy of the rating-mass distribution over items.

    Vectorised over the CSR structure; returns an array of length
    ``n_users``. With ``users`` given, only those rows are computed (aligned
    with the ``users`` array) — each user's entropy depends on their own
    ratings alone, so the restricted computation is bit-identical to the
    corresponding slice of the full one. The incremental update path relies
    on exactly that to refresh touched users only.
    """
    csr = dataset.matrix
    if users is not None:
        users = np.asarray(users, dtype=np.int64).ravel()
        csr = csr[users]
    n_rows = csr.shape[0]
    totals = np.asarray(csr.sum(axis=1)).ravel()
    # Per-element p log p, then summed per row.
    safe_totals = np.where(totals > 0, totals, 1.0)
    p = csr.data / np.repeat(safe_totals, np.diff(csr.indptr))
    plogp = p * np.log(p, where=p > 0, out=np.zeros_like(p))
    entropy = np.zeros(n_rows)
    np.subtract.at(entropy, np.repeat(np.arange(n_rows), np.diff(csr.indptr)), plogp)
    return entropy


def topic_entropy(dataset: RatingDataset, n_topics: int = 10,
                  model: LatentTopicModel | None = None,
                  method: str = "cvb0", seed=0, **lda_kwargs) -> np.ndarray:
    """Eq. 11: per-user entropy of the latent topic mixture θ_u.

    Either pass a pre-trained ``model`` (its θ is used directly) or let this
    function fit one with :func:`repro.topics.fit_lda` (engine selected by
    ``method``; extra keyword arguments forwarded).
    """
    if model is None:
        model = fit_lda(dataset, n_topics, method=method, seed=seed, **lda_kwargs)
    if model.n_users != dataset.n_users:
        raise ConfigError(
            f"model has {model.n_users} users but dataset has {dataset.n_users}"
        )
    return np.asarray(model.user_entropy())

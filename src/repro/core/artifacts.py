"""Versioned model artifacts: fit once, serve many times (ROADMAP north star).

A fitted :class:`~repro.core.base.Recommender` is, by contract, a JSON-able
config plus a flat dict of numpy/scipy arrays plus its training dataset
(:meth:`~repro.core.base.Recommender.state_dict`). This module turns that
contract into a single compressed ``.npz`` file — the **artifact** — and
back:

* :func:`save_artifact` writes ``meta`` (a JSON header: format version,
  class name, config), the dataset arrays and the per-algorithm state
  arrays; sparse matrices are stored as their CSR triplets;
* :func:`load_artifact` validates the format version, resolves the class
  through the :data:`RECOMMENDER_REGISTRY`, instantiates it from the saved
  config and restores the fitted arrays — no refitting, byte-identical
  scoring state;
* :func:`register_recommender` is the class decorator every concrete
  recommender registers itself with, so artifacts saved by any algorithm in
  the library round-trip without import-order gymnastics.

Format versioning is strict: an artifact written by a different (older or
newer) format raises :class:`~repro.exceptions.ArtifactError` instead of
deserializing garbage into the request path.
"""

from __future__ import annotations

import json

import numpy as np
import scipy.sparse as sp

from repro.core.base import PartialFitReport, Recommender
from repro.exceptions import ArtifactError
from repro.graph.bipartite import UserItemGraph

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "RECOMMENDER_REGISTRY",
    "GraphStateMixin",
    "register_recommender",
    "registered_recommenders",
    "save_artifact",
    "load_artifact",
    "peek_artifact",
]


class GraphStateMixin:
    """State hooks for recommenders whose fitted state is ``self.graph``.

    Persists the :class:`~repro.graph.bipartite.UserItemGraph` (adjacency +
    connected-component labels) so a loaded model starts with warm
    connectivity structure, and implements the incremental
    ``partial_fit`` contract for the one-graph-is-the-state baselines:
    the graph absorbs the delta through
    :meth:`~repro.graph.bipartite.UserItemGraph.apply_delta` (union-find
    label maintenance, no ``connected_components`` rerun) and subclasses
    refresh any extra derived state in :meth:`_post_partial_fit`. Mix in
    before :class:`Recommender`.
    """

    def _state_arrays(self) -> dict:
        return self.graph.to_arrays()

    def _load_state_arrays(self, arrays: dict) -> None:
        self.graph = UserItemGraph.from_arrays(self.dataset, arrays)

    def _post_partial_fit(self, delta, update) -> str | None:
        """Refresh non-graph derived state; return ``"all"`` to widen the
        affected-user set to every user (state with global score coupling)."""
        return None

    def _partial_fit(self, delta) -> PartialFitReport:
        update = self.graph.apply_delta(delta)
        self.dataset = delta.dataset
        self.graph = update.graph
        scope = self._post_partial_fit(delta, update)
        return PartialFitReport(
            mode="incremental", n_events=delta.n_events,
            n_new_users=update.n_new_users, n_new_items=update.n_new_items,
            affected_users=None if scope == "all" else update.affected_users(),
            touched_components=tuple(sorted(update.touched_components)),
        )

#: On-disk artifact format version; bump on any incompatible layout change.
ARTIFACT_FORMAT_VERSION = 1

#: class name -> class, for every recommender that can round-trip to disk.
RECOMMENDER_REGISTRY: dict[str, type[Recommender]] = {}

_META_KEY = "meta"
_DATASET_PREFIX = "dataset."
_STATE_PREFIX = "state."
_CSR_MARKER = ".csr."


def register_recommender(cls: type[Recommender]) -> type[Recommender]:
    """Class decorator adding ``cls`` to the artifact registry."""
    if not (isinstance(cls, type) and issubclass(cls, Recommender)):
        raise ArtifactError(
            f"only Recommender subclasses can be registered; got {cls!r}"
        )
    RECOMMENDER_REGISTRY[cls.__name__] = cls
    return cls


def registered_recommenders() -> dict[str, type[Recommender]]:
    """Snapshot of the registry (name -> class), for tests and tooling."""
    return dict(RECOMMENDER_REGISTRY)


# -- array (de)serialization --------------------------------------------------


def _encode_arrays(mapping: dict, prefix: str, payload: dict) -> None:
    """Flatten a ``name -> array | sparse`` dict into npz members."""
    for key, value in mapping.items():
        if _CSR_MARKER in key:
            raise ArtifactError(
                f"state array key {key!r} collides with the sparse marker"
            )
        if sp.issparse(value):
            csr = sp.csr_matrix(value)
            payload[f"{prefix}{key}{_CSR_MARKER}data"] = csr.data
            payload[f"{prefix}{key}{_CSR_MARKER}indices"] = csr.indices
            payload[f"{prefix}{key}{_CSR_MARKER}indptr"] = csr.indptr
            payload[f"{prefix}{key}{_CSR_MARKER}shape"] = np.array(
                csr.shape, dtype=np.int64
            )
        else:
            payload[f"{prefix}{key}"] = np.asarray(value)


def _decode_arrays(archive, prefix: str) -> dict:
    """Inverse of :func:`_encode_arrays` for one prefix of an npz archive."""
    arrays: dict = {}
    sparse_parts: dict[str, dict[str, np.ndarray]] = {}
    for member in archive.files:
        if not member.startswith(prefix):
            continue
        key = member[len(prefix):]
        if _CSR_MARKER in key:
            name, part = key.rsplit(_CSR_MARKER, 1)
            sparse_parts.setdefault(name, {})[part] = archive[member]
        else:
            arrays[key] = archive[member]
    for name, parts in sparse_parts.items():
        try:
            arrays[name] = sp.csr_matrix(
                (parts["data"], parts["indices"], parts["indptr"]),
                shape=tuple(int(s) for s in parts["shape"]),
            )
        except (KeyError, ValueError) as exc:
            raise ArtifactError(
                f"corrupt sparse member {name!r} in artifact: {exc}"
            ) from None
    return arrays


# -- save / load --------------------------------------------------------------


def _npz_path(path: str) -> str:
    # numpy's savez appends ".npz" to extension-less paths; normalise on both
    # sides so save("model") / load("model") round-trip.
    return path if str(path).endswith(".npz") else f"{path}.npz"


def save_artifact(recommender: Recommender, path: str) -> str:
    """Write a fitted recommender as a versioned ``.npz`` artifact.

    Returns the path actually written. The artifact embeds the training
    dataset, so :func:`load_artifact` yields a recommender that can serve
    (including rated-item exclusion) with no other inputs.
    """
    state = recommender.state_dict()
    if type(recommender).__name__ not in RECOMMENDER_REGISTRY:
        raise ArtifactError(
            f"{type(recommender).__name__} is not registered; decorate it "
            "with @register_recommender so the artifact can be loaded back"
        )
    config = state["config"]
    try:
        meta = json.dumps({
            "format_version": ARTIFACT_FORMAT_VERSION,
            "class": state["class"],
            "name": recommender.name,
            "config": config,
        })
    except (TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{state['class']}.get_config() is not JSON-serializable: {exc}"
        ) from None
    payload: dict = {_META_KEY: np.array(meta)}
    _encode_arrays(state["dataset"], _DATASET_PREFIX, payload)
    _encode_arrays(state["arrays"], _STATE_PREFIX, payload)
    path = _npz_path(path)
    np.savez_compressed(path, **payload)
    return path


def peek_artifact(path: str) -> dict:
    """Read an artifact's JSON header without constructing the model.

    Returns ``{"format_version", "class", "name", "config"}`` after the
    same validation :func:`load_artifact` applies (readable file, meta
    header present, supported format version, registered class) — but
    touches only the header member of the archive, so a supervisor can
    verify every shard artifact it may later restart from in O(open)
    instead of O(parse).
    """
    try:
        archive = np.load(_npz_path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from None
    with archive:
        if _META_KEY not in archive.files:
            raise ArtifactError(
                f"{path!r} is not a model artifact (no meta header)"
            )
        try:
            meta = json.loads(str(archive[_META_KEY]))
            version = meta["format_version"]
            class_name = meta["class"]
            meta["config"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ArtifactError(f"corrupt artifact header in {path!r}: {exc}") from None
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"artifact format version {version} != supported "
            f"{ARTIFACT_FORMAT_VERSION}; re-fit and re-save the model"
        )
    if class_name not in RECOMMENDER_REGISTRY:
        raise ArtifactError(
            f"artifact class {class_name!r} is not in the recommender "
            f"registry ({sorted(RECOMMENDER_REGISTRY)})"
        )
    return meta


def load_artifact(path: str) -> Recommender:
    """Reload a fitted recommender saved by :func:`save_artifact`.

    Raises :class:`~repro.exceptions.ArtifactError` on a missing/mismatched
    format version or an unregistered class — a stale or foreign artifact
    must fail loudly, never serve wrong rankings.
    """
    try:
        # Labels and metadata are JSON-encoded strings, so nothing in a valid
        # artifact needs pickling — and a hostile file cannot execute code.
        archive = np.load(_npz_path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from None
    with archive:
        if _META_KEY not in archive.files:
            raise ArtifactError(
                f"{path!r} is not a model artifact (no meta header)"
            )
        try:
            meta = json.loads(str(archive[_META_KEY]))
            version = meta["format_version"]
            class_name = meta["class"]
            config = meta["config"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ArtifactError(f"corrupt artifact header in {path!r}: {exc}") from None
        if version != ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"artifact format version {version} != supported "
                f"{ARTIFACT_FORMAT_VERSION}; re-fit and re-save the model"
            )
        cls = RECOMMENDER_REGISTRY.get(class_name)
        if cls is None:
            raise ArtifactError(
                f"artifact class {class_name!r} is not in the recommender "
                f"registry ({sorted(RECOMMENDER_REGISTRY)})"
            )
        dataset_arrays = _decode_arrays(archive, _DATASET_PREFIX)
        state_arrays = _decode_arrays(archive, _STATE_PREFIX)
    recommender = cls(**config)
    recommender.load_state_dict({
        "class": class_name,
        "config": config,
        "dataset": dataset_arrays,
        "arrays": state_arrays,
    })
    return recommender

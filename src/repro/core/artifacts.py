"""Versioned model artifacts: fit once, serve many times (ROADMAP north star).

A fitted :class:`~repro.core.base.Recommender` is, by contract, a JSON-able
config plus a flat dict of numpy/scipy arrays plus its training dataset
(:meth:`~repro.core.base.Recommender.state_dict`). This module turns that
contract into a single ``.npz`` file — the **artifact** — and back:

* :func:`save_artifact` writes ``meta`` (a JSON header: format version,
  class name, config), the dataset arrays and the per-algorithm state
  arrays; sparse matrices are stored as their CSR triplets. Writes are
  atomic (temp file + ``os.replace`` + directory fsync), so a crash
  mid-save can never leave a torn artifact under the final name;
* :func:`load_artifact` validates the format version, resolves the class
  through the :data:`RECOMMENDER_REGISTRY`, instantiates it from the saved
  config and restores the fitted arrays — no refitting, byte-identical
  scoring state;
* :func:`register_recommender` is the class decorator every concrete
  recommender registers itself with, so artifacts saved by any algorithm in
  the library round-trip without import-order gymnastics.

**Format v3 (current): zero-copy memory mapping.** Members are stored
*uncompressed* — each member of the zip is a verbatim ``np.save`` file at
a known offset — so ``load_artifact(path, mmap=True)`` maps every
dataset/state array straight off the page cache instead of materialising
it: CSR matrices are reconstructed as views over the mapped
``data``/``indices``/``indptr`` triplets, and every map is opened
copy-on-write (``mmap`` mode ``"c"``), so an array a recommender later
mutates is copied page-by-page on first write while untouched pages stay
shared — N worker processes booting from one artifact share one physical
copy. Worker boot drops from O(parse + decompress + copy) to O(open).

**Format v1 (legacy)** is the original ``np.savez_compressed`` layout;
it still loads (eagerly — compressed members cannot be mapped; a
``mmap=True`` request falls back to the eager path) and re-saving the
loaded model migrates it to v3. Any *other* version raises
:class:`~repro.exceptions.ArtifactError` instead of deserializing garbage
into the request path.
"""

from __future__ import annotations

import json
import struct
import zipfile

import numpy as np
import scipy.sparse as sp

from repro.core.base import PartialFitReport, Recommender
from repro.exceptions import ArtifactError
from repro.graph.bipartite import UserItemGraph
from repro.utils.atomic import atomic_savez

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "LEGACY_ARTIFACT_FORMAT_VERSION",
    "RECOMMENDER_REGISTRY",
    "GraphStateMixin",
    "register_recommender",
    "registered_recommenders",
    "save_artifact",
    "load_artifact",
    "peek_artifact",
]


class GraphStateMixin:
    """State hooks for recommenders whose fitted state is ``self.graph``.

    Persists the :class:`~repro.graph.bipartite.UserItemGraph` (adjacency +
    connected-component labels) so a loaded model starts with warm
    connectivity structure, and implements the incremental
    ``partial_fit`` contract for the one-graph-is-the-state baselines:
    the graph absorbs the delta through
    :meth:`~repro.graph.bipartite.UserItemGraph.apply_delta` (union-find
    label maintenance, no ``connected_components`` rerun) and subclasses
    refresh any extra derived state in :meth:`_post_partial_fit`. Mix in
    before :class:`Recommender`.
    """

    def _state_arrays(self) -> dict:
        return self.graph.to_arrays()

    def _load_state_arrays(self, arrays: dict) -> None:
        self.graph = UserItemGraph.from_arrays(self.dataset, arrays)

    def _post_partial_fit(self, delta, update) -> str | None:
        """Refresh non-graph derived state; return ``"all"`` to widen the
        affected-user set to every user (state with global score coupling)."""
        return None

    def _partial_fit(self, delta) -> PartialFitReport:
        update = self.graph.apply_delta(delta)
        self.dataset = delta.dataset
        self.graph = update.graph
        scope = self._post_partial_fit(delta, update)
        return PartialFitReport(
            mode="incremental", n_events=delta.n_events,
            n_new_users=update.n_new_users, n_new_items=update.n_new_items,
            affected_users=None if scope == "all" else update.affected_users(),
            touched_components=tuple(sorted(update.touched_components)),
        )

#: On-disk artifact format version written by :func:`save_artifact`:
#: uncompressed, memory-mappable members. Bump on any incompatible change.
ARTIFACT_FORMAT_VERSION = 3

#: The original compressed layout; still readable (eagerly). Migrate by
#: loading and re-saving — the arrays are identical, only the container
#: changed.
LEGACY_ARTIFACT_FORMAT_VERSION = 1

#: Every format version :func:`load_artifact` accepts.
_SUPPORTED_VERSIONS = (LEGACY_ARTIFACT_FORMAT_VERSION, ARTIFACT_FORMAT_VERSION)

#: class name -> class, for every recommender that can round-trip to disk.
RECOMMENDER_REGISTRY: dict[str, type[Recommender]] = {}

_META_KEY = "meta"
_DATASET_PREFIX = "dataset."
_STATE_PREFIX = "state."
_CSR_MARKER = ".csr."

#: Zip local-file-header layout (PK\x03\x04): the filename/extra lengths
#: sit at bytes 26..30; member data starts right after both fields.
_ZIP_LOCAL_HEADER_SIZE = 30
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"


def register_recommender(cls: type[Recommender]) -> type[Recommender]:
    """Class decorator adding ``cls`` to the artifact registry."""
    if not (isinstance(cls, type) and issubclass(cls, Recommender)):
        raise ArtifactError(
            f"only Recommender subclasses can be registered; got {cls!r}"
        )
    RECOMMENDER_REGISTRY[cls.__name__] = cls
    return cls


def registered_recommenders() -> dict[str, type[Recommender]]:
    """Snapshot of the registry (name -> class), for tests and tooling."""
    return dict(RECOMMENDER_REGISTRY)


# -- array (de)serialization --------------------------------------------------


def _encode_arrays(mapping: dict, prefix: str, payload: dict) -> None:
    """Flatten a ``name -> array | sparse`` dict into npz members."""
    for key, value in mapping.items():
        if _CSR_MARKER in key:
            raise ArtifactError(
                f"state array key {key!r} collides with the sparse marker"
            )
        if sp.issparse(value):
            csr = sp.csr_matrix(value)
            payload[f"{prefix}{key}{_CSR_MARKER}data"] = csr.data
            payload[f"{prefix}{key}{_CSR_MARKER}indices"] = csr.indices
            payload[f"{prefix}{key}{_CSR_MARKER}indptr"] = csr.indptr
            payload[f"{prefix}{key}{_CSR_MARKER}shape"] = np.array(
                csr.shape, dtype=np.int64
            )
        else:
            payload[f"{prefix}{key}"] = np.asarray(value)


def _decode_arrays(members: dict, prefix: str) -> dict:
    """Inverse of :func:`_encode_arrays` for one prefix of a member dict.

    ``members`` maps member name to an already-materialised (or mapped)
    array, so the same decoder serves the eager and the mmap reader. CSR
    matrices are rebuilt from the triplet *views* — scipy's triplet
    constructor wraps arrays of the right dtype without copying, which is
    what keeps a mapped adjacency zero-copy.
    """
    arrays: dict = {}
    sparse_parts: dict[str, dict[str, np.ndarray]] = {}
    for member, value in members.items():
        if not member.startswith(prefix):
            continue
        key = member[len(prefix):]
        if _CSR_MARKER in key:
            name, part = key.rsplit(_CSR_MARKER, 1)
            sparse_parts.setdefault(name, {})[part] = value
        else:
            arrays[key] = value
    for name, parts in sparse_parts.items():
        try:
            arrays[name] = sp.csr_matrix(
                (parts["data"], parts["indices"], parts["indptr"]),
                shape=tuple(int(s) for s in parts["shape"]),
            )
        except (KeyError, ValueError) as exc:
            raise ArtifactError(
                f"corrupt sparse member {name!r} in artifact: {exc}"
            ) from None
    return arrays


# -- zero-copy member mapping -------------------------------------------------


def _map_members(path: str, zf: zipfile.ZipFile) -> dict:
    """Map every array member of an *uncompressed* npz without reading it.

    Each stored (``ZIP_STORED``) member is a verbatim ``.npy`` file inside
    the archive: seek to its data offset, parse the npy header for
    dtype/shape, and hand the payload region to :class:`numpy.memmap` in
    mode ``"c"`` (copy-on-write: a page is copied only when first written,
    untouched pages stay shared with the OS page cache — and with every
    other process that mapped the same artifact). A compressed member —
    possible only in a hand-modified archive — falls back to an eager
    in-memory read, preserving correctness at the cost of that member's
    laziness.
    """
    members: dict = {}
    with open(path, "rb") as raw:
        for info in zf.infolist():
            name = info.filename
            key = name[:-4] if name.endswith(".npy") else name
            if info.compress_type != zipfile.ZIP_STORED:
                with zf.open(info) as member:
                    members[key] = np.lib.format.read_array(
                        member, allow_pickle=False
                    )
                continue
            raw.seek(info.header_offset)
            local = raw.read(_ZIP_LOCAL_HEADER_SIZE)
            if (len(local) != _ZIP_LOCAL_HEADER_SIZE
                    or local[:4] != _ZIP_LOCAL_MAGIC):
                raise ArtifactError(
                    f"corrupt zip member {name!r} in artifact {path!r}"
                )
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            raw.seek(info.header_offset + _ZIP_LOCAL_HEADER_SIZE
                     + name_len + extra_len)
            try:
                version = np.lib.format.read_magic(raw)
                if version == (1, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_1_0(raw)
                elif version == (2, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_2_0(raw)
                else:
                    # Not a ValueError: sails through the rewrap below
                    # with the full context already in the message.
                    raise ArtifactError(
                        f"cannot map member {name!r} of artifact {path!r}: "
                        f"unsupported npy format version {version}"
                    )
            except ValueError as exc:
                raise ArtifactError(
                    f"cannot map member {name!r} of artifact {path!r}: {exc}"
                ) from None
            if dtype.hasobject:
                raise ArtifactError(
                    f"artifact member {name!r} has object dtype; a valid "
                    "artifact never pickles"
                )
            if int(np.prod(shape)) == 0:
                members[key] = np.empty(shape, dtype=dtype)
            else:
                members[key] = np.memmap(
                    path, dtype=dtype, mode="c", offset=raw.tell(),
                    shape=shape, order="F" if fortran else "C",
                )
    return members


# -- save / load --------------------------------------------------------------


def _npz_path(path: str) -> str:
    # numpy's savez appends ".npz" to extension-less paths; normalise on both
    # sides so save("model") / load("model") round-trip.
    return path if str(path).endswith(".npz") else f"{path}.npz"


def _validate_header(archive, path: str) -> dict:
    """Parse + validate an open archive's JSON header; returns the meta dict.

    The single gatekeeper shared by :func:`peek_artifact`,
    :func:`load_artifact` and the v3 mmap reader: meta member present and
    JSON-decodable, format version supported, class registered. Raises
    :class:`~repro.exceptions.ArtifactError` on every failure mode — a
    stale or foreign artifact must fail loudly, never serve wrong rankings.
    """
    if _META_KEY not in archive.files:
        raise ArtifactError(
            f"{path!r} is not a model artifact (no meta header)"
        )
    try:
        meta = json.loads(str(archive[_META_KEY]))
        version = meta["format_version"]
        class_name = meta["class"]
        meta["config"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ArtifactError(
            f"corrupt artifact header in {path!r}: {exc}"
        ) from None
    if version not in _SUPPORTED_VERSIONS:
        raise ArtifactError(
            f"artifact format version {version} != supported "
            f"{ARTIFACT_FORMAT_VERSION}; re-fit and re-save the model"
        )
    if class_name not in RECOMMENDER_REGISTRY:
        raise ArtifactError(
            f"artifact class {class_name!r} is not in the recommender "
            f"registry ({sorted(RECOMMENDER_REGISTRY)})"
        )
    return meta


def save_artifact(recommender: Recommender, path: str, *,
                  version: int = ARTIFACT_FORMAT_VERSION,
                  extra_meta: dict | None = None) -> str:
    """Write a fitted recommender as a versioned ``.npz`` artifact.

    Returns the path actually written. The artifact embeds the training
    dataset, so :func:`load_artifact` yields a recommender that can serve
    (including rated-item exclusion) with no other inputs. The write is
    atomic: a crash mid-save leaves the previous file (or nothing), never
    a torn archive.

    Parameters
    ----------
    version:
        :data:`ARTIFACT_FORMAT_VERSION` (default; uncompressed,
        memory-mappable) or :data:`LEGACY_ARTIFACT_FORMAT_VERSION`
        (compressed — smaller on disk, cannot be mapped; kept for
        migration tests and size-sensitive archival).
    extra_meta:
        Optional JSON-able dict stored under ``"extra"`` in the header,
        readable via :func:`peek_artifact` in O(open). The process fleet
        folds its WAL checkpoint seqno in here so replay can skip batches
        a checkpoint already contains.
    """
    state = recommender.state_dict()
    if type(recommender).__name__ not in RECOMMENDER_REGISTRY:
        raise ArtifactError(
            f"{type(recommender).__name__} is not registered; decorate it "
            "with @register_recommender so the artifact can be loaded back"
        )
    if version not in _SUPPORTED_VERSIONS:
        raise ArtifactError(
            f"cannot write artifact format version {version}; supported: "
            f"{sorted(_SUPPORTED_VERSIONS)}"
        )
    config = state["config"]
    header = {
        "format_version": version,
        "class": state["class"],
        "name": recommender.name,
        "config": config,
    }
    if extra_meta is not None:
        header["extra"] = dict(extra_meta)
    try:
        meta = json.dumps(header)
    except (TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{state['class']}.get_config() is not JSON-serializable (or "
            f"extra_meta is not): {exc}"
        ) from None
    payload: dict = {_META_KEY: np.array(meta)}
    _encode_arrays(state["dataset"], _DATASET_PREFIX, payload)
    _encode_arrays(state["arrays"], _STATE_PREFIX, payload)
    path = _npz_path(path)
    atomic_savez(path, payload,
                 compressed=(version == LEGACY_ARTIFACT_FORMAT_VERSION))
    return path


def peek_artifact(path: str) -> dict:
    """Read an artifact's JSON header without constructing the model.

    Returns ``{"format_version", "class", "name", "config"}`` (plus
    ``"extra"`` when the writer attached one) after the same validation
    :func:`load_artifact` applies (readable file, meta header present,
    supported format version, registered class) — but touches only the
    header member of the archive, so a supervisor can verify every shard
    artifact it may later restart from in O(open) instead of O(parse).
    """
    try:
        archive = np.load(_npz_path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from None
    with archive:
        return _validate_header(archive, path)


def load_artifact(path: str, mmap: bool = False) -> Recommender:
    """Reload a fitted recommender saved by :func:`save_artifact`.

    With ``mmap=True`` (and a v3 artifact) every array member is
    memory-mapped copy-on-write instead of materialised: load cost is
    O(open), the arrays page in lazily, and concurrent processes serving
    the same artifact share the physical pages. The loaded model's
    rankings are bit-identical to an eager load (gated in CI for every
    registered recommender); an array the recommender mutates is copied
    page-wise on first write, leaving the file untouched. Legacy (v1,
    compressed) artifacts cannot be mapped and fall back to the eager
    path — re-save to migrate.

    Raises :class:`~repro.exceptions.ArtifactError` on a missing or
    unsupported format version or an unregistered class — a stale or
    foreign artifact must fail loudly, never serve wrong rankings.
    """
    npz_path = _npz_path(path)
    try:
        # Labels and metadata are JSON-encoded strings, so nothing in a valid
        # artifact needs pickling — and a hostile file cannot execute code.
        archive = np.load(npz_path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from None
    with archive:
        meta = _validate_header(archive, path)
        mapped = mmap and meta["format_version"] >= ARTIFACT_FORMAT_VERSION
        if mapped:
            members = _map_members(npz_path, archive.zip)
        else:
            members = {name: archive[name] for name in archive.files
                       if name != _META_KEY}
    class_name = meta["class"]
    config = meta["config"]
    dataset_arrays = _decode_arrays(members, _DATASET_PREFIX)
    state_arrays = _decode_arrays(members, _STATE_PREFIX)
    recommender = RECOMMENDER_REGISTRY[class_name](**config)
    recommender.load_state_dict({
        "class": class_name,
        "config": config,
        "dataset": dataset_arrays,
        "arrays": state_arrays,
        # A mapped load trusts its own save (validated then): dataset
        # reconstruction skips the O(nnz) canonicalisation scans that
        # would otherwise page the whole mapping in at boot.
        "trusted": mapped,
    })
    return recommender

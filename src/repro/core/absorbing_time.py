"""AT — the Absorbing Time recommender (paper §4.1, Algorithm 1).

The item-based refinement of Hitting Time: the absorbing set is the query
user's entire rated-item set ``S_q``, and every candidate item ``i`` is
ranked by ``AT(S_q | i)`` — the expected steps a walker starting at ``i``
needs before first touching *any* item the user already liked (Definition 3,
Eq. 6). Items use far more rating information than single users (§4
motivation), which the paper shows improves both accuracy and diversity.

Scalability follows Algorithm 1 exactly: a BFS subgraph capped at µ item
nodes is grown around ``S_q`` and the first-step recurrence is iterated a
fixed τ times (τ = 15 suffices for a stable top-k; see the ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import register_recommender
from repro.core.graph_base import RandomWalkRecommender

__all__ = ["AbsorbingTimeRecommender"]


@register_recommender
class AbsorbingTimeRecommender(RandomWalkRecommender):
    """Item-based Absorbing Time ranking (the paper's AT variant).

    Parameters
    ----------
    method:
        ``"truncated"`` (Algorithm 1, default) or ``"exact"``.
    n_iterations:
        τ, the truncation depth (paper default 15).
    subgraph_size:
        µ, the BFS item budget (paper default 6000); ``None`` = global graph.
    dtype, chunk_size:
        Serving precision policy and multi-RHS chunk budget, see
        :class:`RandomWalkRecommender`.
    """

    name = "AT"

    def __init__(self, method: str = "truncated", n_iterations: int = 15,
                 subgraph_size: int | None = 6000, dtype: str = "float64",
                 chunk_size: int = 1024):
        super().__init__(method=method, n_iterations=n_iterations,
                         subgraph_size=subgraph_size, dtype=dtype,
                         chunk_size=chunk_size)

    def _absorbing_nodes(self, user: int) -> np.ndarray:
        items = self.dataset.items_of_user(user)
        return self.graph.item_nodes(items)

    def absorbing_times(self, user: int) -> np.ndarray:
        """Raw ``AT(S_q | i)`` per item (``+inf`` where unreachable / outside
        the subgraph, ``0`` on the user's own items)."""
        scores = self.score_items(user)
        return np.where(np.isfinite(scores), -scores, np.inf)

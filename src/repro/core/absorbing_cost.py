"""AC — the entropy-biased Absorbing Cost recommenders (paper §4.2).

Absorbing Time treats every rating edge identically; Absorbing Cost weights
the walk by *who* is on the other end of the edge. Jumping from an item to a
taste-specific user (low entropy) is cheap — that user's rating carries
sharp information — while jumping to a generalist (high entropy) is
expensive. The recursion is Eq. 9::

    AC(S|i) = Σ_j p_ij · E(j) + Σ_j p_ij · AC(S|j)   (item nodes)
    AC(S|i) = C          + Σ_j p_ij · AC(S|j)        (user nodes)

Two entropy estimators give the paper's two variants:

* **AC1** — item-based user entropy (Eq. 10);
* **AC2** — topic-based user entropy (Eq. 11) from the rating-data LDA,
  the best performer throughout the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import register_recommender
from repro.core.base import Recommender
from repro.core.costs import (
    CostModel,
    EntropyCostModel,
    cost_model_config,
    cost_model_from_config,
)
from repro.core.entropy import item_entropy, topic_entropy
from repro.core.graph_base import RandomWalkRecommender
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.topics.model import LatentTopicModel
from repro.utils.validation import check_in_options, check_positive_int

__all__ = ["AbsorbingCostRecommender"]


@register_recommender
class AbsorbingCostRecommender(RandomWalkRecommender):
    """Entropy-biased Absorbing Cost ranking (the paper's AC1/AC2 variants).

    Parameters
    ----------
    entropy:
        ``"item"`` (AC1, Eq. 10), ``"topic"`` (AC2, Eq. 11), or a
        precomputed array of per-user entropies. The string
        ``"precomputed"`` declares array-sourced entropies without
        supplying them yet — valid only for instances restored through
        ``load_state_dict`` (the artifact loader uses it); calling
        ``fit`` on such an instance raises :class:`ConfigError`.
    cost_model:
        The transition-cost model; default is the paper's
        :class:`~repro.core.costs.EntropyCostModel` with
        ``C = mean user entropy``.
    n_topics, lda_method, lda_kwargs, topic_model:
        Topic-entropy options (AC2 only): K, the LDA engine (``"cvb0"``
        default / ``"gibbs"`` faithful), extra engine arguments, or a
        pre-trained :class:`LatentTopicModel` to reuse across recommenders.
    method, n_iterations, subgraph_size:
        Solver and µ-subgraph options, as in
        :class:`~repro.core.graph_base.RandomWalkRecommender`.
    seed:
        Seed for LDA training (topic entropy only).

    Use the :meth:`item_based` / :meth:`topic_based` factories for the
    paper's named variants.
    """

    #: Default display name; __init__ refines it to AC1/AC2 per variant.
    name = "AC"

    def __init__(self, entropy="topic", cost_model: CostModel | None = None,
                 n_topics: int = 10, lda_method: str = "cvb0",
                 topic_model: LatentTopicModel | None = None,
                 method: str = "truncated", n_iterations: int = 15,
                 subgraph_size: int | None = 6000, seed=0,
                 lda_kwargs: dict | None = None, dtype: str = "float64",
                 chunk_size: int = 1024):
        super().__init__(method=method, n_iterations=n_iterations,
                         subgraph_size=subgraph_size, dtype=dtype,
                         chunk_size=chunk_size)
        if isinstance(entropy, str):
            check_in_options(entropy, "entropy", ("item", "topic", "precomputed"))
            self._entropy_array = None
            self.entropy_source = entropy
        else:
            self._entropy_array = np.asarray(entropy, dtype=np.float64).ravel()
            if np.any(self._entropy_array < 0) or not np.all(np.isfinite(self._entropy_array)):
                raise ConfigError("precomputed entropies must be finite and non-negative")
            self.entropy_source = "precomputed"
        if isinstance(cost_model, dict):
            cost_model = cost_model_from_config(cost_model)
        self.cost_model_instance = cost_model if cost_model is not None else EntropyCostModel()
        if not isinstance(self.cost_model_instance, CostModel):
            raise ConfigError("cost_model must be a CostModel instance")
        self.n_topics = check_positive_int(n_topics, "n_topics")
        self.lda_method = check_in_options(lda_method, "lda_method", ("cvb0", "gibbs"))
        self.topic_model = topic_model
        self.seed = seed
        self.lda_kwargs = dict(lda_kwargs or {})
        self.name = {"item": "AC1", "topic": "AC2", "precomputed": "AC"}[self.entropy_source]
        self._fitted_entropies: np.ndarray | None = None

    # -- factories (the paper's named variants) -----------------------------

    @classmethod
    def item_based(cls, **kwargs) -> "AbsorbingCostRecommender":
        """AC1: Absorbing Cost with item-based user entropy (Eq. 10)."""
        kwargs.setdefault("entropy", "item")
        return cls(**kwargs)

    @classmethod
    def topic_based(cls, **kwargs) -> "AbsorbingCostRecommender":
        """AC2: Absorbing Cost with topic-based user entropy (Eq. 11)."""
        kwargs.setdefault("entropy", "topic")
        return cls(**kwargs)

    # -- RandomWalkRecommender hooks ----------------------------------------

    def _post_fit(self, dataset: RatingDataset) -> None:
        if self.entropy_source == "item":
            self._fitted_entropies = item_entropy(dataset)
        elif self.entropy_source == "topic":
            self._fitted_entropies = topic_entropy(
                dataset, n_topics=self.n_topics, model=self.topic_model,
                method=self.lda_method, seed=self.seed, **self.lda_kwargs
            )
        else:
            if self._entropy_array is None:
                raise ConfigError(
                    "entropy='precomputed' carries no entropy array; pass the "
                    "array itself to fit, or restore via load_state_dict"
                )
            if self._entropy_array.shape[0] != dataset.n_users:
                raise ConfigError(
                    f"precomputed entropies length {self._entropy_array.shape[0]} "
                    f"!= n_users {dataset.n_users}"
                )
            self._fitted_entropies = self._entropy_array

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> dict:
        # topic_model is deliberately absent: the artifact captures the
        # *fitted* entropies, not the LDA that produced them.
        config = super().get_config()
        config.update({
            "entropy": self.entropy_source,
            "cost_model": cost_model_config(self.cost_model_instance),
            "n_topics": self.n_topics,
            "lda_method": self.lda_method,
            "seed": self.seed,
            "lda_kwargs": self.lda_kwargs,
        })
        return config

    def _state_arrays(self) -> dict:
        arrays = super()._state_arrays()
        arrays["user_entropies"] = self._fitted_entropies
        return arrays

    def _load_state_arrays(self, arrays: dict) -> None:
        entropies = np.asarray(arrays.pop("user_entropies"), dtype=np.float64)
        super()._load_state_arrays(arrays)
        self._fitted_entropies = entropies
        if self.entropy_source == "precomputed":
            self._entropy_array = entropies

    # -- incremental updates --------------------------------------------------

    def _partial_fit(self, delta):
        if self.entropy_source == "topic":
            # Topic entropies come from an LDA over the *whole* rating
            # matrix — any event can move every user's mixture, so parity
            # demands the full refit fallback (same seed, merged dataset).
            return Recommender._partial_fit(self, delta)
        if self.entropy_source == "precomputed" and delta.n_new_users:
            # Checked before any state is touched: a failed update must
            # leave the fitted recommender exactly as it was.
            raise ConfigError(
                "precomputed entropies cannot cover new users; supply a "
                "longer entropy array and refit"
            )
        return super()._partial_fit(delta)

    def _post_partial_fit(self, delta, update) -> None:
        if self.entropy_source == "precomputed":
            return  # fixed array, no touched-user refresh to do
        # Item-based entropy (Eq. 10) depends on each user's own ratings
        # only: append zeros for new users, then recompute exactly the
        # users the delta touched — bit-identical to the full Eq. 10 pass.
        entropies = np.zeros(self.dataset.n_users)
        entropies[:self._fitted_entropies.shape[0]] = self._fitted_entropies
        touched_users = delta.touched_users()
        entropies[touched_users] = item_entropy(self.dataset, users=touched_users)
        self._fitted_entropies = entropies

    def _absorbing_nodes(self, user: int) -> np.ndarray:
        items = self.dataset.items_of_user(user)
        return self.graph.item_nodes(items)

    def _cost_model(self) -> CostModel:
        return self.cost_model_instance

    def _user_entropies(self) -> np.ndarray:
        return self._fitted_entropies

    def user_entropies(self) -> np.ndarray:
        """The fitted per-user entropies (requires :meth:`fit`)."""
        self._require_fitted()
        return self._fitted_entropies.copy()

    def absorbing_costs(self, user: int) -> np.ndarray:
        """Raw ``AC(S_q | i)`` per item (``+inf`` where unreachable)."""
        scores = self.score_items(user)
        return np.where(np.isfinite(scores), -scores, np.inf)

"""Explanations for graph recommendations: the path evidence behind a pick.

The random-walk scores of HT/AT/AC are expectations over paths (Eq. 7
interprets Absorbing Time as probability-weighted path length), so every
recommendation has a concrete, human-readable justification: the short
walks connecting the recommended item to the user's rated items, and the
raters who carry them.

:func:`explain_recommendation` extracts that evidence — the highest-
probability length-3 paths ``item → rater → rated-item`` — which is exactly
the "because rater V, who also loved X you rated, loved this" explanation
production recommenders show. Items further than 3 hops get the connecting
raters' aggregate statistics instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError, UnknownItemError
from repro.graph.bipartite import UserItemGraph
from repro.utils.validation import check_positive_int

__all__ = ["PathEvidence", "Explanation", "explain_recommendation"]


@dataclass(frozen=True)
class PathEvidence:
    """One ``candidate → rater → anchor`` path.

    Attributes
    ----------
    rater:
        The user index connecting the candidate to the anchor.
    anchor:
        An item the query user rated.
    candidate_rating, anchor_rating:
        The rater's star values on the two items.
    weight:
        The walk probability of this path from the candidate
        (``p(candidate→rater) · p(rater→anchor)``).
    """

    rater: int
    anchor: int
    candidate_rating: float
    anchor_rating: float
    weight: float


@dataclass(frozen=True)
class Explanation:
    """Why an item was recommended to a user.

    Attributes
    ----------
    item:
        The recommended item index.
    paths:
        Strongest two-hop paths into the user's rated set, best first.
    n_raters:
        How many users rated the candidate at all (its popularity).
    connected:
        False when no two-hop path exists (the evidence is longer-range).
    """

    item: int
    paths: tuple
    n_raters: int
    connected: bool

    def describe(self, dataset: RatingDataset) -> str:
        """Render the explanation as human-readable lines."""
        label = dataset.item_labels[self.item]
        lines = [f"{label!s} — rated by {self.n_raters} user(s):"]
        if not self.connected:
            lines.append(
                "  no direct co-rater overlap with your items; recommended "
                "via longer walks through the graph"
            )
            return "\n".join(lines)
        for path in self.paths:
            rater = dataset.user_labels[path.rater]
            anchor = dataset.item_labels[path.anchor]
            lines.append(
                f"  {rater!s} gave it {path.candidate_rating:.0f}★ and gave "
                f"your {anchor!s} {path.anchor_rating:.0f}★ "
                f"(path weight {path.weight:.3f})"
            )
        return "\n".join(lines)


def explain_recommendation(dataset: RatingDataset, user: int, item: int,
                           max_paths: int = 3) -> Explanation:
    """Collect the strongest two-hop path evidence for (user, item).

    Parameters
    ----------
    dataset:
        The ratings the recommender was fitted on.
    user:
        The query user index.
    item:
        The recommended item index (must not be rated by ``user`` —
        explaining an already-rated item is a caller bug).
    max_paths:
        How many paths to keep (best by walk probability).
    """
    max_paths = check_positive_int(max_paths, "max_paths")
    dataset._check_user(user)
    dataset._check_item(item)
    anchors = set(dataset.items_of_user(user).tolist())
    if item in anchors:
        raise ConfigError(
            f"item {item} is already rated by user {user}; nothing to explain"
        )

    graph = UserItemGraph(dataset)
    raters = dataset.users_of_item(item)
    item_degree = graph.degrees[graph.item_node(item)]
    paths: list[PathEvidence] = []
    for rater in raters:
        rater = int(rater)
        rater_degree = graph.degrees[graph.user_node(rater)]
        candidate_rating = dataset.rating(rater, item)
        shared = anchors.intersection(dataset.items_of_user(rater).tolist())
        for anchor in shared:
            anchor_rating = dataset.rating(rater, anchor)
            weight = (candidate_rating / item_degree) * (anchor_rating / rater_degree)
            paths.append(PathEvidence(
                rater=rater,
                anchor=int(anchor),
                candidate_rating=candidate_rating,
                anchor_rating=anchor_rating,
                weight=float(weight),
            ))
    paths.sort(key=lambda p: (-p.weight, p.rater, p.anchor))
    return Explanation(
        item=int(item),
        paths=tuple(paths[:max_paths]),
        n_raters=int(raters.size),
        connected=bool(paths),
    )

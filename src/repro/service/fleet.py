"""Fault-tolerant multi-process shard fleet: supervisor, WAL, degraded serving.

The in-process :class:`~repro.service.sharding.ShardedEngine` shares one
fate with its shards: a segfault, a poisoned update or a wedged solve in
any shard takes the whole tier down. This module moves each shard into its
**own worker process** and puts a supervisor in front, so the failure
domain shrinks from "the fleet" to "one shard":

* :class:`ProcessShardFleet` runs one worker per shard over a
  ``multiprocessing`` pipe (stdlib only — no new dependencies). Each
  worker boots its :class:`~repro.service.ServingEngine` from the shard's
  saved artifact (:func:`~repro.core.artifacts.load_artifact`, no
  refitting) and answers a small RPC vocabulary: serve, validate, apply,
  save, stats, ping.
* **Supervision.** Every request runs under a per-request timeout with a
  fast-path crash detector (the supervisor polls the pipe in 50 ms slices
  and checks ``Process.is_alive()``, so a SIGKILL'd worker is noticed in
  milliseconds, not after the full timeout). A dead or wedged worker is
  restarted from its artifact with bounded exponential backoff; read-only
  requests are retried on the replacement, and when the retry budget runs
  out the shard is marked *down*.
* **Write-ahead log.** Update batches are appended (JSON line, flushed
  and ``fsync``'d) to a per-shard WAL *after* worker-side validation and
  *before* dispatch, so the WAL only ever holds batches that are
  guaranteed to replay cleanly. A worker killed mid-update is restarted
  and the WAL replayed in order — the engine's model version and ranking
  state come back **bit-identical** to a never-crashed worker, whether
  the crash hit before or after the mutation (apply RPCs are never
  re-sent over the wire; the replay *is* the retry, so a batch can never
  double-apply). :meth:`save` checkpoints every shard and then truncates
  the WALs — on the next boot there is nothing to replay.
* **Degraded serving.** A shard that exhausts its restart budget stops
  the fleet for *its* users only: ``recommend`` / ``serve_cohort`` raise
  :class:`~repro.exceptions.ShardUnavailableError`, ``recommend_many``
  returns that error object at the down positions, and every healthy
  shard keeps answering. :meth:`health` reports per-shard state (surfaced
  as HTTP 503 by :class:`~repro.service.server.HttpFrontend`) and
  :meth:`restart_shard` brings a shard back — replaying any update
  batches that were stranded in its WAL.

Durability boundary: the WAL makes *worker* crashes lossless, and the
checkpoint **seqno** makes supervisor crashes lossless too. Every WAL
record carries a per-shard monotone sequence number; :meth:`save` folds
each shard's last *applied* seqno into the checkpoint artifact's header
(``extra.wal_seq``, readable in O(open) via ``peek_artifact``), so if the
supervisor dies between a shard's checkpoint and the WAL truncation that
follows it, the next boot *skips* the batches the checkpoint already
contains instead of double-replaying them — counted as
``skipped_replay_batches`` in ``health()``/``stats()``/reports. A torn
final WAL line (supervisor killed mid-append) is safely dropped —
appends are fsync'd before dispatch, so a torn line was never applied
anywhere — and the file is truncated back to the last whole record, so
later appends can never fuse with the fragment into an unparseable line.

Scripted failures for tests live in :mod:`repro.service.faults`; the
fleet wires a :class:`~repro.service.faults.FaultSpec` into the target
shard's first worker incarnation (every incarnation when ``persistent``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from collections import OrderedDict

import numpy as np

import repro.exceptions as _exceptions
from repro.core.artifacts import peek_artifact
from repro.core.base import Recommendation
from repro.exceptions import (
    ArtifactError,
    ConfigError,
    ReproError,
    ShardUnavailableError,
    UnknownItemError,
    UnknownUserError,
)
from repro.service.faults import FaultSpec
from repro.service.serving import _label_array, rows_from_ranked_arrays
from repro.service.sharding import (
    EDGE_CUT_HINT,
    FleetReport,
    FleetUpdateReport,
    ShardPlan,
    _PLAN_FILENAME,
    _shard_artifact_name,
    validate_shard_events,
)
from repro.utils.timer import Timer
from repro.utils.validation import (
    as_exclude_array,
    as_index_array,
    check_non_negative_int,
    check_positive_int,
    is_index,
)

__all__ = ["ProcessShardFleet"]

#: RPC methods that count as *serving* requests for FaultSpec triggers
#: (pings and supervision traffic must never perturb a scripted failure).
_SERVING_METHODS = frozenset({"recommend", "recommend_many", "serve_cohort"})

#: Sentinel returned by the non-retryable request path when the worker
#: crashed mid-apply and the batch was recovered through WAL replay — the
#: caller reads the replayed response off the worker handle instead.
_REPLAYED = object()


class _WorkerCrashed(Exception):
    """Internal: the worker process died under a request (exit, EOF, pipe)."""


class _WorkerHung(Exception):
    """Internal: the worker stayed alive but missed the request deadline."""


# -- error marshalling ---------------------------------------------------------
#
# Exceptions cross the pipe as plain dicts, not pickled exception objects:
# default pickling re-calls ``cls(formatted_message)``, which double-wraps
# the constructor-formatting errors (``UnknownUserError("unknown user: 'x'")``
# would render "unknown user: \"unknown user: 'x'\""), and a worker raising
# something unpicklable must not take the supervisor down with it.


def _marshal_error(exc: BaseException) -> dict:
    payload = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, UnknownUserError):
        payload["user"] = exc.user
    if isinstance(exc, UnknownItemError):
        payload["item"] = exc.item
    return payload


def _unmarshal_error(payload: dict) -> Exception:
    name = payload.get("type", "")
    message = payload.get("message", "")
    if name == "UnknownUserError":
        return UnknownUserError(payload.get("user"))
    if name == "UnknownItemError":
        return UnknownItemError(payload.get("item"))
    cls = getattr(_exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:
            return ReproError(message)
    return RuntimeError(f"shard worker failed ({name}): {message}")


# -- worker process ------------------------------------------------------------


def _worker_main(conn, shard: int, artifact_path: str,
                 engine_kwargs: dict | None, fault: FaultSpec | None) -> None:
    """One shard's process: boot the engine, answer RPCs until shutdown.

    Protocol: the worker first sends a *hello* (``("ok", {...})`` with the
    dataset shape and full label lists — the supervisor builds its routing
    tables from it), then answers each received ``(method, payload)`` with
    ``("ok", result)`` or ``("error", marshalled)``. Errors never kill the
    loop; only a closed pipe, a shutdown RPC or an injected fault does.
    """
    import repro  # noqa: F401  (populates RECOMMENDER_REGISTRY under spawn)
    from repro.service.engine import ServingEngine

    # The supervisor owns lifecycle; a Ctrl-C on the terminal must reach
    # the parent's drain logic, not SIGINT every worker mid-request.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        engine = ServingEngine.from_artifact(artifact_path,
                                             **(engine_kwargs or {}))
    except BaseException as exc:  # boot failure is the hello
        try:
            conn.send(("error", _marshal_error(exc)))
        except (BrokenPipeError, OSError):
            pass
        conn.close()
        return
    dataset = engine.dataset
    conn.send(("ok", {
        "type": "hello",
        "pid": os.getpid(),
        "n_users": int(dataset.n_users),
        "n_items": int(dataset.n_items),
        "n_ratings": int(dataset.n_ratings),
        "user_labels": list(dataset.user_labels),
        "item_labels": list(dataset.item_labels),
        "model_version": engine.model_version,
    }))
    served = 0
    while True:
        try:
            method, payload = conn.recv()
        except (EOFError, OSError):
            break
        if method == "shutdown":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        if method in _SERVING_METHODS:
            served += 1
            if fault is not None:
                if fault.kill_at_request == served:
                    os.kill(os.getpid(), signal.SIGKILL)
                if fault.hang_at_request == served:
                    time.sleep(fault.hang_seconds)
        try:
            result = _worker_handle(engine, method, payload, fault)
            conn.send(("ok", result))
        except BaseException as exc:
            try:
                conn.send(("error", _marshal_error(exc)))
            except (BrokenPipeError, OSError):
                break
    conn.close()


def _worker_handle(engine, method: str, payload: dict,
                   fault: FaultSpec | None):
    """Dispatch one RPC against the worker's engine."""
    if method == "ping":
        return {"pid": os.getpid(), "model_version": engine.model_version}
    if method == "recommend":
        ranked = engine.recommend(
            payload["user"], k=payload["k"],
            exclude_rated=payload["exclude_rated"],
            exclude=payload["exclude"],
        )
        return [(int(r.item), r.label, float(r.score)) for r in ranked]
    if method == "recommend_many":
        ranked_lists = engine.recommend_many(
            payload["users"], k=payload["k"],
            exclude_rated=payload["exclude_rated"],
            excludes=payload["excludes"],
        )
        return [[(int(r.item), r.label, float(r.score)) for r in ranked]
                for ranked in ranked_lists]
    if method == "serve_cohort":
        report, _, items, scores = engine._serve_cohort_arrays(
            payload["users"], k=payload["k"],
            batch_size=payload["batch_size"],
            exclude_rated=payload["exclude_rated"],
        )
        return {"report": report, "items": items, "scores": scores}
    if method == "validate_events":
        validate_shard_events(
            engine.dataset, payload["events"],
            payload["duplicates"] or engine.update_duplicates,
        )
        return None
    if method == "apply_updates":
        if fault is not None and fault.crash_mid_update == "before-apply":
            os.kill(os.getpid(), signal.SIGKILL)
        report = engine.apply_updates(payload["events"],
                                      duplicates=payload["duplicates"])
        if fault is not None and fault.crash_mid_update == "after-apply":
            # The hard recovery case: state mutated, ack never sent.
            os.kill(os.getpid(), signal.SIGKILL)
        dataset = engine.dataset
        return {
            "report": report,
            "new_user_labels": list(dataset.user_labels[payload["known_users"]:]),
            "new_item_labels": list(dataset.item_labels[payload["known_items"]:]),
            "model_version": engine.model_version,
            "n_users": int(dataset.n_users),
            "n_items": int(dataset.n_items),
            "n_ratings": int(dataset.n_ratings),
        }
    if method == "save":
        from repro.core.artifacts import save_artifact

        # The supervisor folds the shard's last applied WAL seqno into the
        # checkpoint header; a future boot skips replaying batches the
        # checkpoint already contains (supervisor-death window, §13).
        return save_artifact(engine.recommender, payload["path"],
                             extra_meta={"wal_seq": payload["wal_seq"]})
    if method == "stats":
        return engine.stats()
    if method == "clear_caches":
        engine.clear_caches()
        return None
    raise ConfigError(f"unknown fleet worker method {method!r}")


# -- supervisor ----------------------------------------------------------------


class _ShardWorker:
    """Supervisor-side handle for one shard's worker process.

    ``user_labels`` / ``item_labels`` mirror the worker's dataset label
    lists (hello + every absorbed apply response); the mirror is what
    keeps WAL replay idempotent at the routing layer — labels a replayed
    batch re-announces land below the fleet's known count and register
    nothing twice.
    """

    def __init__(self, shard: int, artifact_path: str,
                 checkpoint_seq: int = 0):
        self.shard = shard
        self.artifact_path = artifact_path
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.state = "down"  # guarded-by: worker.lock
        self.down_reason = ""
        self.incarnation = 0
        self.restarts = 0
        self.replayed_batches = 0
        self.request_failures = 0
        self.model_version = 0  # guarded-by: worker.lock
        self.n_users = 0
        self.n_items = 0
        self.n_ratings = 0
        self.user_labels: list = []  # guarded-by: worker.lock
        self.item_labels: list = []  # guarded-by: worker.lock
        self.last_replay_result: dict | None = None  # guarded-by: worker.lock
        # WAL sequencing: ``checkpoint_seq`` is the last seqno the shard's
        # boot artifact contains (from its header; 0 for a fresh fit),
        # ``applied_seq`` the last seqno applied to the live worker,
        # ``next_seq`` the number the next appended batch takes. Replay
        # skips records with seq <= checkpoint_seq.
        self.checkpoint_seq = checkpoint_seq  # guarded-by: worker.lock
        self.applied_seq = checkpoint_seq  # guarded-by: worker.lock
        self.next_seq = checkpoint_seq + 1  # guarded-by: worker.lock
        self.skipped_replay_batches = 0
        # Most recent successful restart: wall seconds and a monotonic
        # stamp (for "latest across the fleet" in health()).
        self.last_restart_s: float | None = None
        self.last_restart_at = 0.0


class ProcessShardFleet:
    """A supervised multi-process shard fleet with WAL-backed updates.

    The serving surface mirrors :class:`~repro.service.sharding.ShardedEngine`
    — ``recommend`` / ``recommend_many`` / ``serve_cohort`` / ``warm`` /
    ``apply_updates`` / ``save`` / ``stats`` / ``health`` — with identical
    routing semantics (component union-find or halo replica routing,
    global index space, fleet-level LRU row cache), but each shard lives
    in its own worker process restarted on failure (module docstring).

    Parameters
    ----------
    plan:
        The fleet's :class:`~repro.service.sharding.ShardPlan`.
    artifact_paths:
        One saved model artifact per shard — the recovery point every
        restart boots from. Validated up front via
        :func:`~repro.core.artifacts.peek_artifact` (O(open) per shard);
        a supervisor that cannot restart a shard should refuse to start.
    wal_dir:
        Directory for the per-shard write-ahead logs
        (``shard-NNN.wal.jsonl``); created if missing. Leftover logs from
        a previous run are replayed at boot.
    request_timeout_s, boot_timeout_s:
        Per-request and per-boot deadlines. A worker that misses a
        request deadline while alive is *hung*: it is killed and
        restarted (a wedged solve never blocks the tier forever).
    max_restart_attempts:
        Spawn attempts per restart, with exponential backoff
        ``min(backoff_max_s, backoff_base_s * 2**attempt)`` between them;
        exhausted means the shard is marked down.
    max_request_retries:
        How many times a *read-only* request is re-sent to a restarted
        replacement before the shard is marked down. Apply requests are
        never re-sent: the WAL replay performed by the restart **is** the
        retry (re-sending could double-apply).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default,
        fork on Linux — workers then skip re-importing the package).
    faults:
        ``{shard: FaultSpec}`` scripted failures for tests
        (:mod:`repro.service.faults`).
    result_cache_size:
        Fleet-level LRU row cache bound, exactly as in ``ShardedEngine``
        (``0`` disables it).
    engine_kwargs:
        Forwarded to every worker's
        :meth:`~repro.service.engine.ServingEngine.from_artifact`.
    """

    def __init__(self, plan: ShardPlan, artifact_paths, wal_dir: str, *,
                 request_timeout_s: float = 30.0,
                 boot_timeout_s: float = 120.0,
                 max_restart_attempts: int = 3,
                 max_request_retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_max_s: float = 2.0,
                 start_method: str | None = None,
                 faults: dict | None = None,
                 result_cache_size: int = 65536,
                 engine_kwargs: dict | None = None):
        if not isinstance(plan, ShardPlan):
            raise ConfigError(
                f"ProcessShardFleet requires a ShardPlan; "
                f"got {type(plan).__name__}"
            )
        artifact_paths = [str(p) for p in artifact_paths]
        if len(artifact_paths) != plan.n_shards:
            raise ConfigError(
                f"plan has {plan.n_shards} shards; "
                f"got {len(artifact_paths)} artifact paths"
            )
        for name, value in (("request_timeout_s", request_timeout_s),
                            ("boot_timeout_s", boot_timeout_s),
                            ("backoff_base_s", backoff_base_s),
                            ("backoff_max_s", backoff_max_s)):
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value <= 0:
                raise ConfigError(f"{name} must be a positive number; "
                                  f"got {value!r}")
        self.plan = plan
        self.request_timeout_s = float(request_timeout_s)
        self.boot_timeout_s = float(boot_timeout_s)
        self.max_restart_attempts = check_positive_int(
            max_restart_attempts, "max_restart_attempts"
        )
        self.max_request_retries = check_non_negative_int(
            max_request_retries, "max_request_retries"
        )
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.result_cache_size = check_non_negative_int(
            result_cache_size, "result_cache_size"
        )
        self._engine_kwargs = dict(engine_kwargs or {})
        self._faults: dict[int, FaultSpec] = {}
        for shard, spec in (faults or {}).items():
            shard = plan._check_shard(shard)
            if not isinstance(spec, FaultSpec):
                raise ConfigError(
                    f"faults[{shard}] must be a FaultSpec; "
                    f"got {type(spec).__name__}"
                )
            if not spec.is_noop:
                self._faults[shard] = spec
        # Restart must always find a loadable artifact: validate every
        # header now, before any process spawns. The same O(open) peek
        # yields each checkpoint's recorded WAL seqno (0 when absent —
        # fresh fits and legacy artifacts), the floor below which replay
        # skips.
        checkpoint_seqs = []
        for path in artifact_paths:
            meta = peek_artifact(path)
            extra = meta.get("extra") or {}
            checkpoint_seqs.append(int(extra.get("wal_seq", 0)))
        self.wal_dir = str(wal_dir)
        os.makedirs(self.wal_dir, exist_ok=True)
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        self._rows: OrderedDict[tuple, list] = OrderedDict()  # guarded-by: fleet._lock
        self.row_cache_hits = 0  # guarded-by: fleet._lock
        self.row_cache_misses = 0  # guarded-by: fleet._lock
        self._lock = threading.RLock()       # row cache + counters
        self._update_lock = threading.RLock()  # serialises updates/saves
        # Innermost lock guarding the fleet routing tables (_user_shard,
        # _user_global, label dicts, …). Mutation happens under it in
        # _absorb_new_labels — reachable with only a *worker* lock held,
        # via read-triggered restarts replaying a WAL — and readers take
        # it to snapshot a consistent view. Ordering: _update_lock →
        # worker.lock → _routing_lock; never acquire outward while held.
        self._routing_lock = threading.Lock()

        self._workers = [_ShardWorker(shard, artifact_paths[shard],
                                      checkpoint_seq=checkpoint_seqs[shard])
                         for shard in range(plan.n_shards)]
        try:
            for worker in self._workers:
                with worker.lock:
                    self._spawn_locked(worker)  # boot failure raises
                    worker.state = "up"
            self._build_routing()
            # Replay WALs a previous supervisor left behind (it died after
            # dispatching batches but before checkpointing them).
            for worker in self._workers:
                with worker.lock:
                    try:
                        self._replay_wal_locked(worker)
                    except (_WorkerCrashed, _WorkerHung):
                        self._restart_locked(worker)
        except BaseException:
            self.close()
            raise

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_directory(cls, path: str, wal_dir: str | None = None,
                       **kwargs) -> "ProcessShardFleet":
        """Boot a fleet from a :meth:`ShardedEngine.save`-layout directory.

        Expects ``plan.npz`` plus one ``shard-NNN.npz`` artifact per
        shard; the WAL directory defaults to ``<path>/wal`` so crash
        recovery state lives next to the artifacts it replays onto.
        """
        plan_path = os.path.join(path, _PLAN_FILENAME)
        if not os.path.exists(plan_path):
            raise ArtifactError(
                f"{path!r} is not a sharded-artifact directory "
                f"(no {_PLAN_FILENAME})"
            )
        plan = ShardPlan.load(plan_path)
        artifact_paths = [os.path.join(path, _shard_artifact_name(shard))
                          for shard in range(plan.n_shards)]
        if wal_dir is None:
            wal_dir = os.path.join(path, "wal")
        return cls(plan, artifact_paths, wal_dir, **kwargs)

    # -- process lifecycle -----------------------------------------------------

    def _arm_fault(self, worker: _ShardWorker) -> FaultSpec | None:
        fault = self._faults.get(worker.shard)
        if fault is None:
            return None
        if worker.incarnation == 0 or fault.persistent:
            return fault
        return None

    def _spawn_locked(self, worker: _ShardWorker) -> None:
        """Start one worker process and consume its hello (lock held)."""
        fault = self._arm_fault(worker)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, worker.shard, worker.artifact_path,
                  self._engine_kwargs, fault),
            daemon=True,
            name=f"repro-shard-{worker.shard}",
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.incarnation += 1
        hello = self._recv_reply(worker, self.boot_timeout_s)
        worker.model_version = hello["model_version"]
        worker.n_users = hello["n_users"]
        worker.n_items = hello["n_items"]
        worker.n_ratings = hello["n_ratings"]
        worker.user_labels = list(hello["user_labels"])
        worker.item_labels = list(hello["item_labels"])
        worker.last_replay_result = None

    def _cleanup_locked(self, worker: _ShardWorker) -> None:
        """Tear down a dead/wedged worker's process and pipe (lock held)."""
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        process = worker.process
        if process is not None:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            else:
                process.join(timeout=2.0)
            worker.process = None

    def _mark_down_locked(self, worker: _ShardWorker, reason: str) -> None:
        self._cleanup_locked(worker)
        worker.state = "down"
        worker.down_reason = reason

    def _restart_locked(self, worker: _ShardWorker) -> bool:
        """Respawn a crashed worker and replay its WAL (lock held).

        Up to ``max_restart_attempts`` spawn+replay attempts with
        exponential backoff; success counts one restart and returns True,
        exhaustion marks the shard down and returns False. A persistent
        fault re-arms in the replacement, so a scripted always-crash
        deterministically drives the shard down.
        """
        began = time.monotonic()
        self._cleanup_locked(worker)
        failure = "unknown"
        for attempt in range(self.max_restart_attempts):
            if attempt:
                time.sleep(min(self.backoff_max_s,
                               self.backoff_base_s * (2 ** (attempt - 1))))
            try:
                self._spawn_locked(worker)
                self._replay_wal_locked(worker)
            except Exception as exc:
                # Not just _WorkerCrashed/_WorkerHung/ReproError: a boot
                # failure unmarshals to whatever the hello error carried
                # (RuntimeError for non-Repro types), and any escape here
                # would leave state "up" with a dead process behind it.
                failure = f"{type(exc).__name__}: {exc}"
                self._cleanup_locked(worker)
                continue
            worker.restarts += 1
            worker.state = "up"
            worker.down_reason = ""
            # Restart-to-healthy wall time: kill detection to replayed
            # replacement, the fleet's recovery SLO (health()/FleetReport).
            worker.last_restart_at = time.monotonic()
            worker.last_restart_s = worker.last_restart_at - began
            return True
        self._mark_down_locked(
            worker,
            f"restart failed after {self.max_restart_attempts} attempt(s) "
            f"(last: {failure})",
        )
        return False

    def restart_shard(self, shard: int, clear_fault: bool = True) -> dict:
        """Operator hook: bring a down (or running) shard's worker back.

        Replays any update batches stranded in the shard's WAL, so an
        apply that died with the shard also completes here. Clears the
        shard's scripted fault by default (the operator fixed the cause).
        Returns the shard's post-restart health row; raises
        :class:`~repro.exceptions.ShardUnavailableError` when the restart
        budget fails again.
        """
        shard = self.plan._check_shard(shard)
        with self._update_lock:
            worker = self._workers[shard]
            with worker.lock:
                if clear_fault:
                    self._faults.pop(shard, None)
                if not self._restart_locked(worker):
                    raise ShardUnavailableError(shard, worker.down_reason)
        return self.health()["shards"][shard]

    def close(self) -> None:
        """Shut every worker down (graceful RPC, then terminate). Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            with worker.lock:
                if (worker.conn is not None and worker.process is not None
                        and worker.process.is_alive()):
                    try:
                        worker.conn.send(("shutdown", None))
                        worker.conn.poll(1.0)
                    except (BrokenPipeError, OSError):
                        pass
                self._cleanup_locked(worker)
                worker.state = "down"
                worker.down_reason = "fleet closed"

    def __enter__(self) -> "ProcessShardFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort: don't leak worker processes
        try:
            self.close()
        except Exception:
            pass

    # -- request plumbing ------------------------------------------------------

    def _recv_reply(self, worker: _ShardWorker, timeout: float):
        """Wait for one reply, detecting crash fast and hang at deadline."""
        conn = worker.conn
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerHung(
                    f"shard {worker.shard} missed its {timeout:.1f}s deadline"
                )
            try:
                ready = conn.poll(min(0.05, remaining))
            except (BrokenPipeError, OSError):
                raise _WorkerCrashed("pipe closed") from None
            if ready:
                try:
                    status, result = conn.recv()
                except (EOFError, OSError):
                    raise _WorkerCrashed("pipe closed mid-reply") from None
                if status == "ok":
                    return result
                raise _unmarshal_error(result)
            if worker.process is not None and not worker.process.is_alive():
                # Drain a reply that raced the exit before declaring death.
                try:
                    if conn.poll(0):
                        status, result = conn.recv()
                        if status == "ok":
                            return result
                        raise _unmarshal_error(result)
                except (EOFError, OSError):
                    pass
                code = worker.process.exitcode
                raise _WorkerCrashed(f"worker exited with code {code}")

    def _send_recv(self, worker: _ShardWorker, method: str, payload,
                   timeout: float):
        try:
            worker.conn.send((method, payload))
        except (BrokenPipeError, OSError):
            raise _WorkerCrashed("pipe closed on send") from None
        return self._recv_reply(worker, timeout)

    def _request(self, shard: int, method: str, payload,
                 retryable: bool = True):
        worker = self._workers[shard]
        with worker.lock:
            return self._request_locked(worker, method, payload, retryable)

    def _request_locked(self, worker: _ShardWorker, method: str, payload,
                        retryable: bool):
        """One supervised RPC: crash/hang → restart (+WAL replay) → retry.

        Read-only requests are re-sent to the replacement up to
        ``max_request_retries`` times. Apply requests return the
        ``_REPLAYED`` sentinel instead — the restart already replayed the
        batch off the WAL, and re-sending it could double-apply.
        """
        if worker.state != "up":
            raise ShardUnavailableError(
                worker.shard, worker.down_reason or "worker is down"
            )
        attempts = 0
        while True:
            try:
                return self._send_recv(worker, method, payload,
                                       self.request_timeout_s)
            except _WorkerHung:
                worker.request_failures += 1
            except _WorkerCrashed:
                worker.request_failures += 1
            if not self._restart_locked(worker):
                raise ShardUnavailableError(worker.shard, worker.down_reason)
            if not retryable:
                return _REPLAYED
            attempts += 1
            if attempts > self.max_request_retries:
                self._mark_down_locked(
                    worker,
                    f"request failed {attempts} time(s); retry budget "
                    "exhausted",
                )
                raise ShardUnavailableError(worker.shard, worker.down_reason)

    # -- write-ahead log -------------------------------------------------------

    def _wal_path(self, shard: int) -> str:
        return os.path.join(self.wal_dir, f"shard-{shard:03d}.wal.jsonl")

    def _wal_append(self, shard: int, events, duplicates: str | None,
                    seq: int) -> None:
        """Durably append one batch (flush + fsync) before it is dispatched.

        ``seq`` is the shard's monotone batch number; a checkpoint that
        contains this batch records it (``extra.wal_seq`` in the artifact
        header), and replay skips any record at or below that floor.
        """
        try:
            line = json.dumps({
                "seq": int(seq),
                "events": [[user, item, float(rating)]
                           for user, item, rating in events],
                "duplicates": duplicates,
            })
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                "update event labels must be JSON-serializable so the "
                f"write-ahead log can replay them: {exc}"
            ) from None
        with open(self._wal_path(shard), "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _wal_read(self, shard: int) -> list[dict]:
        """The shard's pending batches, oldest first — repairing torn tails.

        A torn final line (supervisor killed mid-append) is dropped: the
        append is fsync'd *before* dispatch, so a torn batch was never
        applied anywhere and the caller simply resubmits it. Dropping is
        not enough, though — the fragment has no trailing newline, so a
        later append in ``"a"`` mode would fuse a valid batch onto it
        into one permanently unparseable line that replay would silently
        skip past, losing acknowledged updates. The file is therefore
        truncated back to the last whole valid record before the WAL
        accepts any further appends.
        """
        path = self._wal_path(shard)
        if not os.path.exists(path):
            return []
        batches: list[dict] = []
        with open(path, "rb") as handle:
            data = handle.read()
        valid_end = 0
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # incomplete final line: crash mid-append
            stripped = raw.strip()
            if stripped:
                try:
                    record = json.loads(stripped.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    break
                batches.append(record)
            valid_end += len(raw)
        if valid_end < len(data):
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
                os.fsync(handle.fileno())
        return batches

    def _wal_truncate(self, shard: int) -> None:
        with open(self._wal_path(shard), "w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def _replay_wal_locked(self, worker: _ShardWorker) -> int:
        """Re-apply the shard's WAL to a freshly booted worker (lock held).

        Replies are absorbed exactly like live apply responses — the label
        mirror makes already-known labels no-ops, so replay is idempotent
        at the routing layer — and the final reply is parked on
        ``last_replay_result`` for the apply path that triggered the
        restart. Raises ``_WorkerCrashed`` / ``_WorkerHung`` upward into
        the restart loop if the replacement dies mid-replay.
        """
        replayed = 0
        skipped = 0
        top_seq = worker.checkpoint_seq
        for record in self._wal_read(worker.shard):
            seq = record.get("seq")
            if seq is not None:
                seq = int(seq)
                top_seq = max(top_seq, seq)
                if seq <= worker.checkpoint_seq:
                    # The boot artifact is a checkpoint that already
                    # contains this batch (supervisor died between save()
                    # and WAL truncation) — replaying it would double-apply.
                    skipped += 1
                    continue
            response = self._send_recv(worker, "apply_updates", {
                "events": [tuple(event) for event in record["events"]],
                "duplicates": record.get("duplicates"),
                "known_users": len(worker.user_labels),
                "known_items": len(worker.item_labels),
            }, self.request_timeout_s)
            self._absorb_apply_response_locked(worker, response)
            worker.last_replay_result = response
            if seq is not None:
                worker.applied_seq = max(worker.applied_seq, seq)
            replayed += 1
        # Sequence numbers must stay monotone across restarts even when
        # the tail of the log was only skimmed, never replayed.
        worker.next_seq = max(worker.next_seq, top_seq + 1)
        worker.replayed_batches += replayed
        worker.skipped_replay_batches += skipped
        return replayed

    # -- routing state ---------------------------------------------------------

    def _build_routing(self) -> None:
        """Mirror of ``ShardedEngine.__init__``'s routing tables, built from
        worker hellos instead of in-process engine datasets."""
        plan = self.plan
        for shard, worker in enumerate(self._workers):
            base_users = plan.shard_users(shard).size
            base_items = plan.shard_items(shard).size
            if worker.n_users < base_users or worker.n_items < base_items:
                raise ConfigError(
                    f"shard {shard} artifact serves {worker.n_users} users × "
                    f"{worker.n_items} items; the plan assigns it "
                    f"{base_users} × {base_items} (owned + ghosts) — "
                    "artifact/plan mismatch"
                )
        self._user_shard = plan.user_shard.copy()  # guarded-by: _routing_lock
        self._user_local = plan.user_local.copy()  # guarded-by: _routing_lock
        self._item_shard = plan.item_shard.copy()  # guarded-by: _routing_lock
        self._item_local = plan.item_local.copy()  # guarded-by: _routing_lock
        self._user_global = [plan.shard_users(s) for s in range(plan.n_shards)]  # guarded-by: _routing_lock
        self._item_global = [plan.shard_items(s) for s in range(plan.n_shards)]  # guarded-by: _routing_lock
        self._item_labels = np.empty(plan.n_items, dtype=object)  # guarded-by: _routing_lock
        for shard, worker in enumerate(self._workers):
            base = self._item_global[shard]
            self._item_labels[base] = _label_array(
                worker.item_labels[:base.size]
            )
        # guarded-by: _routing_lock
        self._item_local_in_shard: list[np.ndarray] | None = (
            [np.empty(0, dtype=np.int64)] * plan.n_shards
            if plan.has_halos else None
        )
        self._user_shard_by_label: dict = {}  # guarded-by: _routing_lock
        self._item_shard_by_label: dict = {}  # guarded-by: _routing_lock
        for shard in range(plan.n_shards):
            self._absorb_new_labels(shard)
        for shard, worker in enumerate(self._workers):
            for axis, labels, lookup, ghost_count, owned_count in (
                    ("user", worker.user_labels, self._user_shard_by_label,
                     plan.ghost_users_of_shard(shard).size,
                     plan.users_of_shard(shard).size),
                    ("item", worker.item_labels, self._item_shard_by_label,
                     plan.ghost_items_of_shard(shard).size,
                     plan.items_of_shard(shard).size)):
                for position, label in enumerate(labels):
                    if owned_count <= position < owned_count + ghost_count:
                        continue  # ghost replica; verified below
                    owner = lookup.setdefault(label, shard)
                    if owner != shard:
                        raise ConfigError(
                            f"{axis} label {label!r} appears in shards "
                            f"{owner} and {shard}; shard datasets must be "
                            "disjoint"
                        )
        if plan.has_halos:
            for shard, worker in enumerate(self._workers):
                for axis, labels, lookup, ghost_count, owned_count in (
                        ("user", worker.user_labels,
                         self._user_shard_by_label,
                         plan.ghost_users_of_shard(shard).size,
                         plan.users_of_shard(shard).size),
                        ("item", worker.item_labels,
                         self._item_shard_by_label,
                         plan.ghost_items_of_shard(shard).size,
                         plan.items_of_shard(shard).size)):
                    for label in labels[owned_count:owned_count + ghost_count]:
                        owner = lookup.get(label)
                        if owner is None or owner == shard:
                            raise ConfigError(
                                f"ghost {axis} label {label!r} in shard "
                                f"{shard} is not owned by any other shard — "
                                "plan/artifact mismatch"
                            )
            for shard in range(plan.n_shards):
                self._rebuild_item_map_locked(shard)
        # Halo routing needs "which shards hold this label at all" (owned
        # or ghost); the in-process tier probes each engine's dataset, the
        # fleet keeps explicit holder sets fed by hellos + absorbed labels.
        self._user_label_shards: dict = {}  # guarded-by: _routing_lock
        self._item_label_shards: dict = {}  # guarded-by: _routing_lock
        for shard, worker in enumerate(self._workers):
            for label in worker.user_labels:
                self._user_label_shards.setdefault(label, set()).add(shard)
            for label in worker.item_labels:
                self._item_label_shards.setdefault(label, set()).add(shard)

    def _rebuild_item_map_locked(self, shard: int) -> None:
        lookup = np.full(self.n_items, -1, dtype=np.int64)
        lookup[self._item_global[shard]] = np.arange(
            self._item_global[shard].size, dtype=np.int64
        )
        self._item_local_in_shard[shard] = lookup

    def _absorb_new_labels(self, shard: int) -> None:
        """Append a shard's post-known users/items to the global space.

        The source of truth is the worker's label *mirror*; anything
        beyond the fleet's per-shard translation arrays is new. During
        WAL replay the mirror re-grows along the exact same path as the
        original incarnation, so re-announced labels sit below the known
        count and this is a no-op for them — replay never double-registers.
        """
        with self._routing_lock:
            self._absorb_new_labels_routing_locked(shard)

    def _absorb_new_labels_routing_locked(self, shard: int) -> None:
        worker = self._workers[shard]
        known = self._user_global[shard].size
        if len(worker.user_labels) > known:
            count = len(worker.user_labels) - known
            fresh = np.arange(self.n_users, self.n_users + count,
                              dtype=np.int64)
            self._user_global[shard] = np.concatenate(
                [self._user_global[shard], fresh]
            )
            self._user_shard = np.concatenate(
                [self._user_shard, np.full(count, shard, dtype=np.int64)]
            )
            self._user_local = np.concatenate(
                [self._user_local,
                 np.arange(known, known + count, dtype=np.int64)]
            )
            for label in worker.user_labels[known:]:
                self._user_shard_by_label[label] = shard
                if hasattr(self, "_user_label_shards"):
                    self._user_label_shards.setdefault(label, set()).add(shard)
        known = self._item_global[shard].size
        if len(worker.item_labels) > known:
            count = len(worker.item_labels) - known
            fresh = np.arange(self.n_items, self.n_items + count,
                              dtype=np.int64)
            self._item_global[shard] = np.concatenate(
                [self._item_global[shard], fresh]
            )
            self._item_shard = np.concatenate(
                [self._item_shard, np.full(count, shard, dtype=np.int64)]
            )
            self._item_local = np.concatenate(
                [self._item_local,
                 np.arange(known, known + count, dtype=np.int64)]
            )
            self._item_labels = np.concatenate(
                [self._item_labels,
                 _label_array(worker.item_labels[known:])]
            )
            for label in worker.item_labels[known:]:
                self._item_shard_by_label[label] = shard
                if hasattr(self, "_item_label_shards"):
                    self._item_label_shards.setdefault(label, set()).add(shard)
            if self._item_local_in_shard is not None:
                for other in range(self.n_shards):
                    self._rebuild_item_map_locked(other)

    def _absorb_apply_response_locked(self, worker: _ShardWorker,
                               response: dict) -> None:
        """Fold one apply reply into the mirror + fleet routing state."""
        worker.user_labels.extend(response["new_user_labels"])
        worker.item_labels.extend(response["new_item_labels"])
        worker.model_version = response["model_version"]
        worker.n_users = response["n_users"]
        worker.n_items = response["n_items"]
        worker.n_ratings = response["n_ratings"]
        self._absorb_new_labels(worker.shard)

    # -- shape -----------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._workers)

    @property
    def n_users(self) -> int:
        return self._user_shard.size

    @property
    def n_items(self) -> int:
        return self._item_shard.size

    @property
    def restarts(self) -> int:
        """Lifetime successful worker restarts across the fleet."""
        return sum(worker.restarts for worker in self._workers)

    @property
    def replayed_batches(self) -> int:
        """Lifetime WAL batches replayed into restarted workers."""
        return sum(worker.replayed_batches for worker in self._workers)

    @property
    def skipped_replay_batches(self) -> int:
        """Lifetime WAL batches skipped at replay because the boot
        checkpoint already contained them (``extra.wal_seq`` floor)."""
        return sum(worker.skipped_replay_batches for worker in self._workers)

    @property
    def last_restart_s(self) -> float | None:
        """Wall seconds of the fleet's most recent successful restart
        (kill detection → replayed replacement), or ``None`` before any."""
        latest = None
        for worker in self._workers:
            if worker.last_restart_s is None:
                continue
            if latest is None or worker.last_restart_at > latest.last_restart_at:
                latest = worker
        return None if latest is None else latest.last_restart_s

    def shard_of_user(self, user: int) -> int:
        self._check_user(user)
        return int(self._user_shard[user])

    def worker_pid(self, shard: int) -> int | None:
        """The shard worker's current OS pid (for tests/benchmarks that
        inject real signals), or ``None`` when the shard is down."""
        worker = self._workers[self.plan._check_shard(shard)]
        process = worker.process
        return process.pid if process is not None and process.is_alive() \
            else None

    def _check_user(self, user: int) -> None:
        if not is_index(user, self.n_users):
            raise UnknownUserError(user)

    def _translate_exclusions_locked(self, shard: int,
                              banned: np.ndarray) -> np.ndarray:
        in_range = banned[(banned >= 0) & (banned < self.n_items)]
        if self._item_local_in_shard is not None:
            local = self._item_local_in_shard[shard][in_range]
            return local[local >= 0]
        mine = in_range[self._item_shard[in_range] == shard]
        return self._item_local[mine]

    # -- serving ---------------------------------------------------------------

    def recommend(self, user: int, k: int = 10, exclude_rated: bool = True,
                  exclude=None) -> list[Recommendation]:
        """Top-``k`` for one global user, answered by the owning shard's
        worker; raises :class:`~repro.exceptions.ShardUnavailableError`
        when that shard is down (degraded mode)."""
        self._check_user(user)
        k = check_positive_int(k, "k")
        banned = as_exclude_array(exclude)
        with self._routing_lock:
            shard = int(self._user_shard[user])
            local = int(self._user_local[user])
            if banned.size:
                banned = self._translate_exclusions_locked(shard, banned)
        ranked = self._request(shard, "recommend", {
            "user": local,
            "k": k,
            "exclude_rated": bool(exclude_rated),
            "exclude": banned,
        })
        # Read *after* the RPC: an apply absorbed before our request took
        # the worker lock may have grown the shard's item space, and the
        # reply can reference those items. Growth is append-only, so the
        # current array is always a superset of what the worker knew.
        lookup = self._item_global[shard]
        return [Recommendation(int(lookup[item]), label, float(score))
                for item, label, score in ranked]

    def recommend_many(self, users, k: int = 10, exclude_rated: bool = True,
                       excludes=None) -> list:
        """Batch of independent requests, routed per shard worker.

        Degraded mode is per-position: a request owned by a down shard
        yields a :class:`~repro.exceptions.ShardUnavailableError`
        *instance* at its position (the micro-batching front end turns it
        into that request's error) while every healthy shard's positions
        carry normal ranked lists.
        """
        users = list(users)
        if excludes is None:
            excludes = [None] * len(users)
        else:
            excludes = list(excludes)
            if len(excludes) != len(users):
                raise ConfigError(
                    f"excludes has {len(excludes)} entries for "
                    f"{len(users)} users"
                )
        k = check_positive_int(k, "k")
        out: list = [None] * len(users)
        by_shard: dict[int, tuple[list, list, list]] = {}
        with self._routing_lock:
            for position, (user, exclude) in enumerate(zip(users, excludes)):
                self._check_user(user)
                shard = int(self._user_shard[user])
                banned = as_exclude_array(exclude)
                if banned.size:
                    banned = self._translate_exclusions_locked(shard, banned)
                positions, local_users, local_bans = by_shard.setdefault(
                    shard, ([], [], [])
                )
                positions.append(position)
                local_users.append(int(self._user_local[user]))
                local_bans.append(banned)
        for shard, (positions, local_users, local_bans) in by_shard.items():
            try:
                ranked_lists = self._request(shard, "recommend_many", {
                    "users": local_users,
                    "k": k,
                    "exclude_rated": bool(exclude_rated),
                    "excludes": local_bans,
                })
            except ShardUnavailableError as exc:
                for position in positions:
                    out[position] = exc
                continue
            lookup = self._item_global[shard]
            for position, ranked in zip(positions, ranked_lists):
                out[position] = [
                    Recommendation(int(lookup[item]), label, float(score))
                    for item, label, score in ranked
                ]
        return out

    def serve_cohort(self, users, k: int = 10, batch_size: int = 256,
                     exclude_rated: bool = True) -> FleetReport:
        """Serve a cohort across the worker fleet (row cache → shard RPCs).

        Identical shape and routing to
        :meth:`ShardedEngine.serve_cohort`; additionally stamps the
        report with the fleet's supervision counters and the per-shard
        health it was served under. A cohort touching a down shard raises
        :class:`~repro.exceptions.ShardUnavailableError` — trim the
        cohort to healthy users (or ``restart_shard``) to proceed
        degraded.
        """
        k = check_positive_int(k, "k")
        exclude_rated = bool(exclude_rated)
        users = as_index_array(users, self.n_users, "users")
        report = FleetReport(n_users=int(users.size), k=k,
                             n_shards=self.n_shards)
        with Timer() as timer:
            per_position: list = [None] * users.size
            if self.result_cache_size:
                missing: list[int] = []
                with self._lock:
                    for position, user in enumerate(users):
                        key = (int(user), k, exclude_rated)
                        entry = self._rows.get(key)
                        if entry is None:
                            missing.append(position)
                        else:
                            self._rows.move_to_end(key)
                            per_position[position] = entry
                    report.row_cache_hits = users.size - len(missing)
                    report.row_cache_misses = len(missing)
                    self.row_cache_hits += report.row_cache_hits
                    self.row_cache_misses += report.row_cache_misses
            else:
                missing = list(range(users.size))
            if missing:
                versions = [worker.model_version for worker in self._workers]
                positions = np.asarray(missing, dtype=np.int64)
                miss_users = users[positions]
                items = np.full((positions.size, k), -1, dtype=np.int64)
                scores = np.full((positions.size, k), -np.inf)
                with self._routing_lock:
                    shard_of = self._user_shard[miss_users]
                    locals_of_shard = {
                        int(shard): self._user_local[
                            miss_users[np.flatnonzero(shard_of == shard)]
                        ]
                        for shard in np.unique(shard_of)
                    }
                for shard in np.unique(shard_of):
                    shard = int(shard)
                    rows_of_shard = np.flatnonzero(shard_of == shard)
                    result = self._request(shard, "serve_cohort", {
                        "users": locals_of_shard[shard],
                        "k": k,
                        "batch_size": batch_size,
                        "exclude_rated": exclude_rated,
                    })
                    lookup = self._item_global[shard]
                    shard_items = result["items"]
                    valid = shard_items >= 0
                    items[rows_of_shard] = np.where(
                        valid, lookup[np.where(valid, shard_items, 0)], -1
                    )
                    scores[rows_of_shard] = result["scores"]
                    report.per_shard.append((shard, result["report"]))
                # Under the routing lock no absorb is mid-flight, so this
                # label array covers every global id the (post-RPC,
                # append-only) lookups above could have produced.
                with self._routing_lock:
                    item_labels = self._item_labels
                flat = rows_from_ranked_arrays(
                    miss_users, items, scores, item_labels
                )
                bounds = np.concatenate(
                    [[0], np.cumsum((items >= 0).sum(axis=1))]
                )
                for index, position in enumerate(missing):
                    per_position[position] = flat[bounds[index]:
                                                  bounds[index + 1]]
                if self.result_cache_size:
                    with self._lock:
                        # Same version gate as the in-process tier: a shard
                        # that absorbed an update (or restarted) while the
                        # RPCs were in flight must not have pre-update rows
                        # re-cached behind its eviction.
                        for index, position in enumerate(missing):
                            user = int(users[position])
                            shard = int(self._user_shard[user])
                            worker = self._workers[shard]
                            if worker.model_version != versions[shard]:
                                continue
                            self._rows[(user, k, exclude_rated)] = (
                                per_position[position]
                            )
                        while len(self._rows) > self.result_cache_size:
                            self._rows.popitem(last=False)
            rows: list = []
            for user_rows in per_position:
                if user_rows:
                    rows.extend(user_rows)
            report.rows = rows
        report.seconds = timer.elapsed
        report.restarts = self.restarts
        report.replayed_batches = self.replayed_batches
        report.skipped_replay_batches = self.skipped_replay_batches
        report.last_restart_s = self.last_restart_s
        report.shard_health = self.health()["shards"]
        return report

    def warm(self, users=None, k: int = 10,
             batch_size: int = 256) -> FleetReport:
        """Pre-fill the row cache and every worker's caches."""
        if users is None:
            users = np.arange(self.n_users, dtype=np.int64)
        return self.serve_cohort(users, k=k, batch_size=batch_size)

    # -- incremental updates ---------------------------------------------------

    def apply_updates(self, events, duplicates: str | None = None,
                      ) -> FleetUpdateReport:
        """Route, WAL-log and dispatch an update batch across the workers.

        Routing (component union-find / halo replica fan-out) is
        byte-identical to :meth:`ShardedEngine.apply_updates`. The fleet
        then, per touched shard: validates the slice *worker-side*
        (mutating nothing — a bad batch rejects with the fleet untouched
        and nothing logged), appends it to the shard's WAL (fsync'd), and
        dispatches it. A worker crashing mid-apply is restarted and
        recovers the batch from the WAL — ``replayed_batches`` on the
        report says it happened; the merged reports are identical either
        way. All touched shards must be *up* when the batch starts; a
        shard going down mid-batch leaves its slice durably in its WAL,
        applied by the next successful ``restart_shard``.
        """
        events = list(events)
        report = FleetUpdateReport(n_events=len(events))
        if not events:
            return report
        with Timer() as timer:
            with self._update_lock:
                # Routing reads the label dicts a read-triggered WAL
                # replay may be growing concurrently (it holds only a
                # worker lock, not _update_lock).
                with self._routing_lock:
                    if self.plan.has_halos:
                        routed, stale = self._route_events_halo_locked(events)
                    else:
                        routed = self._route_events_component_locked(events)
                        stale = 0
                touched = [shard for shard in range(self.n_shards)
                           if routed[shard]]
                for shard in touched:
                    worker = self._workers[shard]
                    if worker.state != "up":
                        raise ShardUnavailableError(
                            shard, worker.down_reason or "worker is down"
                        )
                for shard in touched:
                    self._request(shard, "validate_events", {
                        "events": routed[shard],
                        "duplicates": duplicates,
                    })
                replayed_before = self.replayed_batches
                for shard in touched:
                    update = self._dispatch_apply(shard, routed[shard],
                                                  duplicates)
                    report.per_shard.append((shard, update))
                report.replayed_batches = (self.replayed_batches
                                           - replayed_before)
                # One eviction pass after all touched shards applied (all
                # worker versions already advanced, so serve_cohort's
                # version-gated insert cannot re-admit stale rows).
                report.fleet_rows_evicted = self._evict_shard_rows(touched)
                if stale:
                    report.stale_ghost_events = stale
                    report.hint = (
                        f"{stale} event(s) could not reach every halo "
                        "replica of their endpoints; the untouched ghost "
                        "copies drift within the documented bound — "
                        f"{EDGE_CUT_HINT}"
                    )
        report.seconds = timer.elapsed
        return report

    def _dispatch_apply(self, shard: int, shard_events,
                        duplicates: str | None):
        """WAL-append then dispatch one shard's slice; recover via replay.

        The append happens *inside* ``worker.lock``: a batch may only
        enter the WAL while no restart can replay it. Appending outside
        the lock would let a read request that crashed the worker replay
        the just-logged batch during its restart, after which the dispatch
        below would apply it a second time.
        """
        worker = self._workers[shard]
        with worker.lock:
            seq = worker.next_seq
            worker.next_seq += 1
            self._wal_append(shard, shard_events, duplicates, seq)
            worker.last_replay_result = None
            result = self._request_locked(worker, "apply_updates", {
                "events": shard_events,
                "duplicates": duplicates,
                "known_users": len(worker.user_labels),
                "known_items": len(worker.item_labels),
            }, retryable=False)
            if result is _REPLAYED:
                # The restart's WAL replay applied this batch (it was the
                # log's tail); its reply was parked on the handle, and the
                # replay already absorbed the labels and advanced
                # ``applied_seq`` past this record.
                response = worker.last_replay_result
                if response is None:  # pragma: no cover - defensive
                    raise ShardUnavailableError(
                        shard, "batch lost during crash recovery"
                    )
            else:
                response = result
                worker.applied_seq = max(worker.applied_seq, seq)
                self._absorb_apply_response_locked(worker, response)
        return response["report"]

    def _route_events_component_locked(self, events) -> list[list]:
        """Union-find batch routing — the in-process tier's policy verbatim
        (see :meth:`ShardedEngine.apply_updates`), with shard load read
        from the worker handles."""
        parent: dict = {}

        def find(key):
            root = key
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(key, key) != key:  # path compression
                parent[key], key = root, parent[key]
            return root

        for event in events:
            user_root = find(("u", event[0]))
            item_root = find(("i", event[1]))
            if user_root != item_root:
                parent[item_root] = user_root
        group_shard: dict = {}
        group_label: dict = {}
        for kind, position, lookup in (
                ("u", 0, self._user_shard_by_label),
                ("i", 1, self._item_shard_by_label)):
            for event in events:
                label = event[position]
                known = lookup.get(label)
                if known is None:
                    continue
                root = find((kind, label))
                owner = group_shard.setdefault(root, known)
                group_label.setdefault(root, label)
                if owner != known:
                    raise ConfigError(
                        self._cross_shard_message_locked(
                            events, group_label[root], owner, label, known
                        )
                    )
        routed: list[list] = [[] for _ in range(self.n_shards)]
        loads = [worker.n_ratings for worker in self._workers]
        for event in events:
            root = find(("u", event[0]))
            shard = group_shard.get(root)
            if shard is None:  # every label in the group is brand-new
                shard = int(np.argmin(loads))
                group_shard[root] = shard
            loads[shard] += 1
            routed[shard].append(event)
        return routed

    def _cross_shard_message_locked(self, events, label_a, shard_a, label_b,
                             shard_b) -> str:
        for user_label, item_label, _ in events:
            user_owner = self._user_shard_by_label.get(user_label)
            item_owner = self._item_shard_by_label.get(item_label)
            if (user_owner is not None and item_owner is not None
                    and user_owner != item_owner):
                return (
                    f"update event (user={user_label!r}, "
                    f"item={item_label!r}) is a cross-shard edge: the user "
                    f"lives in shard {user_owner}, the item in shard "
                    f"{item_owner}; a component-sharded tier cannot apply "
                    f"it — {EDGE_CUT_HINT}"
                )
        return (
            f"update batch links {label_a!r} (shard {shard_a}) with "
            f"{label_b!r} (shard {shard_b}) through new labels; "
            "cross-shard edges cannot be applied to a component-sharded "
            f"tier — {EDGE_CUT_HINT}"
        )

    def _route_events_halo_locked(self, events) -> tuple[list[list], int]:
        """Per-event replica routing for edge-cut plans — the in-process
        tier's policy verbatim, with label-holder sets standing in for
        probing each shard dataset."""
        routed: list[list] = [[] for _ in range(self.n_shards)]
        loads = [worker.n_ratings for worker in self._workers]
        pending_users: dict = {}
        pending_items: dict = {}
        stale = 0
        for event in events:
            user_label, item_label = event[0], event[1]
            user_shards = self._shards_with_locked(user_label, "user", pending_users)
            item_shards = self._shards_with_locked(item_label, "item", pending_items)
            if user_shards and item_shards:
                both = sorted(user_shards & item_shards)
                if not both:
                    user_owner = self._user_shard_by_label.get(
                        user_label, pending_users.get(user_label))
                    item_owner = self._item_shard_by_label.get(
                        item_label, pending_items.get(item_label))
                    raise ConfigError(
                        f"update event (user={user_label!r}, "
                        f"item={item_label!r}) joins shard {user_owner} to "
                        f"shard {item_owner} but no shard holds both "
                        "endpoints — the edge exceeds the plan's "
                        f"{self.plan.halo_hops}-hop halo; {EDGE_CUT_HINT}"
                    )
                for shard in both:
                    routed[shard].append(event)
                    loads[shard] += 1
                if (user_shards | item_shards) - set(both):
                    stale += 1
            elif user_shards or item_shards:
                if user_shards:
                    owner = self._user_shard_by_label.get(
                        user_label, pending_users.get(user_label))
                    pending_items[item_label] = owner
                    replicas = user_shards
                else:
                    owner = self._item_shard_by_label.get(
                        item_label, pending_items.get(item_label))
                    pending_users[user_label] = owner
                    replicas = item_shards
                routed[owner].append(event)
                loads[owner] += 1
                if replicas - {owner}:
                    stale += 1
            else:
                shard = int(np.argmin(loads))
                routed[shard].append(event)
                loads[shard] += 1
                pending_users[user_label] = shard
                pending_items[item_label] = shard
        return routed, stale

    def _shards_with_locked(self, label, axis: str, pending: dict) -> set:
        lookup = (self._user_label_shards if axis == "user"
                  else self._item_label_shards)
        shards = set(lookup.get(label, ()))
        if label in pending:
            shards.add(pending[label])
        return shards

    def _evict_shard_rows(self, shards) -> int:
        touched = set(int(s) for s in shards)
        if not touched:
            return 0
        with self._lock:
            stale = [key for key in self._rows
                     if int(self._user_shard[key[0]]) in touched]
            for key in stale:
                del self._rows[key]
            return len(stale)

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> str:
        """Checkpoint the fleet: plan + per-shard artifacts, then WAL reset.

        Every shard saves first; only when *all* succeed are the WALs
        truncated and the restart artifacts re-pointed at the checkpoint
        — a failed save leaves every WAL (and the old restart points)
        intact. Each shard's checkpoint records the last WAL seqno it
        contains (``extra.wal_seq`` in the artifact header), so even a
        supervisor killed *between* a shard's save and its WAL truncation
        cannot double-apply: the next boot reads the seqno in O(open) and
        skips the already-checkpointed batches. Reload with
        :meth:`from_directory` or hand the directory to
        :meth:`ShardedEngine.from_directory` (the formats are shared).
        """
        with self._update_lock:
            os.makedirs(path, exist_ok=True)
            self.plan.save(os.path.join(path, _PLAN_FILENAME))
            written: list[tuple[int, str, int]] = []
            for shard in range(self.n_shards):
                worker = self._workers[shard]
                target = os.path.join(path, _shard_artifact_name(shard))
                with worker.lock:
                    seq = worker.applied_seq
                    self._request_locked(worker, "save",
                                         {"path": target, "wal_seq": seq},
                                         retryable=True)
                written.append((shard, target, seq))
            for shard, target, seq in written:
                worker = self._workers[shard]
                # Truncation, the restart re-point and the seqno floor move
                # together under the worker lock: a read-triggered restart
                # racing this loop either replays the full WAL onto the old
                # artifact or boots the checkpoint with the floor in place
                # — never a mix.
                with worker.lock:
                    self._wal_truncate(shard)
                    worker.artifact_path = target
                    worker.checkpoint_seq = seq
        return path

    # -- lifecycle / introspection ---------------------------------------------

    def clear_caches(self) -> None:
        """Drop the fleet row cache and each live worker's cache layers."""
        with self._lock:
            self._rows.clear()
            self.row_cache_hits = 0
            self.row_cache_misses = 0
        for shard in range(self.n_shards):
            try:
                self._request(shard, "clear_caches", {})
            except ShardUnavailableError:
                continue

    def invalidate_user(self, user: int) -> int:
        """Evict one global user's rows from the fleet row cache."""
        self._check_user(user)
        with self._lock:
            stale = [key for key in self._rows if key[0] == int(user)]
            for key in stale:
                del self._rows[key]
        return len(stale)

    def health(self, ping: bool = False) -> dict:
        """Fleet health: ``status`` plus one row per shard.

        ``ping=False`` (the default, and what the HTTP probe uses) is
        non-blocking: state comes from the supervisor's book-keeping plus
        a liveness peek at each process, so a worker that died since its
        last request shows ``"crashed"`` without waiting a timeout.
        ``ping=True`` actively round-trips every shard — which *heals*:
        a crashed worker is restarted (or marked down) on the spot.
        """
        if ping:
            for shard in range(self.n_shards):
                if self._workers[shard].state != "up":
                    continue
                try:
                    self._request(shard, "ping", {})
                except ShardUnavailableError:
                    pass
        status = "ok"
        shards = []
        for worker in self._workers:
            state = worker.state
            # One read into a local: a concurrent _cleanup_locked may set
            # worker.process to None between checks, and the probe must
            # never raise from its own race.
            process = worker.process
            alive = process is not None and process.is_alive()
            if state == "up" and not alive:
                state = "crashed"
            entry = {
                "shard": worker.shard,
                "state": state,
                "model_version": worker.model_version,
                "restarts": worker.restarts,
                "replayed_batches": worker.replayed_batches,
                "skipped_replay_batches": worker.skipped_replay_batches,
                "pid": process.pid if alive else None,
            }
            if worker.last_restart_s is not None:
                entry["last_restart_s"] = round(worker.last_restart_s, 4)
            if state != "up":
                status = "degraded"
                if worker.down_reason:
                    entry["reason"] = worker.down_reason
            shards.append(entry)
        report = {
            "status": status,
            "shards": shards,
            "restarts": self.restarts,
            "replayed_batches": self.replayed_batches,
            "skipped_replay_batches": self.skipped_replay_batches,
        }
        last_restart_s = self.last_restart_s
        if last_restart_s is not None:
            report["last_restart_s"] = round(last_restart_s, 4)
        return report

    def stats(self) -> dict:
        """Fleet shape, row-cache and supervision counters + worker stats."""
        with self._lock:
            fleet = {
                "n_shards": self.n_shards,
                "n_users": self.n_users,
                "n_items": self.n_items,
                "row_entries": len(self._rows),
                "row_hits": self.row_cache_hits,
                "row_misses": self.row_cache_misses,
                "restarts": self.restarts,
                "replayed_batches": self.replayed_batches,
                "skipped_replay_batches": self.skipped_replay_batches,
            }
        shards = []
        for shard in range(self.n_shards):
            try:
                worker_stats = self._request(shard, "stats", {})
            except ShardUnavailableError:
                worker_stats = {"state": "down"}
            shards.append({"shard": shard, **worker_stats})
        fleet["shards"] = shards
        return fleet

    def __repr__(self) -> str:
        down = sum(1 for worker in self._workers if worker.state != "up")
        return (
            f"ProcessShardFleet(n_shards={self.n_shards}, "
            f"n_users={self.n_users}, n_items={self.n_items}, "
            f"down={down}, restarts={self.restarts})"
        )

"""Async request front end: micro-batching over the multi-RHS solve path.

Everything below the service tier is library-call-shaped — a caller hands
the engine a pre-formed cohort. Production traffic is the opposite shape:
many *concurrent single-user* requests, each wanting an answer now. This
module closes the gap the way GPU/vectorized serving systems do, with
**micro-batching**: concurrent requests land in a bounded admission queue,
a batching loop drains the queue into cohorts (up to ``max_batch_size``
requests, waiting at most ``max_delay_ms`` for stragglers), and each
cohort rides one coalesced :meth:`~repro.service.ServingEngine.recommend_many`
call — the vectorized multi-RHS walk solve the paper's absorbing-cost
model makes cheap — with the results fanned back out to the per-request
futures. Responses are bit-identical to calling ``engine.recommend`` per
request; the batch only changes *when* the solve runs, never what it
computes.

The pieces:

* :class:`BatchingServer` — the asyncio core. Admission is **bounded**:
  when the queue holds ``max_queue`` pending requests, new arrivals are
  shed with a typed :class:`~repro.exceptions.OverloadedError` (count them,
  retry elsewhere — never an unbounded backlog). Each request can carry a
  deadline (``timeout_ms``, per-request or server-default); a miss raises
  :class:`~repro.exceptions.DeadlineExceededError` and the batching loop
  skips the abandoned request before solving. Solves run on a dedicated
  single worker thread so the event loop keeps admitting (and batching)
  traffic *while* a cohort is in flight — that overlap is what fills the
  next batch.
* :class:`ServerReport` — latency percentiles (p50/p95/p99 via
  :func:`percentile`), a batch-size histogram, queue-depth gauges, and
  exact acceptance/rejection counters; JSON-safe ``summary()`` with a
  lossless :meth:`ServerReport.from_summary` round-trip.
* :class:`HttpFrontend` — a plain-asyncio HTTP/1.1 binding
  (``GET /recommend?user=…&k=…``, ``/report``, ``/health``; keep-alive
  connections, typed errors mapped to 4xx/5xx). ``python -m repro.cli
  serve-http`` wires it against a model artifact or a sharded fleet.

Works unchanged over a :class:`~repro.service.ServingEngine` or a
:class:`~repro.service.ShardedEngine` — both implement ``recommend_many``.
``benchmarks/bench_server.py`` drives the whole stack with a seeded
closed+open-loop load generator and commits ``BENCH_server.json``.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from collections import Counter
from dataclasses import dataclass, field
from functools import partial
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.exceptions import (
    ConfigError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ShardUnavailableError,
)
from repro.utils.timer import per_second
from repro.utils.validation import (
    as_exclude_array,
    check_non_negative_int,
    check_positive_int,
)

__all__ = ["percentile", "ServerReport", "BatchingServer", "HttpFrontend"]


def percentile(samples, q: float) -> float:
    """The ``q``-th percentile of ``samples`` by linear interpolation.

    Matches numpy's default (``method='linear'``) on sorted data: rank
    ``(n - 1) · q/100`` interpolated between its floor and ceiling
    neighbours — so ``percentile(x, 50)`` of an even-length sample is the
    midpoint of the two central values, and 0/100 are the min/max. Pure
    python on a copied, sorted list; deterministic for any input order.
    Empty input clamps to 0.0 ("not measurable"), mirroring
    :func:`~repro.utils.timer.per_second`.
    """
    if isinstance(q, bool) or not isinstance(q, (int, float, np.floating,
                                                 np.integer)):
        raise ConfigError(f"q must be a number in [0, 100]; got {q!r}")
    q = float(q)
    if not (math.isfinite(q) and 0.0 <= q <= 100.0):
        raise ConfigError(f"q must be in [0, 100]; got {q}")
    data = sorted(float(s) for s in samples)
    if not data:
        return 0.0
    rank = (len(data) - 1) * (q / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    fraction = rank - low
    return data[low] + (data[high] - data[low]) * fraction


@dataclass
class ServerReport:
    """A snapshot of the front end's lifetime accounting.

    Attributes
    ----------
    n_accepted:
        Requests admitted to the queue (every one of these resolved as
        completed, failed, or deadline-rejected — nothing is dropped
        silently).
    n_completed / n_failed:
        Requests answered with a ranked list / failed with an engine-side
        error fanned back to the caller.
    n_rejected_overload / n_rejected_deadline:
        Typed rejections: shed at admission (queue full) / abandoned on a
        missed deadline. ``n_rejected_deadline`` counts requests that were
        admitted first, so the books balance as
        ``accepted == completed + failed + deadline + in-flight``.
    n_batches / batch_sizes:
        Cohort solves run, and the exact histogram of their sizes
        (``{size: count}``, abandoned requests excluded) — the direct
        evidence of how well arrivals coalesce.
    latency_ms_* :
        Percentiles/mean/max over the completed requests' enqueue→response
        wall-clock, in milliseconds, computed over a bounded window of the
        most recent ``latency_window`` samples.
    queue_depth / max_queue_depth:
        Pending requests at snapshot time, and the high-water mark.
    seconds:
        Server uptime at snapshot time (0.0 before :meth:`~BatchingServer.start`).
    """

    n_accepted: int = 0
    n_completed: int = 0
    n_failed: int = 0
    n_rejected_overload: int = 0
    n_rejected_deadline: int = 0
    n_batches: int = 0
    batch_sizes: dict = field(default_factory=dict)
    latency_ms_p50: float = 0.0
    latency_ms_p95: float = 0.0
    latency_ms_p99: float = 0.0
    latency_ms_mean: float = 0.0
    latency_ms_max: float = 0.0
    queue_depth: int = 0
    max_queue_depth: int = 0
    seconds: float = 0.0

    @property
    def requests_per_second(self) -> float:
        """Completed-request throughput over the uptime; clamped to 0.0
        when the clock resolved no time (:func:`~repro.utils.timer.per_second`
        — ``inf`` would corrupt JSON summaries)."""
        return per_second(self.n_completed, self.seconds)

    @property
    def mean_batch_size(self) -> float:
        solved = sum(size * count for size, count in self.batch_sizes.items())
        return solved / self.n_batches if self.n_batches else 0.0

    def summary(self) -> dict:
        """One JSON-safe summary row (histogram keys stringified for JSON)."""
        return {
            "accepted": self.n_accepted,
            "completed": self.n_completed,
            "failed": self.n_failed,
            "rejected_overload": self.n_rejected_overload,
            "rejected_deadline": self.n_rejected_deadline,
            "batches": self.n_batches,
            "mean_batch": round(self.mean_batch_size, 2),
            "batch_sizes": {str(size): count
                            for size, count in sorted(self.batch_sizes.items())},
            "p50_ms": round(self.latency_ms_p50, 3),
            "p95_ms": round(self.latency_ms_p95, 3),
            "p99_ms": round(self.latency_ms_p99, 3),
            "mean_ms": round(self.latency_ms_mean, 3),
            "max_ms": round(self.latency_ms_max, 3),
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "seconds": round(self.seconds, 4),
            "requests_per_sec": round(self.requests_per_second, 1),
        }

    @classmethod
    def from_summary(cls, payload: dict) -> "ServerReport":
        """Rebuild a report from :meth:`summary` output (JSON round-trip).

        ``summary() -> json.dumps -> json.loads -> from_summary -> summary()``
        is lossless up to the rounding ``summary`` itself applies — the
        contract that lets dashboards and the bench archive re-hydrate
        committed reports.
        """
        return cls(
            n_accepted=int(payload["accepted"]),
            n_completed=int(payload["completed"]),
            n_failed=int(payload["failed"]),
            n_rejected_overload=int(payload["rejected_overload"]),
            n_rejected_deadline=int(payload["rejected_deadline"]),
            n_batches=int(payload["batches"]),
            batch_sizes={int(size): int(count)
                         for size, count in payload["batch_sizes"].items()},
            latency_ms_p50=float(payload["p50_ms"]),
            latency_ms_p95=float(payload["p95_ms"]),
            latency_ms_p99=float(payload["p99_ms"]),
            latency_ms_mean=float(payload["mean_ms"]),
            latency_ms_max=float(payload["max_ms"]),
            queue_depth=int(payload["queue_depth"]),
            max_queue_depth=int(payload["max_queue_depth"]),
            seconds=float(payload["seconds"]),
        )


@dataclass
class _Request:
    """One queued recommend request (internal to the batching loop)."""

    user: int
    k: int
    exclude_rated: bool
    exclude: np.ndarray
    future: asyncio.Future
    enqueued: float


_STOP = object()  # queue sentinel: drain what's left, then exit the loop


class BatchingServer:
    """Coalesce concurrent single-user requests into cohort solves.

    Parameters
    ----------
    engine:
        A :class:`~repro.service.ServingEngine` or
        :class:`~repro.service.ShardedEngine` — anything exposing the
        ``recommend_many`` batch hook (and per-user validation via
        ``_check_user``/``dataset._check_user``).
    max_batch_size:
        Most requests coalesced into one solve. ``1`` disables batching —
        the configuration the bench uses as its baseline.
    max_delay_ms:
        Longest the batching loop waits for stragglers after the first
        request of a batch arrives. ``0`` drains only what is already
        queued. This is the knob trading tail latency (each request can
        wait up to one delay window) for throughput (bigger cohorts per
        solve).
    max_queue:
        Bound on pending admitted requests. Arrivals beyond it are shed at
        admission with :class:`~repro.exceptions.OverloadedError` — load
        shedding is explicit and counted, memory stays bounded.
    timeout_ms:
        Default per-request deadline (``None`` = wait forever). A request
        that misses it gets :class:`~repro.exceptions.DeadlineExceededError`;
        if it is still queued it is skipped before the solve.
    latency_window:
        Latency samples kept for percentile reporting (a bounded ring —
        a long-lived server's memory does not grow with traffic).

    Use as an async context manager, or call :meth:`start` / :meth:`stop`.
    All methods must be called from the event loop that started the
    server; the engine solve itself runs on a dedicated worker thread.
    """

    def __init__(self, engine, max_batch_size: int = 32,
                 max_delay_ms: float = 2.0, max_queue: int = 1024,
                 timeout_ms: float | None = None,
                 latency_window: int = 65536):
        if not callable(getattr(engine, "recommend_many", None)):
            raise ConfigError(
                f"{type(engine).__name__} has no recommend_many batch hook; "
                "pass a ServingEngine or ShardedEngine"
            )
        self.engine = engine
        self.max_batch_size = check_positive_int(max_batch_size,
                                                 "max_batch_size")
        if isinstance(max_delay_ms, bool) or not isinstance(
                max_delay_ms, (int, float, np.floating, np.integer)):
            raise ConfigError(
                f"max_delay_ms must be a number >= 0; got {max_delay_ms!r}"
            )
        self.max_delay_ms = float(max_delay_ms)
        if not (math.isfinite(self.max_delay_ms) and self.max_delay_ms >= 0):
            raise ConfigError(
                f"max_delay_ms must be a finite number >= 0; got {max_delay_ms}"
            )
        self.max_queue = check_positive_int(max_queue, "max_queue")
        if timeout_ms is not None:
            if isinstance(timeout_ms, bool) or not isinstance(
                    timeout_ms, (int, float, np.floating, np.integer)):
                raise ConfigError(
                    f"timeout_ms must be a positive number or None; "
                    f"got {timeout_ms!r}"
                )
            timeout_ms = float(timeout_ms)
            if not (math.isfinite(timeout_ms) and timeout_ms > 0):
                raise ConfigError(
                    f"timeout_ms must be a finite number > 0; got {timeout_ms}"
                )
        self.timeout_ms = timeout_ms
        self.latency_window = check_positive_int(latency_window,
                                                 "latency_window")
        self._queue: asyncio.Queue | None = None
        self._loop_task: asyncio.Task | None = None
        self._running = False
        self._started_at = 0.0
        self._latencies_s: list[float] = []  # ring-bounded, see _record
        self._latency_cursor = 0
        self.n_accepted = 0
        self.n_completed = 0
        self.n_failed = 0
        self.n_rejected_overload = 0
        self.n_rejected_deadline = 0
        self.n_batches = 0
        self.batch_sizes: Counter = Counter()
        self.max_queue_depth = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "BatchingServer":
        """Bind to the running event loop and start the batching loop."""
        if self._running:
            raise ConfigError("server already started")
        self._queue = asyncio.Queue()
        self._running = True
        self._started_at = time.perf_counter()
        self._loop_task = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop admitting, drain the queue, then exit.

        Requests admitted before ``stop`` are still solved and answered —
        callers awaiting them never hang; arrivals after ``stop`` are
        rejected with :class:`~repro.exceptions.OverloadedError`.
        """
        if not self._running:
            return
        self._running = False  # admission closes immediately
        self._queue.put_nowait(_STOP)
        await self._loop_task
        self._loop_task = None
        self._queue = None

    async def __aenter__(self) -> "BatchingServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- serving -------------------------------------------------------------

    async def recommend(self, user: int, k: int = 10,
                        exclude_rated: bool = True, exclude=None,
                        timeout_ms: float | None = None):
        """Top-``k`` for one user through the admission queue.

        Validation runs synchronously at admission (a malformed request is
        the caller's error, never the batch's), backpressure is applied
        here (queue full → :class:`~repro.exceptions.OverloadedError`),
        and the returned list is bit-identical to
        ``engine.recommend(user, k, exclude_rated, exclude)``.
        ``timeout_ms`` overrides the server default for this request.
        """
        if not self._running:
            raise OverloadedError("server is not running (start() it first)")
        k = check_positive_int(k, "k")
        banned = as_exclude_array(exclude)
        checker = getattr(self.engine, "_check_user", None)
        if checker is None:
            checker = self.engine.dataset._check_user
        checker(user)
        if self._queue.qsize() >= self.max_queue:
            self.n_rejected_overload += 1
            raise OverloadedError(
                f"admission queue is full ({self.max_queue} pending); "
                "request shed — retry later"
            )
        future = asyncio.get_running_loop().create_future()
        request = _Request(user=int(user), k=k, exclude_rated=bool(exclude_rated),
                           exclude=banned, future=future,
                           enqueued=time.perf_counter())
        self.n_accepted += 1
        self._queue.put_nowait(request)
        self.max_queue_depth = max(self.max_queue_depth, self._queue.qsize())
        timeout = self.timeout_ms if timeout_ms is None else timeout_ms
        if timeout is None:
            return await future
        try:
            # wait_for cancels the future on timeout; the batching loop
            # treats a done (cancelled) future as abandoned and skips it.
            return await asyncio.wait_for(future, timeout / 1000.0)
        except asyncio.TimeoutError:
            self.n_rejected_deadline += 1
            raise DeadlineExceededError(
                f"request for user {int(user)} missed its {timeout:g} ms "
                "deadline"
            ) from None

    # -- batching loop -------------------------------------------------------

    async def _batch_loop(self) -> None:
        queue = self._queue
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            first = await queue.get()
            if first is _STOP:
                break
            batch = [first]
            if self.max_batch_size > 1 and self.max_delay_ms > 0:
                deadline = loop.time() + self.max_delay_ms / 1000.0
                while len(batch) < self.max_batch_size:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                    if item is _STOP:
                        stopping = True
                        break
                    batch.append(item)
            # Opportunistic drain: whatever is already queued joins the
            # cohort for free (also the whole strategy when max_delay is 0).
            while len(batch) < self.max_batch_size and not queue.empty():
                item = queue.get_nowait()
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            await self._serve_batch(batch)
        # Drain-after-stop: everything admitted before stop() still gets
        # an answer, in max_batch_size cohorts.
        pending = []
        while not queue.empty():
            item = queue.get_nowait()
            if item is not _STOP:
                pending.append(item)
        for start in range(0, len(pending), self.max_batch_size):
            await self._serve_batch(pending[start:start + self.max_batch_size])

    async def _serve_batch(self, batch: list) -> None:
        """One coalesced solve: group → recommend_many → fan out futures."""
        live = [request for request in batch if not request.future.done()]
        if not live:
            return  # every request abandoned (deadline) while queued
        self.n_batches += 1
        self.batch_sizes[len(live)] += 1
        groups: dict[tuple, list] = {}
        for request in live:
            groups.setdefault((request.k, request.exclude_rated),
                              []).append(request)
        loop = asyncio.get_running_loop()
        for (k, exclude_rated), requests in groups.items():
            users = [request.user for request in requests]
            excludes = [request.exclude for request in requests]
            try:
                ranked_lists = await loop.run_in_executor(
                    None, partial(self.engine.recommend_many, users, k=k,
                                  exclude_rated=exclude_rated,
                                  excludes=excludes)
                )
            except Exception as exc:  # engine failure fans out per request
                for request in requests:
                    if not request.future.done():
                        self.n_failed += 1
                        request.future.set_exception(exc)
                continue
            now = time.perf_counter()
            for request, ranked in zip(requests, ranked_lists):
                if request.future.done():
                    continue  # deadline fired mid-solve; discard the rows
                if isinstance(ranked, Exception):
                    # Per-position failure (the process fleet's degraded
                    # mode returns ShardUnavailableError at positions a
                    # down shard owns): only those requests fail; the
                    # rest of the cohort completes normally.
                    self.n_failed += 1
                    request.future.set_exception(ranked)
                    continue
                request.future.set_result(ranked)
                self.n_completed += 1
                self._record(now - request.enqueued)

    def _record(self, latency_s: float) -> None:
        """Append to the bounded latency ring (overwrites oldest)."""
        if len(self._latencies_s) < self.latency_window:
            self._latencies_s.append(latency_s)
        else:
            self._latencies_s[self._latency_cursor] = latency_s
            self._latency_cursor = (self._latency_cursor + 1) % self.latency_window

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently pending in the admission queue."""
        return self._queue.qsize() if self._queue is not None else 0

    def report(self) -> ServerReport:
        """Snapshot the lifetime accounting as a :class:`ServerReport`."""
        samples_ms = [1000.0 * s for s in self._latencies_s]
        return ServerReport(
            n_accepted=self.n_accepted,
            n_completed=self.n_completed,
            n_failed=self.n_failed,
            n_rejected_overload=self.n_rejected_overload,
            n_rejected_deadline=self.n_rejected_deadline,
            n_batches=self.n_batches,
            batch_sizes=dict(self.batch_sizes),
            latency_ms_p50=percentile(samples_ms, 50),
            latency_ms_p95=percentile(samples_ms, 95),
            latency_ms_p99=percentile(samples_ms, 99),
            latency_ms_mean=(sum(samples_ms) / len(samples_ms)
                             if samples_ms else 0.0),
            latency_ms_max=max(samples_ms, default=0.0),
            queue_depth=self.queue_depth,
            max_queue_depth=self.max_queue_depth,
            seconds=(time.perf_counter() - self._started_at
                     if self._started_at else 0.0),
        )

    def __repr__(self) -> str:
        return (
            f"BatchingServer(engine={type(self.engine).__name__}, "
            f"max_batch_size={self.max_batch_size}, "
            f"max_delay_ms={self.max_delay_ms}, max_queue={self.max_queue}, "
            f"running={self._running})"
        )


# -- HTTP binding ------------------------------------------------------------

_MAX_HEADER_BYTES = 16384


class HttpFrontend:
    """Minimal plain-asyncio HTTP/1.1 binding over a :class:`BatchingServer`.

    Endpoints (all GET, JSON responses):

    * ``/recommend?user=U[&k=K][&exclude_rated=true|false]``
      ``[&exclude=I1,I2,…][&timeout_ms=T]`` → ``{"user", "k", "items",
      "labels", "scores"}``, bit-identical to ``engine.recommend`` (JSON
      floats round-trip exactly — the parity the CLI self-test asserts).
    * ``/report`` → the server's :meth:`BatchingServer.report` summary.
    * ``/health`` → the engine's ``health()`` payload when it has one
      (per-shard state, restart counters), else ``{"status": "ok"}``.
      Skips the admission queue; answers **503** whenever the engine
      reports anything but ``"ok"`` — a degraded process fleet flips the
      probe while its healthy shards keep serving ``/recommend``.

    Typed errors map to status codes: bad parameters → 400, unknown
    user/path → 404, :class:`~repro.exceptions.OverloadedError` → 429,
    :class:`~repro.exceptions.ShardUnavailableError` → 503 (degraded
    fleet; the payload names the down shard),
    :class:`~repro.exceptions.DeadlineExceededError` → 504, anything
    else → 500. Connections are keep-alive unless the client sends
    ``Connection: close``. Deliberately stdlib-only: the transport is a
    demo/bench binding, the batching core is the product.
    """

    def __init__(self, server: BatchingServer, host: str = "127.0.0.1",
                 port: int = 0):
        if not isinstance(server, BatchingServer):
            raise ConfigError(
                f"HttpFrontend requires a BatchingServer; "
                f"got {type(server).__name__}"
            )
        self.server = server
        self.host = host
        self.port = check_non_negative_int(port, "port")
        self._asyncio_server: asyncio.AbstractServer | None = None

    async def start(self) -> "HttpFrontend":
        """Bind and listen; ``port=0`` picks an ephemeral port (see
        :attr:`port` afterwards for the actual one)."""
        if self._asyncio_server is not None:
            raise ConfigError("HTTP frontend already started")
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._asyncio_server is None:
            return
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        self._asyncio_server = None

    async def __aenter__(self) -> "HttpFrontend":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                        ConnectionError):
                    break
                if len(raw) > _MAX_HEADER_BYTES:
                    await self._respond(writer, 431, {
                        "error": "request header too large"}, close=True)
                    break
                head = raw.decode("latin-1").split("\r\n")
                parts = head[0].split()
                if len(parts) != 3:
                    await self._respond(writer, 400, {
                        "error": "malformed request line"}, close=True)
                    break
                method, target, _version = parts
                headers = {}
                for line in head[1:]:
                    if ":" in line:
                        name, value = line.split(":", 1)
                        headers[name.strip().lower()] = value.strip()
                close = headers.get("connection", "").lower() == "close"
                if method.upper() != "GET":
                    await self._respond(writer, 405, {
                        "error": f"method {method} not allowed; use GET"},
                        close=close)
                elif not await self._dispatch(writer, target, close):
                    break
                if close:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, writer, target: str, close: bool) -> bool:
        """Route one request; returns False when the connection must drop."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        if path == "/health":
            # Engines with a health hook (sharded tiers, the process
            # fleet) report per-shard state; a degraded fleet answers 503
            # so load balancers stop routing here while healthy shards
            # keep serving the /recommend traffic they own.
            probe = getattr(self.server.engine, "health", None)
            payload = probe() if callable(probe) else {"status": "ok"}
            status = 200 if payload.get("status") == "ok" else 503
            await self._respond(writer, status, payload, close=close)
            return True
        if path == "/report":
            await self._respond(writer, 200, self.server.report().summary(),
                                close=close)
            return True
        if path != "/recommend":
            await self._respond(writer, 404, {
                "error": f"unknown path {split.path!r}; use /recommend, "
                         "/report or /health"}, close=close)
            return True
        try:
            params = self._recommend_params(parse_qs(split.query))
        except ConfigError as exc:
            await self._respond(writer, 400, {"error": str(exc)}, close=close)
            return True
        try:
            ranked = await self.server.recommend(**params)
        except OverloadedError as exc:
            await self._respond(writer, 429, {"error": str(exc)}, close=close)
            return True
        except DeadlineExceededError as exc:
            await self._respond(writer, 504, {"error": str(exc)}, close=close)
            return True
        except ShardUnavailableError as exc:
            await self._respond(writer, 503, {"error": str(exc),
                                              "shard": exc.shard}, close=close)
            return True
        except ReproError as exc:
            status = 404 if "unknown user" in str(exc) else 400
            await self._respond(writer, status, {"error": str(exc)},
                                close=close)
            return True
        except Exception as exc:  # engine-side failure: 500, keep serving
            await self._respond(writer, 500, {"error": str(exc)}, close=close)
            return True
        await self._respond(writer, 200, {
            "user": params["user"],
            "k": params["k"],
            "items": [r.item for r in ranked],
            "labels": [str(r.label) for r in ranked],
            "scores": [r.score for r in ranked],
        }, close=close)
        return True

    @staticmethod
    def _recommend_params(query: dict) -> dict:
        """Parse/validate ``/recommend`` query parameters (ConfigError on bad)."""

        def single(name):
            values = query.get(name)
            if values is None:
                return None
            if len(values) != 1:
                raise ConfigError(f"parameter {name!r} given more than once")
            return values[0]

        raw_user = single("user")
        if raw_user is None:
            raise ConfigError("missing required parameter 'user'")
        try:
            user = int(raw_user)
        except ValueError:
            raise ConfigError(
                f"parameter 'user' must be an integer; got {raw_user!r}"
            ) from None
        params = {"user": user, "k": 10, "exclude_rated": True,
                  "exclude": None, "timeout_ms": None}
        raw_k = single("k")
        if raw_k is not None:
            try:
                params["k"] = int(raw_k)
            except ValueError:
                raise ConfigError(
                    f"parameter 'k' must be an integer; got {raw_k!r}"
                ) from None
        raw_flag = single("exclude_rated")
        if raw_flag is not None:
            flag = raw_flag.lower()
            if flag not in ("true", "false", "1", "0"):
                raise ConfigError(
                    f"parameter 'exclude_rated' must be true/false; "
                    f"got {raw_flag!r}"
                )
            params["exclude_rated"] = flag in ("true", "1")
        raw_exclude = single("exclude")
        if raw_exclude:
            try:
                params["exclude"] = [int(token)
                                     for token in raw_exclude.split(",")]
            except ValueError:
                raise ConfigError(
                    f"parameter 'exclude' must be comma-separated integers; "
                    f"got {raw_exclude!r}"
                ) from None
        raw_timeout = single("timeout_ms")
        if raw_timeout is not None:
            try:
                params["timeout_ms"] = float(raw_timeout)
            except ValueError:
                raise ConfigError(
                    f"parameter 'timeout_ms' must be a number; "
                    f"got {raw_timeout!r}"
                ) from None
        return params

    @staticmethod
    async def _respond(writer, status: int, payload: dict,
                       close: bool = False) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 429: "Too Many Requests",
                   431: "Request Header Fields Too Large",
                   500: "Internal Server Error",
                   503: "Service Unavailable", 504: "Gateway Timeout"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    def __repr__(self) -> str:
        return (
            f"HttpFrontend(host={self.host!r}, port={self.port}, "
            f"listening={self._asyncio_server is not None})"
        )

"""Serving layer: stateful engine, precomputed stores, cohort serving jobs.

Built on the batch scoring API (:meth:`repro.core.base.Recommender.score_users`
/ ``recommend_batch``): :class:`ServingEngine` loads a model artifact (or
wraps a fitted recommender), owns the warm scoring caches plus an LRU result
cache, and serves single queries and chunked cohorts with cache-hit stats;
:class:`TopKStore` precomputes every user's ranked list once and serves
``recommend(user, k)`` from a compact int32/float32 cache with exclusion
re-filtering; :func:`serve_user_cohort` streams a user cohort through the
batch path in bounded-memory chunks and reports throughput;
:class:`ShardPlan` / :class:`ShardedEngine` partition the graph by
connected component into a fleet of per-shard engines (score-exact for
the walk family) with label-routed updates, a fleet-level row cache and
merged :class:`FleetReport`\\ s; :class:`ProcessShardFleet` runs the same
fleet with one *worker process per shard* under a supervisor — health
checks, bounded-backoff restarts, a per-shard write-ahead log replayed on
recovery, and degraded serving (healthy shards keep answering while a dead
shard raises :class:`~repro.exceptions.ShardUnavailableError`), with
:class:`FaultSpec` scripting deterministic crashes for failure-injection
tests. ``python -m repro.cli fit`` / ``serve`` / ``serve-batch`` /
``shard-fit`` are the command-line fronts.
"""

from repro.service.engine import EngineReport, ServingEngine, UpdateReport
from repro.service.faults import CRASH_POINTS, FaultSpec
from repro.service.fleet import ProcessShardFleet
from repro.service.serving import (
    BatchServingReport,
    load_event_file,
    load_user_file,
    rows_from_ranked_arrays,
    serve_user_cohort,
)
from repro.service.server import (
    BatchingServer,
    HttpFrontend,
    ServerReport,
    percentile,
)
from repro.service.sharding import (
    EDGE_CUT_HINT,
    PARTITIONERS,
    SHARD_PLAN_FORMAT_VERSION,
    FleetReport,
    FleetUpdateReport,
    ShardedEngine,
    ShardPlan,
    validate_shard_events,
)
from repro.service.store import STORE_FORMAT_VERSION, TopKStore

__all__ = [
    "BatchServingReport",
    "BatchingServer",
    "CRASH_POINTS",
    "EDGE_CUT_HINT",
    "EngineReport",
    "FaultSpec",
    "PARTITIONERS",
    "FleetReport",
    "FleetUpdateReport",
    "HttpFrontend",
    "ProcessShardFleet",
    "ServerReport",
    "ServingEngine",
    "SHARD_PLAN_FORMAT_VERSION",
    "STORE_FORMAT_VERSION",
    "ShardPlan",
    "ShardedEngine",
    "TopKStore",
    "UpdateReport",
    "load_event_file",
    "load_user_file",
    "percentile",
    "rows_from_ranked_arrays",
    "serve_user_cohort",
    "validate_shard_events",
]

"""Batch serving layer: precomputed top-K stores and cohort serving jobs.

Built on the batch scoring API (:meth:`repro.core.base.Recommender.score_users`
/ ``recommend_batch``): :class:`TopKStore` precomputes every user's ranked
list once and serves ``recommend(user, k)`` from a compact int32/float32
cache with exclusion re-filtering; :func:`serve_user_cohort` streams a user
cohort through the batch path in bounded-memory chunks and reports
throughput. ``python -m repro.cli serve-batch`` is the command-line front.
"""

from repro.service.serving import (
    BatchServingReport,
    load_user_file,
    serve_user_cohort,
)
from repro.service.store import TopKStore

__all__ = [
    "BatchServingReport",
    "TopKStore",
    "load_user_file",
    "serve_user_cohort",
]

"""Stateful online serving: load an artifact once, answer requests warm.

:class:`ServingEngine` is the process-level object a serving deployment
keeps alive between requests. It owns:

* a fitted recommender — either passed in or loaded from a model artifact
  (:func:`repro.core.artifacts.load_artifact`), never refitted;
* the recommender's scoring-layer warm structures (the walk recommenders'
  :class:`~repro.graph.cache.TransitionCache` of prepared
  :class:`~repro.solver.WalkOperator`\\ s), which fill on first use and make
  repeated cohorts skip the sparse setup *and* the matrix validation;
* a bounded LRU **result cache** of ranked ``(items, scores)`` rows keyed by
  ``(user, k, exclude_rated)``, so a user served twice is answered from
  int64 arrays without touching the model at all — duplicates inside one
  cohort are deduplicated before solving and fanned back out;
* optionally an attached :class:`~repro.service.store.TopKStore` for
  microsecond single-user lookups with exclusion re-filtering;
* a worker pool (``n_workers``; threads by default, processes as a
  fallback) across which the *independent component-groups* of a cohort
  are dispatched — group solves share no walk structure, so scoring them
  concurrently is score-identical to one batch call.

Every cohort run returns an :class:`EngineReport` whose summary carries the
cache-hit statistics of both layers (entry counts included) plus per-stage
wall-clock timings (lookup / solve / assemble) — the observability needed
to size caches and worker pools and verify the fit-once/serve-many split
actually pays.

The engine is also the front of the **incremental update pipeline**:
:meth:`ServingEngine.apply_updates` absorbs a batch of
``(user, item, rating)`` events through
:meth:`RatingDataset.extend` → :meth:`Recommender.partial_fit` — new
users/items register live, walk graphs merge components via union-find,
scoring-cache entries over untouched components stay warm — then evicts
exactly the affected users' ranked lists, bumps the model version, and
reports everything in an :class:`UpdateReport`. A ``max_pending_events``
staleness bound triggers :meth:`consolidate` (full refit, compacting the
incrementally grown state). ``python -m repro.cli update`` replays an event
log against a saved artifact through this path.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.core.artifacts import load_artifact
from repro.core.base import Recommendation, Recommender
from repro.exceptions import ConfigError, NotFittedError
from repro.service.serving import _label_array, rows_from_ranked_arrays
from repro.service.store import TopKStore
from repro.utils.timer import Timer, per_second
from repro.utils.validation import (
    as_exclude_array,
    as_index_array,
    check_in_options,
    check_non_negative_int,
    check_positive_int,
)

__all__ = ["EngineReport", "UpdateReport", "ServingEngine"]


def _score_partition(recommender: Recommender, users: np.ndarray, k: int,
                     exclude_rated: bool) -> tuple[np.ndarray, np.ndarray]:
    """Worker task: ranked arrays for one cohort partition.

    Module-level so the process fallback can pickle it; walk recommenders
    drop their (unpicklable, rebuildable) transition cache on pickling.
    """
    return recommender.recommend_batch_arrays(users, k=k,
                                              exclude_rated=exclude_rated)


@dataclass
class EngineReport:
    """Outcome of one engine cohort run, with cache observability.

    Attributes
    ----------
    rows:
        One dict per (user, rank): ``user``, ``rank`` (1-based), ``item``,
        ``label``, ``score``.
    n_users, k, seconds:
        Cohort size, requested list length, wall-clock of the serving phase.
    n_solves:
        Users actually scored by the model this run (cohort size minus
        result-cache hits and in-cohort duplicates).
    n_workers:
        Size of the worker pool the solve stage ran on (1 = inline).
    result_cache_hits / result_cache_misses:
        Users answered from / inserted into the engine's result cache during
        this run (duplicates within a cohort count as hits).
    result_cache_entries / scoring_cache_entries:
        Sizes of the engine's result cache and of the recommender's
        scoring-layer cache at the end of the run — the live footprint the
        eviction bounds and the update pipeline's targeted invalidation act
        on.
    model_version:
        The engine's model version the run was served from (bumped by every
        applied update batch and by consolidation).
    scoring_cache:
        Hit/miss and operator counters of the recommender's scoring-layer
        cache at the end of the run (``{}`` when the algorithm has none).
    timings:
        Per-stage wall-clock seconds: ``lookup`` (result-cache resolution),
        ``solve`` (model scoring, across all workers), ``assemble`` (row
        materialisation).
    """

    rows: list = field(default_factory=list)
    n_users: int = 0
    k: int = 10
    seconds: float = 0.0
    n_solves: int = 0
    n_workers: int = 1
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    result_cache_entries: int = 0
    scoring_cache_entries: int = 0
    model_version: int = 1
    scoring_cache: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)

    @property
    def users_per_second(self) -> float:
        """Throughput of the run; 0.0 when the clock resolved no time.

        A fully warm cohort on a fast machine can complete within one timer
        tick, leaving ``seconds == 0``. Reporting ``inf`` there would leak
        ``Infinity`` through :meth:`summary` into ``json.dump`` (which
        happily writes invalid JSON), so :func:`~repro.utils.timer.per_second`
        clamps the degenerate case to 0.0 — "not measurable", never
        "infinitely fast".
        """
        return per_second(self.n_users, self.seconds)

    @property
    def result_cache_hit_rate(self) -> float:
        total = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / total if total else 0.0

    def summary(self) -> dict:
        """One summary row for reporting."""
        return {
            "users": self.n_users,
            "k": self.k,
            "seconds": round(self.seconds, 4),
            "users_per_sec": round(self.users_per_second, 1),
            "solves": self.n_solves,
            "workers": self.n_workers,
            "solve_s": round(self.timings.get("solve", 0.0), 4),
            "result_hits": self.result_cache_hits,
            "result_misses": self.result_cache_misses,
            "result_hit_rate": round(self.result_cache_hit_rate, 3),
            "result_entries": self.result_cache_entries,
            "scoring_hits": self.scoring_cache.get("hits", 0),
            "scoring_misses": self.scoring_cache.get("misses", 0),
            "scoring_entries": self.scoring_cache_entries,
            "version": self.model_version,
        }


@dataclass
class UpdateReport:
    """Outcome of one :meth:`ServingEngine.apply_updates` batch.

    Attributes
    ----------
    n_events, n_new_users, n_new_items, n_replaced:
        Shape of the applied :class:`~repro.data.dataset.DatasetDelta`
        (``n_replaced`` counts in-place re-rates of existing pairs).
    mode:
        The model's update mode: ``"incremental"`` (touched state refreshed
        in place), ``"refit"`` (the algorithm's fallback), or ``"none"``
        (empty batch — nothing changed).
    model_version:
        Engine model version *after* the update.
    n_affected_users:
        Users whose rankings may have changed (``None`` = all) — exactly the
        set evicted from the result cache.
    result_rows_evicted:
        Ranked lists dropped from the result cache by this update.
    store_detached:
        True when an attached :class:`TopKStore` was dropped because its
        precomputed lists predate the update (rebuild via ``build_store``).
    consolidated:
        True when this batch pushed ``pending_events`` over
        ``max_pending_events`` and the engine ran a full consolidation
        refit afterwards.
    pending_events:
        Events absorbed since the last full (re)fit, after this batch.
    seconds:
        Wall-clock of the whole update (delta build + partial_fit +
        eviction + consolidation when triggered).
    scoring_cache:
        The scoring-layer cache stats after the update — includes the
        targeted-invalidation counters (``invalidated_*`` / ``retained_*``).
    """

    n_events: int = 0
    n_new_users: int = 0
    n_new_items: int = 0
    n_replaced: int = 0
    mode: str = "none"
    model_version: int = 1
    n_affected_users: int | None = 0
    result_rows_evicted: int = 0
    store_detached: bool = False
    consolidated: bool = False
    pending_events: int = 0
    seconds: float = 0.0
    scoring_cache: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """One summary row for reporting."""
        return {
            "events": self.n_events,
            "new_users": self.n_new_users,
            "new_items": self.n_new_items,
            "replaced": self.n_replaced,
            "mode": self.mode,
            "version": self.model_version,
            "affected_users": ("all" if self.n_affected_users is None
                               else self.n_affected_users),
            "results_evicted": self.result_rows_evicted,
            "retained_groups": self.scoring_cache.get("retained_groups", 0),
            "consolidated": self.consolidated,
            "pending": self.pending_events,
            "seconds": round(self.seconds, 4),
        }


class ServingEngine:
    """Fit-once / serve-many front over a fitted recommender.

    Parameters
    ----------
    recommender:
        A fitted :class:`~repro.core.base.Recommender` (load one from disk
        with :meth:`from_artifact`).
    store:
        Optional precomputed :class:`TopKStore`; single-user queries go to it
        first when it is deep enough for the requested ``k``.
    store_exclude_rated:
        The ``exclude_rated`` setting the attached store was *built* with
        (default True, matching ``TopKStore.from_recommender``); the store
        only answers requests whose ``exclude_rated`` matches, so a store
        precomputed without exclusion can never leak rated items into an
        excluding request. :meth:`build_store` records this automatically.
    result_cache_size:
        Bound on cached ranked lists (LRU-evicted beyond it); ``0`` disables
        the result cache entirely (every request recomputes — useful for
        benchmarking the scoring layer in isolation).
    n_workers:
        Worker-pool size for the solve stage. With more than one worker, a
        cohort's uncached users are partitioned into independent
        component-groups (via the recommender's ``cohort_partitions`` hook
        when it has one, contiguous chunks otherwise) and scored
        concurrently. ``1`` (default) solves inline.
    worker_mode:
        ``"thread"`` (default — shares the warm caches, no serialization) or
        ``"process"`` (sidesteps the GIL for pure-python scoring at the cost
        of pickling the model per task; scoring caches are rebuilt per
        worker).
    max_pending_events:
        Staleness policy for the incremental update pipeline: once the
        events absorbed since the last full (re)fit reach this bound,
        :meth:`apply_updates` triggers :meth:`consolidate` — a full refit on
        the merged dataset that compacts the incrementally maintained
        state (component-label space, appended rows) and rebuilds the
        caches from scratch. ``None`` (default) never auto-consolidates.
    update_duplicates:
        Duplicate-pair policy handed to :meth:`RatingDataset.extend` by
        :meth:`apply_updates`: ``"last"`` (default — a re-rate overwrites,
        the natural live-traffic semantics) or ``"error"``.
    """

    def __init__(self, recommender: Recommender, store: TopKStore | None = None,
                 store_exclude_rated: bool = True,
                 result_cache_size: int = 65536,
                 n_workers: int = 1, worker_mode: str = "thread",
                 max_pending_events: int | None = None,
                 update_duplicates: str = "last"):
        if not isinstance(recommender, Recommender):
            raise ConfigError(
                f"ServingEngine requires a Recommender; got {type(recommender).__name__}"
            )
        if not recommender.is_fitted:
            raise NotFittedError(
                f"{type(recommender).__name__} must be fitted (or loaded from "
                "an artifact) before serving"
            )
        if store is not None and store.n_users != recommender.dataset.n_users:
            raise ConfigError(
                f"store has {store.n_users} users; model dataset has "
                f"{recommender.dataset.n_users}"
            )
        self.recommender = recommender
        self.store = store
        self.store_exclude_rated = bool(store_exclude_rated)
        self.result_cache_size = check_non_negative_int(
            result_cache_size, "result_cache_size"
        )
        self.n_workers = check_positive_int(n_workers, "n_workers")
        self.worker_mode = check_in_options(
            worker_mode, "worker_mode", ("thread", "process")
        )
        if max_pending_events is not None:
            max_pending_events = check_positive_int(
                max_pending_events, "max_pending_events"
            )
        self.max_pending_events = max_pending_events
        self.update_duplicates = check_in_options(
            update_duplicates, "update_duplicates", ("last", "error")
        )
        self.model_version = 1
        self.pending_events = 0
        self.last_update: UpdateReport | None = None
        self._results: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()  # guarded-by: engine._lock
        self._labels = _label_array(recommender.dataset.item_labels)
        self.result_cache_hits = 0  # guarded-by: engine._lock
        self.result_cache_misses = 0  # guarded-by: engine._lock
        self._stage_seconds: dict[str, float] = {}
        self._solves = 0  # guarded-by: engine._lock
        self._pool = None  # lazy persistent worker pool (see close())
        # Guards the result cache and its counters so concurrent recommend /
        # invalidate_user callers never corrupt the OrderedDict or lose
        # hit/miss increments; solves run outside the lock.
        self._lock = threading.RLock()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_artifact(cls, path: str, store_path: str | None = None,
                      mmap: bool = False, **kwargs) -> "ServingEngine":
        """Boot an engine from a saved model artifact (+ optional store).

        This is the online half of the offline-fit / online-serve split:
        ``repro.cli fit`` writes the artifact, ``repro.cli serve`` calls
        this. No training happens here. ``mmap=True`` memory-maps the
        artifact's arrays (and the store's, when given) copy-on-write
        instead of materialising them — boot cost drops to O(open) and
        engines in separate processes share the physical pages; rankings
        are bit-identical to an eager load (see
        :func:`~repro.core.artifacts.load_artifact`).
        """
        recommender = load_artifact(path, mmap=mmap)
        store = (TopKStore.load(store_path, mmap=mmap)
                 if store_path is not None else None)
        return cls(recommender, store=store, **kwargs)

    @property
    def dataset(self):
        return self.recommender.dataset

    # -- stage timing --------------------------------------------------------

    @contextmanager
    def _stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self._stage_seconds[name] = (
                self._stage_seconds.get(name, 0.0)
                + time.perf_counter() - start
            )

    # -- parallel solve ------------------------------------------------------

    def _partitions(self, users: np.ndarray) -> list[np.ndarray]:
        """Position arrays of independently solvable cohort slices."""
        partitions_hook = getattr(self.recommender, "cohort_partitions", None)
        if partitions_hook is not None:
            return [p for p in partitions_hook(users) if p.size]
        bounds = np.linspace(0, users.size, self.n_workers + 1, dtype=np.int64)
        return [np.arange(lo, hi, dtype=np.int64)
                for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]

    def _ensure_pool(self):
        """The engine-lifetime worker pool, created on first parallel solve."""
        if self._pool is None:
            pool_cls = (ThreadPoolExecutor if self.worker_mode == "thread"
                        else ProcessPoolExecutor)
            self._pool = pool_cls(max_workers=self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op when none was ever started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _score_users(self, users: np.ndarray, k: int, exclude_rated: bool,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Ranked arrays for uncached users, fanned across the worker pool.

        Workers receive user slices, not precomputed walk structure, so a
        parallel request re-derives each user's absorbing set inside its
        worker — an accepted duplication: the group-key memo makes the
        second grouping a dict lookup, and keeping the task payload to bare
        indices is what lets the process fallback ship partitions cheaply.
        """
        with self._lock:
            self._solves += int(users.size)
        if self.n_workers == 1 or users.size <= 1:
            return _score_partition(self.recommender, users, k, exclude_rated)
        partitions = self._partitions(users)
        if self.worker_mode == "process" and len(partitions) > self.n_workers:
            # Each process task pickles the whole model; cap the pickle count
            # at the pool size by folding partitions into n_workers buckets.
            buckets = [[] for _ in range(self.n_workers)]
            for index, positions in enumerate(
                    sorted(partitions, key=len, reverse=True)):
                buckets[index % self.n_workers].append(positions)
            partitions = [np.concatenate(bucket) for bucket in buckets if bucket]
        if len(partitions) <= 1:
            return _score_partition(self.recommender, users, k, exclude_rated)
        items = np.full((users.size, k), -1, dtype=np.int64)
        scores = np.full((users.size, k), -np.inf)
        pool = self._ensure_pool()
        futures = [
            (positions, pool.submit(_score_partition, self.recommender,
                                    users[positions], k, exclude_rated))
            for positions in partitions
        ]
        for positions, future in futures:
            part_items, part_scores = future.result()
            items[positions] = part_items
            scores[positions] = part_scores
        return items, scores

    # -- result cache --------------------------------------------------------

    def _cached_arrays(self, users: np.ndarray, k: int, exclude_rated: bool,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Ranked ``(items, scores)`` for ``users``, through the result cache.

        Uncached users are deduplicated and answered in one
        :meth:`_score_users` call; rows are then assembled in cohort order
        (duplicates fanned back out) from the cache.
        """
        if self.result_cache_size == 0:
            # No cache, but in-cohort duplicates are still solved once.
            unique, inverse = np.unique(users, return_inverse=True)
            with self._lock:
                self.result_cache_misses += int(unique.size)
                self.result_cache_hits += int(users.size - unique.size)
            with self._stage("solve"):
                items, scores = self._score_users(unique, k, exclude_rated)
            return items[inverse], scores[inverse]
        with self._stage("lookup"), self._lock:
            keys = [(int(u), k, exclude_rated) for u in users]
            missing: list[int] = []
            seen: set[tuple] = set()
            for user, key in zip(users, keys):
                if key in self._results:
                    self.result_cache_hits += 1
                elif key not in seen:
                    seen.add(key)
                    missing.append(int(user))
                    self.result_cache_misses += 1
                else:
                    self.result_cache_hits += 1  # duplicate within this cohort
        fresh: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        if missing:
            version = self.model_version
            cohort = np.asarray(missing, dtype=np.int64)
            with self._stage("solve"):
                new_items, new_scores = self._score_users(cohort, k, exclude_rated)
            for row, user in enumerate(missing):
                fresh[(user, k, exclude_rated)] = (new_items[row], new_scores[row])
            with self._lock:
                # Solves run outside the lock; if an update landed in the
                # meantime (version bumped, our users possibly evicted),
                # inserting would re-cache pre-update rows — `fresh` still
                # serves them this once, but they stay out of the cache.
                if self.model_version == version:
                    self._results.update(fresh)
                    while len(self._results) > self.result_cache_size:
                        self._results.popitem(last=False)
        with self._stage("lookup"), self._lock:
            items = np.full((users.size, k), -1, dtype=np.int64)
            scores = np.full((users.size, k), -np.inf)
            fallback: list[int] = []
            for row, key in enumerate(keys):
                entry = self._results.get(key)
                if entry is not None:
                    self._results.move_to_end(key)
                else:
                    entry = fresh.get(key)  # solved this call, not (re)cached
                    if entry is None:  # evicted (tiny cache) mid-call
                        fallback.append(row)
                        continue
                items[row], scores[row] = entry
        if fallback:
            rows = np.asarray(fallback, dtype=np.int64)
            with self._stage("solve"):
                fb_items, fb_scores = self._score_users(
                    users[rows], k, exclude_rated
                )
            items[rows] = fb_items
            scores[rows] = fb_scores
        return items, scores

    # -- serving -------------------------------------------------------------

    def recommend(self, user: int, k: int = 10, exclude_rated: bool = True,
                  exclude=None) -> list[Recommendation]:
        """Top-``k`` for one user, served as warm as possible.

        Resolution order: attached :class:`TopKStore` (when deep enough for
        ``k`` plus the exclusions and built with the same ``exclude_rated``
        semantics — see ``store_exclude_rated``), then the engine's result
        cache, then the model. ``exclude`` re-filters the ranked list the way
        the store does: banned items are dropped and next-ranked ones take
        their place.
        """
        dataset = self.dataset
        dataset._check_user(user)
        k = check_positive_int(k, "k")
        banned = as_exclude_array(exclude)
        if (self.store is not None
                and exclude_rated == self.store_exclude_rated
                and self.store.depth >= k + banned.size):
            return self.store.recommend(user, k, exclude=banned)
        items, scores = self._cached_arrays(
            np.array([user], dtype=np.int64), k + banned.size, exclude_rated
        )
        row_items, row_scores = items[0], scores[0]
        keep = row_items >= 0
        if banned.size:
            keep &= ~np.isin(row_items, banned)
        row_items, row_scores = row_items[keep][:k], row_scores[keep][:k]
        return [
            Recommendation(int(i), self._labels[int(i)], float(s))
            for i, s in zip(row_items, row_scores)
        ]

    def recommend_many(self, users, k: int = 10, exclude_rated: bool = True,
                       excludes=None) -> list[list[Recommendation]]:
        """A batch of independent single-user requests, coalesced per solve.

        The hook the micro-batching front end
        (:class:`~repro.service.server.BatchingServer`) fans a drained
        admission queue into: ``users`` is a sequence of user indices (one
        per request — duplicates legal) and ``excludes`` an optional
        parallel sequence of per-request exclusion sets. Responses are
        **bit-identical** to calling :meth:`recommend` once per request
        (asserted in the test suite): store-eligible requests go to the
        attached :class:`TopKStore` exactly as :meth:`recommend` routes
        them, and the rest are grouped by effective list depth
        (``k + len(exclude)``) so each group is one
        :meth:`_cached_arrays` call — the same call, with the same
        arguments, that :meth:`recommend` would make per user, but with
        the uncached users of the whole group answered in a single
        multi-RHS solve (in-group duplicates deduplicated by the result
        cache's lookup pass).
        """
        users = list(users)
        if excludes is None:
            excludes = [None] * len(users)
        else:
            excludes = list(excludes)
            if len(excludes) != len(users):
                raise ConfigError(
                    f"excludes has {len(excludes)} entries for "
                    f"{len(users)} users"
                )
        dataset = self.dataset
        k = check_positive_int(k, "k")
        banned = [as_exclude_array(exclude) for exclude in excludes]
        for user in users:
            dataset._check_user(user)
        out: list = [None] * len(users)
        by_depth: dict[int, list[int]] = {}
        for position, (user, bans) in enumerate(zip(users, banned)):
            if (self.store is not None
                    and exclude_rated == self.store_exclude_rated
                    and self.store.depth >= k + bans.size):
                out[position] = self.store.recommend(user, k, exclude=bans)
            else:
                by_depth.setdefault(k + int(bans.size), []).append(position)
        for depth, positions in by_depth.items():
            cohort = np.asarray([int(users[p]) for p in positions],
                                dtype=np.int64)
            items, scores = self._cached_arrays(cohort, depth, exclude_rated)
            for row, position in enumerate(positions):
                row_items, row_scores = items[row], scores[row]
                keep = row_items >= 0
                bans = banned[position]
                if bans.size:
                    keep &= ~np.isin(row_items, bans)
                row_items = row_items[keep][:k]
                row_scores = row_scores[keep][:k]
                out[position] = [
                    Recommendation(int(i), self._labels[int(i)], float(s))
                    for i, s in zip(row_items, row_scores)
                ]
        return out

    def _serve_cohort_arrays(self, users, k: int = 10, batch_size: int = 256,
                             exclude_rated: bool = True,
                             ) -> tuple[EngineReport, np.ndarray, np.ndarray,
                                        np.ndarray]:
        """Arrays-shaped core of :meth:`serve_cohort` (no row dicts).

        Returns ``(report, users, items, scores)``: an :class:`EngineReport`
        with empty ``rows`` covering the lookup/solve stages, the validated
        cohort, and the padded ranked arrays in cohort order. The sharded
        tier (:class:`~repro.service.sharding.ShardedEngine`) consumes this
        directly so it can remap shard-local item indices to the global
        catalogue and assemble the merged rows exactly once.
        """
        dataset = self.dataset
        k = check_positive_int(k, "k")
        batch_size = check_positive_int(batch_size, "batch_size")
        users = as_index_array(users, dataset.n_users, "users")
        report = EngineReport(n_users=int(users.size), k=k,
                              n_workers=self.n_workers)
        with self._lock:
            # One consistent snapshot: a concurrent cohort bumping the
            # counters mid-read must not skew this report's deltas.
            hits_before = self.result_cache_hits
            misses_before = self.result_cache_misses
            solves_before = self._solves
        self._stage_seconds = {}
        items = np.full((users.size, k), -1, dtype=np.int64)
        scores = np.full((users.size, k), -np.inf)
        with Timer() as timer:
            for start in range(0, users.size, batch_size):
                chunk = users[start:start + batch_size]
                items[start:start + batch_size], scores[start:start + batch_size] = (
                    self._cached_arrays(chunk, k, exclude_rated)
                )
        report.seconds = timer.elapsed
        with self._lock:
            report.n_solves = self._solves - solves_before
            report.result_cache_hits = self.result_cache_hits - hits_before
            report.result_cache_misses = (
                self.result_cache_misses - misses_before)
            report.result_cache_entries = len(self._results)
        report.scoring_cache = self.recommender.scoring_cache_stats() or {}
        report.scoring_cache_entries = report.scoring_cache.get("entries", 0)
        report.model_version = self.model_version
        report.timings = dict(self._stage_seconds)
        return report, users, items, scores

    def serve_cohort(self, users, k: int = 10, batch_size: int = 256,
                     exclude_rated: bool = True) -> EngineReport:
        """Serve a user cohort in bounded chunks through the warm caches.

        An empty cohort is legal (a report with zero users); cold-start
        users contribute no rows, matching ``recommend_batch``.
        """
        report, users, items, scores = self._serve_cohort_arrays(
            users, k=k, batch_size=batch_size, exclude_rated=exclude_rated
        )
        with Timer() as assemble_timer:
            report.rows = rows_from_ranked_arrays(
                users, items, scores, self._labels
            )
        report.timings["assemble"] = (
            report.timings.get("assemble", 0.0) + assemble_timer.elapsed
        )
        report.seconds += assemble_timer.elapsed
        return report

    def warm(self, users=None, k: int = 10, batch_size: int = 256) -> EngineReport:
        """Pre-fill the caches (default: every user) before taking traffic."""
        if users is None:
            users = np.arange(self.dataset.n_users, dtype=np.int64)
        return self.serve_cohort(users, k=k, batch_size=batch_size)

    # -- incremental updates --------------------------------------------------

    def apply_updates(self, events, duplicates: str | None = None) -> UpdateReport:
        """Absorb ``(user_label, item_label, rating)`` events without a refit.

        The end-to-end incremental pipeline in one call: the fitted dataset
        is extended (new users/items register rows/columns;
        ``update_duplicates`` governs re-rates), the model's
        :meth:`~repro.core.base.Recommender.partial_fit` refreshes derived
        state for the touched nodes with targeted scoring-cache
        invalidation, and the engine evicts **only the affected users'**
        ranked lists from its result cache — everything else keeps serving
        warm, bit-identical to a from-scratch refit on the merged data (the
        parity contract asserted in the test suite). An attached
        :class:`TopKStore` predates the update and is detached (rebuild via
        :meth:`build_store` when wanted). When ``max_pending_events`` is set
        and the absorbed-event count reaches it, the engine runs
        :meth:`consolidate` before returning.

        Not thread-safe against concurrent serving: updates are a
        single-writer operation, matching the one-writer/many-readers
        deployment shape.
        """
        events = list(events)
        report = UpdateReport(mode="none", model_version=self.model_version,
                              pending_events=self.pending_events)
        if not events:
            self.last_update = report
            return report
        with Timer() as timer:
            delta = self.dataset.extend(
                events, duplicates=duplicates or self.update_duplicates
            )
            fit_report = self.recommender.partial_fit(delta)
            self._labels = _label_array(self.dataset.item_labels)
            # Bump the version BEFORE evicting: a concurrent solve that
            # finished against the old model gates its cache insert on the
            # version it captured, so bump-then-evict leaves no window in
            # which stale rows can slip in after the eviction sweep.
            self.model_version += 1
            report.result_rows_evicted = self._evict_results(
                fit_report.affected_users
            )
            if self.store is not None:
                self.store = None
                report.store_detached = True
            if fit_report.mode == "refit":
                # The fallback already refit on the merged dataset — that IS
                # a consolidation; restarting the staleness clock avoids an
                # immediate redundant second fit at the threshold.
                self.pending_events = 0
            else:
                self.pending_events += delta.n_events
                if (self.max_pending_events is not None
                        and self.pending_events >= self.max_pending_events):
                    self.consolidate()
                    report.consolidated = True
        report.n_events = delta.n_events
        report.n_new_users = delta.n_new_users
        report.n_new_items = delta.n_new_items
        report.n_replaced = delta.n_replaced
        report.mode = fit_report.mode
        report.model_version = self.model_version
        report.n_affected_users = fit_report.n_affected_users
        report.pending_events = self.pending_events
        report.seconds = timer.elapsed
        report.scoring_cache = self.recommender.scoring_cache_stats() or {}
        self.last_update = report
        return report

    def consolidate(self) -> None:
        """Full refit on the merged dataset — the staleness-policy backstop.

        Incremental updates keep serving bit-identically, but they
        accumulate debris a refit compacts: non-contiguous component
        labels, appended derived-state rows, invalidation-scarred caches.
        Consolidation re-runs ``fit`` on the (already merged) dataset and
        drops both cache layers, leaving the engine exactly as if freshly
        booted from a refit artifact. Runs inline; schedule it off-peak or
        bound it with ``max_pending_events``.
        """
        self.recommender.fit(self.recommender.dataset)
        self.model_version += 1  # before the sweep; see apply_updates
        self._evict_results(None)
        self.pending_events = 0

    def _evict_results(self, affected_users: np.ndarray | None) -> int:
        """Drop affected users' ranked lists; ``None`` clears everything."""
        with self._lock:
            if affected_users is None:
                evicted = len(self._results)
                self._results.clear()
                return evicted
            affected = set(int(u) for u in affected_users)
            stale = [key for key in self._results if key[0] in affected]
            for key in stale:
                del self._results[key]
            return len(stale)

    # -- store management ----------------------------------------------------

    def build_store(self, depth: int = 50, batch_size: int = 256,
                    exclude_rated: bool = True) -> TopKStore:
        """Precompute and attach a :class:`TopKStore` for single-user traffic.

        Records ``exclude_rated`` so :meth:`recommend` only routes to the
        store requests with matching exclusion semantics.
        """
        self.store = TopKStore.from_recommender(
            self.recommender, depth=depth, batch_size=batch_size,
            exclude_rated=exclude_rated,
        )
        self.store_exclude_rated = bool(exclude_rated)
        return self.store

    # -- introspection -------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop both cache layers: the result cache *and* the model's
        scoring-layer cache (transition matrices, prepared operators) — a
        running engine can now shed all warm state without being discarded.
        """
        with self._lock:
            self._results.clear()
            self.result_cache_hits = 0
            self.result_cache_misses = 0
        self.recommender.clear_scoring_cache()

    def invalidate_user(self, user: int) -> int:
        """Evict one user's ranked lists from the result cache.

        Removes every cached ``(user, k, exclude_rated)`` variant; returns
        the number of entries dropped. The next request for the user is
        re-scored through the (still warm) scoring layer — the hook for
        out-of-band signals ("this user just consumed an item") that don't
        warrant a model update.
        """
        self.dataset._check_user(user)
        with self._lock:
            stale = [key for key in self._results if key[0] == int(user)]
            for key in stale:
                del self._results[key]
            return len(stale)

    def health(self) -> dict:
        """Liveness in the shape the HTTP ``/health`` probe serves.

        A single in-process engine is healthy whenever it can run at all;
        the hook exists so every engine flavour (single, in-process fleet,
        process fleet) answers the same probe — the process fleet's
        version reports real per-shard up/down state and degrades the
        HTTP status to 503.
        """
        return {"status": "ok", "shards": []}

    def stats(self) -> dict:
        """Lifetime cache counters of both layers plus store presence."""
        with self._lock:
            return {
                "result_entries": len(self._results),
                "result_hits": self.result_cache_hits,
                "result_misses": self.result_cache_misses,
                "solves": self._solves,
                "workers": self.n_workers,
                "worker_mode": self.worker_mode,
                "scoring_cache": self.recommender.scoring_cache_stats() or {},
                "store_attached": self.store is not None,
                "model_version": self.model_version,
                "pending_events": self.pending_events,
            }

    def __repr__(self) -> str:
        with self._lock:
            cached = len(self._results)
        return (
            f"ServingEngine(algorithm={self.recommender.name!r}, "
            f"cached_results={cached}, "
            f"workers={self.n_workers}, "
            f"store={'yes' if self.store is not None else 'no'})"
        )

"""Precomputed top-K recommendation store for online serving.

The paper's Table 5 argument is that Absorbing Time/Cost ranking is cheap
enough to serve online; this module takes the next step a production system
would: *precompute* each user's top-K once (through the batch scoring path)
and answer ``recommend(user, k)`` from a compact in-memory cache — int32 item
ids and float32 scores, ~``(4 + 4) · K`` bytes per user — with no model in
the request path at all.

Because the cached list is ranked once and never re-sorted, serving is a
slice plus an optional *exclusion re-filter*: items the user consumed since
the precompute (or that the caller bans for any other reason) are dropped
and the next-ranked cached items take their place. Build the store with a
``depth`` comfortably above the serving ``k`` so the re-filter never runs
out of candidates.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Recommendation, Recommender
from repro.data.dataset import labels_from_json, labels_to_json
from repro.exceptions import ArtifactError, ConfigError, NotFittedError, UnknownUserError
from repro.utils.atomic import atomic_savez
from repro.utils.validation import as_exclude_array, check_positive_int, is_index

__all__ = ["TopKStore", "STORE_FORMAT_VERSION"]

#: On-disk format version of saved stores; bump on any layout change. A
#: loaded store whose version is absent or unsupported raises
#: :class:`~repro.exceptions.ArtifactError` — serving stale indices from an
#: incompatible precompute must fail loudly, never silently. Version 2
#: stores members uncompressed so :meth:`TopKStore.load` can memory-map
#: the ranked arrays; version-1 (compressed) stores still load eagerly.
STORE_FORMAT_VERSION = 2

_LEGACY_STORE_FORMAT_VERSION = 1


class TopKStore:
    """Compact precomputed top-K lists, one per user.

    Parameters
    ----------
    items:
        ``(n_users, depth)`` int array of ranked item indices, ``-1`` padding
        where a user's list is shorter than ``depth`` (cold start, ``-inf``
        scores). Padding must be trailing.
    scores:
        Array of the same shape with the score of each cached item (value at
        a padding slot is ignored).
    item_labels:
        External label per catalogue item, used to materialise
        :class:`~repro.core.base.Recommendation` objects at serve time.

    Use :meth:`from_recommender` to build one from any fitted
    :class:`~repro.core.base.Recommender`.
    """

    def __init__(self, items: np.ndarray, scores: np.ndarray, item_labels):
        items = np.asarray(items, dtype=np.int32)
        scores = np.asarray(scores, dtype=np.float32)
        if items.ndim != 2:
            raise ConfigError(f"items must be 2-D; got ndim={items.ndim}")
        if items.shape != scores.shape:
            raise ConfigError(
                f"items shape {items.shape} != scores shape {scores.shape}"
            )
        self.item_labels = tuple(item_labels)
        if items.size and items.max() >= len(self.item_labels):
            raise ConfigError("items contains indices beyond the item catalogue")
        valid = items >= 0
        if np.any(valid[:, 1:] & ~valid[:, :-1]):
            raise ConfigError("padding (-1) must be trailing in every row")
        self._items = items
        self._scores = scores
        self._lengths = valid.sum(axis=1).astype(np.int32)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_recommender(cls, recommender: Recommender, depth: int = 50,
                         batch_size: int = 256,
                         exclude_rated: bool = True) -> "TopKStore":
        """Precompute every user's top-``depth`` list via the batch path.

        Parameters
        ----------
        recommender:
            A fitted recommender; cohorts of ``batch_size`` users are scored
            through :meth:`~repro.core.base.Recommender.recommend_batch`.
        depth:
            K, the cached list length. Serve-time exclusions eat into it, so
            size it above the largest ``k`` you will serve plus the number of
            exclusions you expect between store rebuilds.
        """
        if not recommender.is_fitted:
            raise NotFittedError(
                f"{type(recommender).__name__} must be fitted before building a TopKStore"
            )
        depth = check_positive_int(depth, "depth")
        batch_size = check_positive_int(batch_size, "batch_size")
        dataset = recommender.dataset
        items = np.full((dataset.n_users, depth), -1, dtype=np.int32)
        scores = np.zeros((dataset.n_users, depth), dtype=np.float32)
        for start in range(0, dataset.n_users, batch_size):
            cohort = np.arange(start, min(start + batch_size, dataset.n_users))
            chunk_items, chunk_scores = recommender.recommend_batch_arrays(
                cohort, k=depth, exclude_rated=exclude_rated
            )
            items[cohort] = chunk_items
            # Padding slots carry -inf in the ranked arrays; the store's
            # convention is "ignored", so zero them for a clean float32 file.
            chunk_scores[chunk_items < 0] = 0.0
            scores[cohort] = chunk_scores
        return cls(items, scores, dataset.item_labels)

    # -- shape --------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return self._items.shape[0]

    @property
    def depth(self) -> int:
        """K, the cached list length."""
        return self._items.shape[1]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the cached arrays."""
        return self._items.nbytes + self._scores.nbytes

    def list_length(self, user: int) -> int:
        """Number of cached (non-padding) entries for ``user``."""
        self._check_user(user)
        return int(self._lengths[user])

    def coverage(self, k: int = 10) -> float:
        """Fraction of users whose cached list is at least ``k`` deep.

        ``k`` greater than :attr:`depth` is honestly 0.0 — no user can be
        served ``k`` items from this store; rebuild with a larger depth.
        """
        k = check_positive_int(k, "k")
        return float((self._lengths >= k).mean())

    def _check_user(self, user: int) -> None:
        if not is_index(user, self.n_users):
            raise UnknownUserError(user)

    # -- serving ------------------------------------------------------------

    def recommend(self, user: int, k: int = 10,
                  exclude=None) -> list[Recommendation]:
        """Top-``k`` for ``user`` from the cache, after exclusion re-filtering.

        ``exclude`` is an optional iterable of item indices to drop (items
        consumed since the precompute, stock-outs, …); the next-ranked cached
        items fill the gap. The list may be shorter than ``k`` when the cache
        runs out — rebuild with a larger ``depth`` if that happens in
        practice.
        """
        self._check_user(user)
        k = check_positive_int(k, "k")
        length = int(self._lengths[user])
        row_items = self._items[user, :length]
        row_scores = self._scores[user, :length]
        banned = as_exclude_array(exclude)
        if banned.size:
            keep = ~np.isin(row_items, banned)
            row_items = row_items[keep]
            row_scores = row_scores[keep]
        return [
            Recommendation(int(item), self.item_labels[int(item)], float(score))
            for item, score in zip(row_items[:k], row_scores[:k])
        ]

    def recommend_items(self, user: int, k: int = 10, exclude=None) -> np.ndarray:
        """Like :meth:`recommend` but returning just the item-index array."""
        return np.array(
            [r.item for r in self.recommend(user, k, exclude=exclude)],
            dtype=np.int64,
        )

    # -- persistence --------------------------------------------------------

    @staticmethod
    def _npz_path(path: str) -> str:
        # numpy's savez appends ".npz" to extension-less paths; normalise on
        # both sides so save("cache") / load("cache") round-trip.
        return path if path.endswith(".npz") else path + ".npz"

    def save(self, path: str) -> str:
        """Persist the store as an uncompressed, mappable ``.npz`` archive.

        The file carries :data:`STORE_FORMAT_VERSION`; :meth:`load` refuses
        any version it cannot read. The write is atomic (temp path +
        ``os.replace``), so a crash mid-save never leaves a torn cache.
        Returns the path written (``.npz`` appended when missing).
        """
        path = self._npz_path(path)
        atomic_savez(path, {
            "format_version": np.array(STORE_FORMAT_VERSION, dtype=np.int64),
            "items": self._items,
            "scores": self._scores,
            "item_labels": labels_to_json(self.item_labels),
        })
        return path

    @classmethod
    def load(cls, path: str, mmap: bool = False) -> "TopKStore":
        """Reload a store written by :meth:`save`.

        ``mmap=True`` maps the ranked ``items``/``scores`` arrays
        copy-on-write instead of materialising them (version-2 stores
        only; a compressed version-1 store loads eagerly either way) —
        engines across processes then share one physical copy of the
        precompute. Raises :class:`~repro.exceptions.ArtifactError` when
        the file lacks a format version (pre-versioning cache) or carries
        one this build cannot read — a stale precompute must be rebuilt,
        not served. Labels are JSON-encoded, so loading never unpickles
        anything.
        """
        npz_path = cls._npz_path(path)
        try:
            archive_ctx = np.load(npz_path, allow_pickle=False)
        except OSError as exc:
            raise ArtifactError(
                f"cannot read top-K store {npz_path!r}: {exc}"
            ) from exc
        except ValueError as exc:
            raise ArtifactError(
                f"{npz_path!r} is not a valid top-K store archive: {exc}"
            ) from exc
        with archive_ctx as archive:
            if "format_version" not in archive.files:
                raise ArtifactError(
                    f"{path!r} has no store format version (stale pre-versioning "
                    "cache?); rebuild it with TopKStore.from_recommender"
                )
            version = int(archive["format_version"])
            if version not in (STORE_FORMAT_VERSION,
                               _LEGACY_STORE_FORMAT_VERSION):
                raise ArtifactError(
                    f"{path!r} has store format version {version}; this build "
                    f"reads {STORE_FORMAT_VERSION} — rebuild the cache"
                )
            if mmap and version == STORE_FORMAT_VERSION:
                from repro.core.artifacts import _map_members

                members = _map_members(npz_path, archive.zip)
                return cls(members["items"], members["scores"],
                           labels_from_json(members["item_labels"]))
            return cls(archive["items"], archive["scores"],
                       labels_from_json(archive["item_labels"]))

    def __repr__(self) -> str:
        return (
            f"TopKStore(n_users={self.n_users}, depth={self.depth}, "
            f"nbytes={self.nbytes})"
        )

"""End-to-end batch serving: score a cohort of users in chunks.

This is the glue between the vectorised scoring layer
(:meth:`~repro.core.base.Recommender.recommend_batch`) and an offline
serving job: take a user cohort, stream it through the batch path in
fixed-size chunks (bounding the dense walk-vector memory), and report both
the ranked lists and the achieved throughput. ``repro.cli serve-batch``
wraps this for the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Recommender
from repro.exceptions import ConfigError, DataFormatError
from repro.utils.timer import Timer, per_second
from repro.utils.validation import as_index_array, check_positive_int

__all__ = ["BatchServingReport", "serve_user_cohort", "load_user_file",
           "load_event_file", "rows_from_ranked_arrays"]


def rows_from_ranked_arrays(users: np.ndarray, items: np.ndarray,
                            scores: np.ndarray,
                            item_labels: np.ndarray) -> list[dict]:
    """Bulk-build (user, rank, item, label, score) row dicts.

    ``items``/``scores`` are the padded ``(len(users), k)`` matrices of
    :meth:`~repro.core.base.Recommender.recommend_batch_arrays`;
    ``item_labels`` is an object array over the catalogue. The flattening,
    padding filter and label gather are all vectorised — only the final dict
    materialisation touches Python objects, once per emitted row.
    """
    n, k = items.shape
    keep = (items >= 0).ravel()
    user_column = np.repeat(np.asarray(users, dtype=np.int64), k)[keep]
    rank_column = np.tile(np.arange(1, k + 1, dtype=np.int64), n)[keep]
    item_column = items.ravel()[keep]
    score_column = scores.ravel()[keep]
    label_column = item_labels[item_column]
    return [
        {"user": int(u), "rank": int(r), "item": int(i), "label": l,
         "score": float(s)}
        for u, r, i, l, s in zip(user_column, rank_column, item_column,
                                 label_column, score_column)
    ]


def _label_array(item_labels) -> np.ndarray:
    arr = np.empty(len(item_labels), dtype=object)
    arr[:] = list(item_labels)
    return arr


@dataclass
class BatchServingReport:
    """Outcome of one batch serving run.

    Attributes
    ----------
    rows:
        One dict per (user, rank): ``user``, ``rank`` (1-based), ``item``,
        ``label``, ``score`` — ready for ``write_csv`` / ``format_table``.
    n_users:
        Cohort size served.
    n_solves:
        Distinct users actually scored — repeated user ids are solved once
        and fanned out, so this is ``len(set(users))``.
    seconds:
        Wall-clock time of the scoring phase only (fitting excluded).
    k:
        Requested list length.
    """

    rows: list = field(default_factory=list)
    n_users: int = 0
    n_solves: int = 0
    seconds: float = 0.0
    k: int = 10

    @property
    def users_per_second(self) -> float:
        """Throughput of the run; 0.0 when the clock resolved no time
        (:func:`~repro.utils.timer.per_second` — ``inf`` would corrupt JSON
        summaries)."""
        return per_second(self.n_users, self.seconds)

    @property
    def mean_user_milliseconds(self) -> float:
        return 1000.0 * self.seconds / self.n_users if self.n_users else 0.0

    def summary(self) -> dict:
        """One summary row for reporting."""
        return {
            "users": self.n_users,
            "k": self.k,
            "seconds": round(self.seconds, 4),
            "users_per_sec": round(self.users_per_second, 1),
            "ms_per_user": round(self.mean_user_milliseconds, 3),
            "solves": self.n_solves,
        }


def serve_user_cohort(recommender: Recommender, users, k: int = 10,
                      batch_size: int = 256,
                      exclude_rated: bool = True) -> BatchServingReport:
    """Serve top-``k`` lists for a user cohort through the batch path.

    Repeated user ids are solved once and their rows fanned back out in
    cohort order (``report.n_solves`` counts the distinct solves). The
    deduplicated cohort is processed in chunks of ``batch_size`` so the
    dense multi-RHS walk matrices stay bounded at
    ``n_subgraph_nodes × batch_size`` floats regardless of cohort size.
    """
    dataset = recommender._require_fitted()
    k = check_positive_int(k, "k")
    batch_size = check_positive_int(batch_size, "batch_size")
    users = as_index_array(users, dataset.n_users, "users")

    unique_users, inverse = np.unique(users, return_inverse=True)
    report = BatchServingReport(n_users=int(users.size),
                                n_solves=int(unique_users.size), k=k)
    labels = _label_array(dataset.item_labels)
    with Timer() as timer:
        items = np.empty((unique_users.size, k), dtype=np.int64)
        scores = np.empty((unique_users.size, k))
        for start in range(0, unique_users.size, batch_size):
            chunk = unique_users[start:start + batch_size]
            items[start:start + batch_size], scores[start:start + batch_size] = (
                recommender.recommend_batch_arrays(
                    chunk, k=k, exclude_rated=exclude_rated
                )
            )
        report.rows = rows_from_ranked_arrays(
            users, items[inverse], scores[inverse], labels
        )
    report.seconds = timer.elapsed
    return report


def load_event_file(path: str) -> list[tuple[str, str, float]]:
    """Parse a rating-event log: ``user_label item_label rating`` per line.

    Tokens are whitespace-separated (labels therefore cannot contain
    whitespace); blank lines and ``#`` comments are ignored. Labels are kept
    as strings — matching how the CLI-fitted synthetic datasets (and any
    CSV-loaded data) label users/items; datasets with non-string labels are
    updated through the Python API instead. Unknown labels are *not* an
    error: they register new users/items when the events are applied.
    """
    events: list[tuple[str, str, float]] = []
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise DataFormatError(
                    f"{path}:{lineno}: expected 'user item rating', got {line!r}"
                )
            try:
                rating = float(parts[2])
            except ValueError:
                raise DataFormatError(
                    f"{path}:{lineno}: expected a numeric rating, got {parts[2]!r}"
                ) from None
            events.append((parts[0], parts[1], rating))
    if not events:
        raise DataFormatError(f"{path}: no rating events found")
    return events


def load_user_file(path: str, n_users: int) -> np.ndarray:
    """Parse a cohort file: one user index per line.

    Blank lines and ``#`` comments are ignored; indices must be integers in
    ``[0, n_users)``. Duplicates are kept (a cohort may legitimately repeat a
    user).
    """
    indices: list[int] = []
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                indices.append(int(line))
            except ValueError:
                raise DataFormatError(
                    f"{path}:{lineno}: expected a user index, got {line!r}"
                ) from None
    if not indices:
        raise DataFormatError(f"{path}: no user indices found")
    try:
        return as_index_array(np.array(indices), n_users, "users")
    except ConfigError as exc:
        raise DataFormatError(f"{path}: {exc}") from None

"""Component-sharded serving tier: one engine per graph partition.

The paper's walk recommenders (Eq. 7–10) score strictly *within* a user's
connected component — a walk can never leave it, items outside it score
``-inf``. The user–item graph therefore partitions naturally into
independent shards, and a serving deployment can split one big engine into
a fleet of small ones with **zero loss of ranking quality** for the walk
family:

* :class:`ShardPlan` partitions a :class:`~repro.data.RatingDataset` by
  connected component into balanced shards — greedy bin-packing on
  component nnz (the walk-solve cost measure), users/items re-indexed per
  shard with label-preserving maps, saved/loaded as a versioned ``.npz``;
* :class:`ShardedEngine` owns one :class:`~repro.service.ServingEngine`
  per shard and routes every request to the owning shard:
  ``recommend(user)`` by the user's shard, ``serve_cohort`` by splitting
  the cohort and merging ranked arrays back in cohort order, and
  ``apply_updates`` by event label (events on known users/items go to
  their shard, events introducing brand-new labels go to the least-loaded
  shard). Per-shard artifacts reuse :mod:`repro.core.artifacts`
  (``fit`` → ``save`` → ``from_directory``, no refitting);
* :class:`FleetReport` / :class:`FleetUpdateReport` merge the per-shard
  :class:`~repro.service.EngineReport` / :class:`~repro.service.UpdateReport`
  objects into one fleet-level summary with per-shard breakdowns.

Why shard at all? Besides being the load-bearing step toward multi-process
and multi-host serving (each shard is an independent, individually
persistable unit with its own caches and update stream), sharding shrinks
the serving working set: a cohort's dense score matrix is
``batch × shard_items`` instead of ``batch × all_items``, so cold solves
allocate and scan less memory (measured in ``benchmarks/bench_sharded.py``).

**Semantics caveat.** Routing a user to their component's shard is
score-exact for component-local scorers (the walk family: AT, AC1, AC2,
HT, and the graph baselines). Globally coupled algorithms (MostPopular,
PureSVD, kNN, LDA) rank only the shard's items when sharded — candidates
outside the user's component disappear. That is a *semantics change* for
those baselines; shard them only when per-tenant catalogues are the intent
(the federated-shards deployment shape).

**Cross-shard updates.** On a component plan, a rating event joining a
user in shard A to an item in shard B would merge two components across
shard boundaries; no single engine can absorb it.
:meth:`ShardedEngine.apply_updates` detects this and raises
:class:`~repro.exceptions.ConfigError` naming the offending edge — the
remedy is a re-plan (``repro.cli shard-fit``, ideally with
``--partitioner edge-cut``), not a silent wrong routing.

**Edge-cut plans with k-hop halos.** A realistic MovieLens-shaped graph
has one giant component, so component sharding degenerates to a single
shard. :meth:`ShardPlan.build_edge_cut` splits components by a greedy
balanced edge-cut (seeded BFS growth + boundary vertex moves minimising
cut nnz under an LPT-style balance constraint) and attaches to each shard
the **k-hop halo** of ghost users/items around its owned nodes. Each
shard's dataset keeps the ghost rows and tracks the rating mass of edges
severed at the halo boundary as a *degree deficit*
(:meth:`~repro.data.RatingDataset.subset` with
``track_cut_degrees=True``), so the shard's walk operator divides by
global degrees and boundary rows absorb leaked mass exactly instead of
renormalising it — the τ-truncated walk then matches the unsharded solve
bit-for-bit wherever the halo saturates the walk's reach, and is a
one-sided bounded-error underestimate otherwise (DESIGN.md §12). Events
whose endpoints are co-located in at least one shard apply exactly (the
frozen deficit stays correct); updates that only some replicas see leave
those ghost copies stale, surfaced via ``FleetUpdateReport.hint``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy.sparse.csgraph import breadth_first_order

from repro.core.base import Recommendation, Recommender
from repro.data.dataset import RatingDataset
from repro.exceptions import (
    ArtifactError,
    ConfigError,
    DataError,
    UnknownItemError,
    UnknownUserError,
)
from repro.graph.bipartite import UserItemGraph
from repro.service.engine import EngineReport, ServingEngine, UpdateReport
from repro.service.serving import _label_array, rows_from_ranked_arrays
from repro.utils.atomic import atomic_savez
from repro.utils.timer import Timer, per_second
from repro.utils.validation import (
    as_exclude_array,
    as_index_array,
    check_in_options,
    check_non_negative_int,
    check_positive_int,
    is_index,
)

__all__ = [
    "SHARD_PLAN_FORMAT_VERSION",
    "PARTITIONERS",
    "EDGE_CUT_HINT",
    "ShardPlan",
    "FleetReport",
    "FleetUpdateReport",
    "ShardedEngine",
    "validate_shard_events",
]

#: On-disk format version of saved shard plans; bump on any layout change.
#: A plan whose version is absent or different raises
#: :class:`~repro.exceptions.ArtifactError` — routing traffic through a
#: stale partition must fail loudly, never silently. Version 2 added the
#: edge-cut partitioner's halo metadata (ghost users/items per shard,
#: ``halo_hops``, ``partitioner``); version-1 files predate halos and are
#: rejected rather than silently served without ghost translation.
SHARD_PLAN_FORMAT_VERSION = 2

_PLAN_FILENAME = "plan.npz"

#: The partition strategies a plan can carry.
PARTITIONERS = ("component", "edge-cut")

#: Hint appended to cross-shard rejection errors and stale-halo reports.
EDGE_CUT_HINT = (
    "re-plan with `repro shard-fit --partitioner edge-cut --halo-hops K` "
    "on the merged data"
)


def _shard_artifact_name(shard: int) -> str:
    return f"shard-{shard:03d}.npz"


def validate_shard_events(dataset: RatingDataset, events,
                          policy: str) -> None:
    """Validate one shard's event slice against its dataset, mutating nothing.

    The shared pre-pass both fleet tiers run before any shard absorbs a
    batch (see :meth:`ShardedEngine.apply_updates`): rating values checked
    against the dataset's scale via
    :meth:`~repro.data.RatingDataset.check_event_rating`, and under
    ``policy == "error"`` duplicate pairs — within the batch or against
    already-stored ratings — rejected with the same
    :class:`~repro.exceptions.DataError` shapes :meth:`RatingDataset.extend`
    would raise. The multi-process fleet additionally runs it worker-side
    before a batch enters the write-ahead log, so the WAL only ever holds
    batches that are guaranteed to replay cleanly.
    """
    seen: set = set()
    for user_label, item_label, rating in events:
        dataset.check_event_rating(user_label, item_label, rating)
        if policy != "error":
            continue
        pair = (user_label, item_label)
        if pair in seen:
            raise DataError(
                f"duplicate event for (user={user_label!r}, "
                f"item={item_label!r}); pass duplicates='last' to keep "
                "the latest value"
            )
        seen.add(pair)
        try:
            already = dataset.rating(dataset.user_id(user_label),
                                     dataset.item_id(item_label)) != 0
        except (UnknownUserError, UnknownItemError):
            already = False
        if already:
            raise DataError(
                f"(user={user_label!r}, item={item_label!r}) is already "
                "rated; pass duplicates='last' to overwrite"
            )


def _concat_ragged(arrays: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a list of int arrays as (values, offsets) for npz storage."""
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    offsets[1:] = np.cumsum([a.size for a in arrays])
    values = (np.concatenate(arrays).astype(np.int64) if offsets[-1]
              else np.empty(0, dtype=np.int64))
    return values, offsets


def _split_ragged(values: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Inverse of :func:`_concat_ragged`."""
    values = np.asarray(values, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    return [values[offsets[i]:offsets[i + 1]].copy()
            for i in range(offsets.size - 1)]


def _lpt_order(weights: np.ndarray) -> np.ndarray:
    """Deterministic LPT processing order: descending weight, ties by label.

    ``np.lexsort`` sorts by its *last* key first, so this is primary
    descending weight with an explicit ascending-index secondary key —
    weight ties always resolve to the lower component label, making plan
    construction byte-reproducible across runs and platforms (regression
    pinned in the test suite).
    """
    weights = np.asarray(weights)
    return np.lexsort((np.arange(weights.size), -weights))


def _split_component(graph: UserItemGraph, comp_nodes: np.ndarray,
                     count: int, refine_passes: int) -> list[np.ndarray]:
    """Split one connected component into ``count`` balanced node parts.

    Seeded BFS growth: breadth-first order from the component's
    highest-degree node (ties to the lowest index), sliced where the
    cumulative degree mass crosses each balanced boundary — contiguous BFS
    slices keep most edges internal. A fix-up guarantees every part owns at
    least one user and one item, then ``refine_passes`` greedy sweeps move
    boundary vertices to the neighboring part holding the strict majority
    of their edge weight (reducing cut nnz) whenever the move respects the
    LPT-style balance cap and the bipartite floor. Fully deterministic.
    """
    adjacency = graph.adjacency
    degrees = graph.degrees
    n_users = graph.n_users
    local = np.lexsort((np.arange(comp_nodes.size), -degrees[comp_nodes]))
    seed = int(comp_nodes[local[0]])
    order = np.asarray(
        breadth_first_order(adjacency, seed, directed=False,
                            return_predecessors=False),
        dtype=np.int64,
    )
    if order.size != comp_nodes.size:
        raise ConfigError(
            "BFS did not cover the component; graph labels are inconsistent"
        )
    weights = degrees[order]
    cum = np.cumsum(weights)
    total = float(cum[-1])
    split_at: list[int] = []
    prev = 0
    for j in range(1, count):
        position = int(np.searchsorted(cum, total * j / count))
        position = max(position, prev + 1)
        position = min(position, order.size - (count - j))
        split_at.append(position)
        prev = position
    part_of = np.full(graph.n_nodes, -1, dtype=np.int64)
    for j, piece in enumerate(np.split(order, split_at)):
        part_of[piece] = j

    part_weight = np.bincount(part_of[order], weights=weights,
                              minlength=count)
    user_nodes = order[order < n_users]
    item_nodes = order[order >= n_users]
    part_users = np.bincount(part_of[user_nodes], minlength=count)
    part_items = np.bincount(part_of[item_nodes], minlength=count)

    def rebalance_kind(kind_nodes: np.ndarray, kind_counts: np.ndarray) -> None:
        # Give every part at least one node of this kind, stealing the
        # BFS-latest such node from the richest part (ties to lower id).
        while True:
            starved = np.flatnonzero(kind_counts == 0)
            if starved.size == 0:
                return
            donor = int(np.argmax(kind_counts))
            taken = kind_nodes[part_of[kind_nodes] == donor][-1]
            receiver = int(starved[0])
            part_weight[donor] -= degrees[taken]
            part_weight[receiver] += degrees[taken]
            kind_counts[donor] -= 1
            kind_counts[receiver] += 1
            part_of[taken] = receiver

    rebalance_kind(user_nodes, part_users)
    rebalance_kind(item_nodes, part_items)

    cap = 1.2 * total / count  # LPT-style balance: ≤120% of the fair share
    for _ in range(refine_passes):
        moved = 0
        for node in order:
            node = int(node)
            current = int(part_of[node])
            start, end = adjacency.indptr[node], adjacency.indptr[node + 1]
            neighbor_parts = part_of[adjacency.indices[start:end]]
            inside = neighbor_parts >= 0
            gains = np.bincount(neighbor_parts[inside],
                                weights=adjacency.data[start:end][inside],
                                minlength=count)
            best = int(np.argmax(gains))  # ties resolve to the lower part id
            if best == current or gains[best] <= gains[current]:
                continue
            weight = float(degrees[node])
            if part_weight[best] + weight > cap:
                continue
            if node < n_users:
                if part_users[current] <= 1:
                    continue
                part_users[current] -= 1
                part_users[best] += 1
            else:
                if part_items[current] <= 1:
                    continue
                part_items[current] -= 1
                part_items[best] += 1
            part_of[node] = best
            part_weight[current] -= weight
            part_weight[best] += weight
            moved += 1
        if not moved:
            break
    return [order[part_of[order] == j] for j in range(count)]


def _khop_ghosts(graph: UserItemGraph, node_shard: np.ndarray,
                 n_shards: int, hops: int) -> tuple[list, list]:
    """Per-shard k-hop ghost users/items around the owned node sets.

    Grown by sparse boolean mat-vec over the full adjacency (O(nnz) per
    hop per shard); stops early when a halo saturates its components —
    which is exactly when the shard's solves become bit-identical to the
    unsharded ones (no edges left to cut).
    """
    adjacency = graph.adjacency
    ghost_users: list[np.ndarray] = []
    ghost_items: list[np.ndarray] = []
    for shard in range(n_shards):
        owned = node_shard == shard
        mask = owned.copy()
        for _ in range(hops):
            grown = mask | ((adjacency @ mask.astype(np.float64)) > 0)
            if np.array_equal(grown, mask):
                break
            mask = grown
        ghosts = np.flatnonzero(mask & ~owned)
        ghost_users.append(ghosts[ghosts < graph.n_users])
        ghost_items.append(ghosts[ghosts >= graph.n_users] - graph.n_users)
    return ghost_users, ghost_items


class ShardPlan:
    """A partition of a dataset's users and items into serving shards.

    Parameters
    ----------
    user_shard, item_shard:
        Shard id per global user / item index. Every shard must own at
        least one user and one item (a shard dataset must be non-empty).
    n_shards:
        Total shard count; defaults to ``max(shard ids) + 1``.
    ghost_users, ghost_items:
        Optional halo metadata (one global-index array per shard): the
        k-hop ghost nodes each shard keeps *in addition to* its owned
        nodes so walk sweeps stay local. Requires ``halo_hops``.
    halo_hops:
        The halo radius ``k`` the ghosts were computed with (``None`` for
        component plans — no ghosts, no cut edges).
    partitioner:
        ``"component"`` (components atomic, :meth:`build`) or
        ``"edge-cut"`` (components splittable, :meth:`build_edge_cut`).

    Use :meth:`build` to derive a balanced, component-closed plan from a
    dataset, or :meth:`build_edge_cut` for a halo-carrying edge-cut plan;
    hand-written plans are validated for shape here and for edge-cuts in
    :meth:`shard_dataset`.

    Local indexing convention: within a shard, owned users (and items)
    come first, ordered by ascending *global* index — so a one-shard plan
    is the identity mapping, the property the score-parity tests pin down
    — and ghost nodes are appended after them, also ascending.
    """

    def __init__(self, user_shard, item_shard, n_shards: int | None = None,
                 ghost_users: list | None = None,
                 ghost_items: list | None = None,
                 halo_hops: int | None = None,
                 partitioner: str = "component"):
        user_shard = np.asarray(user_shard, dtype=np.int64)
        item_shard = np.asarray(item_shard, dtype=np.int64)
        if user_shard.ndim != 1 or item_shard.ndim != 1:
            raise ConfigError("user_shard and item_shard must be 1-D arrays")
        if user_shard.size == 0 or item_shard.size == 0:
            raise ConfigError("a shard plan needs at least one user and one item")
        if user_shard.min() < 0 or item_shard.min() < 0:
            raise ConfigError("shard ids must be non-negative")
        top = int(max(user_shard.max(), item_shard.max()))
        if n_shards is None:
            n_shards = top + 1
        n_shards = check_positive_int(n_shards, "n_shards")
        if top >= n_shards:
            raise ConfigError(
                f"shard id {top} out of range for n_shards={n_shards}"
            )
        user_counts = np.bincount(user_shard, minlength=n_shards)
        item_counts = np.bincount(item_shard, minlength=n_shards)
        empty = np.flatnonzero((user_counts == 0) | (item_counts == 0))
        if empty.size:
            raise ConfigError(
                f"shard(s) {empty.tolist()} own no users or no items; every "
                "shard must be a servable dataset"
            )
        self.user_shard = user_shard
        self.item_shard = item_shard
        self.n_shards = int(n_shards)
        self._shard_users = [np.flatnonzero(user_shard == s)
                             for s in range(n_shards)]
        self._shard_items = [np.flatnonzero(item_shard == s)
                             for s in range(n_shards)]
        self.user_local = np.empty(user_shard.size, dtype=np.int64)
        self.item_local = np.empty(item_shard.size, dtype=np.int64)
        for members in self._shard_users:
            self.user_local[members] = np.arange(members.size)
        for members in self._shard_items:
            self.item_local[members] = np.arange(members.size)
        self.partitioner = check_in_options(
            partitioner, "partitioner", PARTITIONERS
        )
        if halo_hops is None:
            if ghost_users or ghost_items:
                raise ConfigError("ghost arrays require halo_hops")
            self.halo_hops: int | None = None
            self._ghost_users = [np.empty(0, dtype=np.int64)
                                 for _ in range(self.n_shards)]
            self._ghost_items = [np.empty(0, dtype=np.int64)
                                 for _ in range(self.n_shards)]
        else:
            self.halo_hops = check_positive_int(halo_hops, "halo_hops")
            self._ghost_users = self._check_ghosts(
                ghost_users, self._shard_users, self.user_shard, "user"
            )
            self._ghost_items = self._check_ghosts(
                ghost_items, self._shard_items, self.item_shard, "item"
            )

    def _check_ghosts(self, ghosts, owned, shard_of, axis: str) -> list:
        if ghosts is None:
            ghosts = [np.empty(0, dtype=np.int64)] * self.n_shards
        ghosts = [np.asarray(g, dtype=np.int64).ravel() for g in ghosts]
        if len(ghosts) != self.n_shards:
            raise ConfigError(
                f"ghost_{axis}s has {len(ghosts)} entries for "
                f"{self.n_shards} shards"
            )
        checked = []
        for shard, members in enumerate(ghosts):
            members = np.unique(members)  # ascending, deduplicated
            if members.size and (members[0] < 0
                                 or members[-1] >= shard_of.size):
                raise ConfigError(f"shard {shard} ghost {axis}s out of range")
            if members.size and np.any(shard_of[members] == shard):
                raise ConfigError(
                    f"shard {shard} lists owned {axis}s as ghosts"
                )
            checked.append(members)
        return checked

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, dataset: RatingDataset, n_shards: int,
              graph: UserItemGraph | None = None) -> "ShardPlan":
        """Partition ``dataset`` into ``n_shards`` balanced shards.

        Connected components are the atomic units (a walk never crosses
        one, so splitting a component would change scores); they are
        bin-packed greedily by descending rating count onto the
        least-loaded shard — the classic LPT heuristic, within 4/3 of the
        optimal makespan. Components without any rating (isolated users or
        items) carry no solve cost, so they balance on *node* count
        instead — otherwise they would all pile onto whichever shard holds
        the fewest ratings. Requires at least ``n_shards`` components with
        ratings; fewer means the graph cannot be cut without changing
        scores, and the plan refuses.
        """
        if not isinstance(dataset, RatingDataset):
            raise ConfigError(
                f"ShardPlan.build expects a RatingDataset; "
                f"got {type(dataset).__name__}"
            )
        n_shards = check_positive_int(n_shards, "n_shards")
        if graph is None:
            graph = UserItemGraph(dataset)
        elif graph.dataset is not dataset:
            raise ConfigError("graph was built over a different dataset")
        labels = graph.component_labels()
        nnz = graph.component_nnz()
        n_rated = int((nnz > 0).sum())
        if n_shards > n_rated:
            raise ConfigError(
                f"cannot build {n_shards} shards: the graph has only "
                f"{n_rated} connected component(s) with ratings, and a "
                "component cannot be split without changing walk scores"
            )
        present = np.zeros(nnz.size, dtype=bool)
        present[labels] = True
        sizes = np.bincount(labels, minlength=nnz.size)
        order = _lpt_order(nnz)  # desc nnz, ties broken by ascending label
        loads = np.zeros(n_shards, dtype=np.int64)
        node_loads = np.zeros(n_shards, dtype=np.int64)
        component_shard = np.full(nnz.size, -1, dtype=np.int64)
        for component in order:
            if not present[component]:
                continue
            if nnz[component] > 0:
                shard = int(np.argmin(loads))
            else:
                shard = int(np.argmin(node_loads))
            component_shard[component] = shard
            loads[shard] += int(nnz[component])
            node_loads[shard] += int(sizes[component])
        return cls(
            component_shard[labels[:dataset.n_users]],
            component_shard[labels[dataset.n_users:]],
            n_shards=n_shards,
        )

    @classmethod
    def build_edge_cut(cls, dataset: RatingDataset, n_shards: int,
                       halo_hops: int = 2,
                       graph: UserItemGraph | None = None,
                       refine_passes: int = 2) -> "ShardPlan":
        """Partition ``dataset`` into ``n_shards`` by a greedy edge-cut.

        Unlike :meth:`build`, connected components are *splittable*: a
        component too big for one shard is divided by seeded BFS growth
        (hub-seeded breadth-first order sliced at balanced degree-mass
        boundaries) followed by ``refine_passes`` sweeps of greedy boundary
        vertex moves that reduce cut nnz while an LPT-style balance
        constraint holds. Shard parts are then LPT bin-packed exactly like
        :meth:`build`. The returned plan carries, per shard, the
        ``halo_hops``-hop **ghost** users/items around its owned nodes —
        the extra rows :meth:`shard_dataset` keeps (with cut-edge degree
        deficits) so each shard's τ-truncated walk solves are exact where
        the halo saturates the walk's reach and a one-sided bounded-error
        underestimate otherwise (DESIGN.md §12). ``halo_hops >= 1``
        guarantees every owned user's full rating row stays in its shard,
        which keeps absorbing sets and ``exclude_rated`` exact.

        A one-shard edge-cut plan owns everything, has no ghosts, and is
        the identity mapping — bit-identical to unsharded serving.
        """
        if not isinstance(dataset, RatingDataset):
            raise ConfigError(
                f"ShardPlan.build_edge_cut expects a RatingDataset; "
                f"got {type(dataset).__name__}"
            )
        n_shards = check_positive_int(n_shards, "n_shards")
        halo_hops = check_positive_int(halo_hops, "halo_hops")
        refine_passes = check_non_negative_int(refine_passes, "refine_passes")
        if graph is None:
            graph = UserItemGraph(dataset)
        elif graph.dataset is not dataset:
            raise ConfigError("graph was built over a different dataset")
        labels = graph.component_labels()
        nnz = graph.component_nnz()
        present = np.zeros(nnz.size, dtype=bool)
        present[labels] = True
        sizes = np.bincount(labels, minlength=nnz.size)
        user_counts = np.bincount(labels[:dataset.n_users], minlength=nnz.size)
        item_counts = np.bincount(labels[dataset.n_users:], minlength=nnz.size)
        rated = np.flatnonzero(present & (nnz > 0))
        if rated.size == 0:
            raise ConfigError("dataset has no rated components to shard")

        # How many parts each rated component contributes. Every component
        # starts atomic; when there are fewer components than shards the
        # remaining parts go one at a time to the component with the
        # largest nnz-per-part quotient (highest-averages apportionment —
        # deterministic, ties to the lower label), capped by how many
        # user+item-bearing parts the component can actually yield.
        parts_of = {int(c): 1 for c in rated}
        caps = {int(c): max(1, min(int(user_counts[c]), int(item_counts[c])))
                for c in rated}
        extra = n_shards - rated.size
        while extra > 0:
            candidates = [c for c in parts_of if parts_of[c] < caps[c]]
            if not candidates:
                raise ConfigError(
                    f"cannot build {n_shards} shards: the graph's rated "
                    "components only support "
                    f"{sum(caps.values())} user+item-bearing parts"
                )
            best = max(candidates,
                       key=lambda c: (nnz[c] / parts_of[c], -c))
            parts_of[best] += 1
            extra -= 1

        node_shard = np.full(graph.n_nodes, -1, dtype=np.int64)
        part_nodes: list[np.ndarray] = []
        part_weights: list[int] = []
        for component in rated:
            comp_nodes = np.flatnonzero(labels == component)
            count = parts_of[int(component)]
            if count == 1:
                pieces = [comp_nodes]
            else:
                pieces = _split_component(graph, comp_nodes, count,
                                          refine_passes)
            for piece in pieces:
                part_nodes.append(piece)
                part_weights.append(int(graph.degrees[piece].sum()))

        # LPT-pack the parts onto shards (identical policy to `build`).
        loads = np.zeros(n_shards, dtype=np.int64)
        node_loads = np.zeros(n_shards, dtype=np.int64)
        for index in _lpt_order(np.asarray(part_weights)):
            shard = int(np.argmin(loads))
            nodes = part_nodes[index]
            node_shard[nodes] = shard
            loads[shard] += part_weights[index]
            node_loads[shard] += nodes.size
        # Zero-nnz components (isolated nodes) carry no solve cost or cut
        # edges; spread them by node count, as in `build`.
        for component in _lpt_order(sizes):
            if not present[component] or nnz[component] > 0:
                continue
            shard = int(np.argmin(node_loads))
            nodes = np.flatnonzero(labels == component)
            node_shard[nodes] = shard
            node_loads[shard] += nodes.size

        ghost_users, ghost_items = _khop_ghosts(
            graph, node_shard, n_shards, halo_hops
        )
        return cls(
            node_shard[:dataset.n_users],
            node_shard[dataset.n_users:],
            n_shards=n_shards,
            ghost_users=ghost_users,
            ghost_items=ghost_items,
            halo_hops=halo_hops,
            partitioner="edge-cut",
        )

    # -- shape ---------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return self.user_shard.size

    @property
    def n_items(self) -> int:
        return self.item_shard.size

    @property
    def has_halos(self) -> bool:
        """Whether this is an edge-cut plan carrying ghost metadata."""
        return self.halo_hops is not None

    def users_of_shard(self, shard: int) -> np.ndarray:
        """Global user indices owned by ``shard``, ascending."""
        return self._shard_users[self._check_shard(shard)]

    def items_of_shard(self, shard: int) -> np.ndarray:
        """Global item indices owned by ``shard``, ascending."""
        return self._shard_items[self._check_shard(shard)]

    def ghost_users_of_shard(self, shard: int) -> np.ndarray:
        """Global user indices ``shard`` keeps as halo ghosts, ascending."""
        return self._ghost_users[self._check_shard(shard)]

    def ghost_items_of_shard(self, shard: int) -> np.ndarray:
        """Global item indices ``shard`` keeps as halo ghosts, ascending."""
        return self._ghost_items[self._check_shard(shard)]

    def shard_users(self, shard: int) -> np.ndarray:
        """Owned-then-ghost global user indices — the shard dataset's rows."""
        shard = self._check_shard(shard)
        return np.concatenate([self._shard_users[shard],
                               self._ghost_users[shard]])

    def shard_items(self, shard: int) -> np.ndarray:
        """Owned-then-ghost global item indices — the shard dataset's columns."""
        shard = self._check_shard(shard)
        return np.concatenate([self._shard_items[shard],
                               self._ghost_items[shard]])

    def _check_shard(self, shard: int) -> int:
        if isinstance(shard, bool) or not isinstance(shard, (int, np.integer)):
            raise ConfigError(f"shard must be an int; got {shard!r}")
        if not 0 <= shard < self.n_shards:
            raise ConfigError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        return int(shard)

    # -- materialisation -----------------------------------------------------

    def shard_dataset(self, dataset: RatingDataset, shard: int) -> RatingDataset:
        """The sub-dataset ``shard`` serves, labels preserved.

        Component plans guard against edge cuts: every rating of a kept
        user must land in the shard (true by construction for
        :meth:`build` plans, violated by hand-written plans that split a
        component) — a cut rating would silently vanish from the shard's
        graph and change scores. The error names one offending edge.

        Edge-cut plans instead keep each shard's ghost rows/columns
        (owned first, ghosts appended, both ascending by global index) and
        *expect* cuts at the halo boundary: the subset tracks the severed
        rating mass as degree deficits, which the graph layer adds back
        into its degree vector so boundary transition rows absorb leaked
        walk mass exactly (DESIGN.md §12). Owned users must still keep
        every rated item inside the halo — guaranteed by
        ``halo_hops >= 1`` for built plans, checked here for hand-written
        ones (a truncated absorbing set would change ranking semantics,
        not just add bounded error).
        """
        shard = self._check_shard(shard)
        if dataset.n_users != self.n_users or dataset.n_items != self.n_items:
            raise ConfigError(
                f"plan covers {self.n_users} users × {self.n_items} items; "
                f"dataset has {dataset.n_users} × {dataset.n_items}"
            )
        owned_users = self._shard_users[shard]
        if self.has_halos:
            users = self.shard_users(shard)
            items = self.shard_items(shard)
            sub = dataset.subset(users=users, items=items,
                                 track_cut_degrees=True)
            deficit = sub.user_degree_deficit
            if deficit is not None and deficit[:owned_users.size].any():
                bad = int(np.flatnonzero(deficit[:owned_users.size])[0])
                raise ConfigError(
                    f"shard {shard} cuts rating(s) of owned user "
                    f"{dataset.user_labels[owned_users[bad]]!r}; a halo plan "
                    "must keep every owned user's rated items inside the "
                    "halo (use ShardPlan.build_edge_cut with halo_hops >= 1)"
                )
            return sub
        items = self._shard_items[shard]
        sub = dataset.subset(users=owned_users, items=items)
        expected = int(dataset.user_activity()[owned_users].sum())
        if sub.n_ratings != expected:
            user, item = self._find_cut_edge(dataset, shard)
            raise ConfigError(
                f"shard {shard} cuts {expected - sub.n_ratings} rating(s) "
                "across shard boundaries — e.g. user "
                f"{dataset.user_labels[user]!r} (shard {shard}) rated item "
                f"{dataset.item_labels[item]!r} "
                f"(shard {int(self.item_shard[item])}); a component plan "
                "must keep every user's rated items in the user's shard — "
                f"use ShardPlan.build, or {EDGE_CUT_HINT}"
            )
        return sub

    def _find_cut_edge(self, dataset: RatingDataset,
                       shard: int) -> tuple[int, int]:
        """First (user, item) rating this shard's cut severs (global ids)."""
        matrix = dataset.matrix
        for user in self._shard_users[shard]:
            row = matrix.indices[matrix.indptr[user]:matrix.indptr[user + 1]]
            outside = row[self.item_shard[row] != shard]
            if outside.size:
                return int(user), int(outside[0])
        raise ConfigError(f"shard {shard} has no cut edges")  # pragma: no cover

    def summary(self, dataset: RatingDataset | None = None) -> list[dict]:
        """One row per shard: sizes (+ rating balance when ``dataset`` given).

        Edge-cut plans add ghost counts and, with a dataset, the number of
        ratings the halo boundary cuts (the shard's bounded-error surface).
        """
        rows = []
        activity = dataset.user_activity() if dataset is not None else None
        for shard in range(self.n_shards):
            row = {
                "shard": shard,
                "users": int(self._shard_users[shard].size),
                "items": int(self._shard_items[shard].size),
            }
            if self.has_halos:
                row["ghost_users"] = int(self._ghost_users[shard].size)
                row["ghost_items"] = int(self._ghost_items[shard].size)
            if activity is not None:
                row["ratings"] = int(activity[self._shard_users[shard]].sum())
                if self.has_halos:
                    sub = dataset.subset(
                        users=self.shard_users(shard),
                        items=self.shard_items(shard),
                        track_cut_degrees=True,
                    )
                    halo_activity = int(
                        dataset.user_activity()[self.shard_users(shard)].sum()
                    )
                    row["halo_ratings"] = int(sub.n_ratings) - row["ratings"]
                    row["cut_ratings"] = halo_activity - int(sub.n_ratings)
            rows.append(row)
        return rows

    # -- persistence ---------------------------------------------------------

    @staticmethod
    def _npz_path(path: str) -> str:
        return path if str(path).endswith(".npz") else f"{path}.npz"

    def save(self, path: str) -> str:
        """Persist the plan as a versioned ``.npz``; returns the path written.

        Format version 2: the component fields of version 1 plus the halo
        metadata — ``partitioner`` (index into :data:`PARTITIONERS`),
        ``halo_hops`` (``-1`` for component plans) and the per-shard ghost
        arrays packed as concatenated values + offsets.
        """
        path = self._npz_path(path)
        ghost_user_values, ghost_user_offsets = _concat_ragged(self._ghost_users)
        ghost_item_values, ghost_item_offsets = _concat_ragged(self._ghost_items)
        # Atomic (temp + os.replace): a fleet supervisor boots from this
        # file, and a crash mid-save must leave the previous plan intact.
        atomic_savez(path, {
            "format_version": np.array(SHARD_PLAN_FORMAT_VERSION,
                                       dtype=np.int64),
            "n_shards": np.array(self.n_shards, dtype=np.int64),
            "user_shard": self.user_shard,
            "item_shard": self.item_shard,
            "partitioner": np.array(PARTITIONERS.index(self.partitioner),
                                    dtype=np.int64),
            "halo_hops": np.array(
                -1 if self.halo_hops is None else self.halo_hops,
                dtype=np.int64,
            ),
            "ghost_user_values": ghost_user_values,
            "ghost_user_offsets": ghost_user_offsets,
            "ghost_item_values": ghost_item_values,
            "ghost_item_offsets": ghost_item_offsets,
        }, compressed=True)
        return path

    @classmethod
    def load(cls, path: str) -> "ShardPlan":
        """Reload a plan written by :meth:`save` (strict format versioning).

        Version-1 plans (pre-halo) are rejected with
        :class:`~repro.exceptions.ArtifactError`: halo-aware code paths
        must never route through a plan that cannot say which nodes are
        ghosts — rebuild the plan instead.
        """
        try:
            archive = np.load(cls._npz_path(path), allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"cannot read shard plan {path!r}: {exc}") from None
        with archive:
            if "format_version" not in archive.files:
                raise ArtifactError(
                    f"{path!r} has no shard-plan format version; rebuild it "
                    "with ShardPlan.build"
                )
            version = int(archive["format_version"])
            if version != SHARD_PLAN_FORMAT_VERSION:
                raise ArtifactError(
                    f"{path!r} has shard-plan format version {version}; this "
                    f"build reads {SHARD_PLAN_FORMAT_VERSION} — rebuild the plan"
                )
            halo_hops = int(archive["halo_hops"])
            partitioner = PARTITIONERS[int(archive["partitioner"])]
            if halo_hops < 0:
                return cls(archive["user_shard"], archive["item_shard"],
                           n_shards=int(archive["n_shards"]),
                           partitioner=partitioner)
            return cls(
                archive["user_shard"], archive["item_shard"],
                n_shards=int(archive["n_shards"]),
                ghost_users=_split_ragged(archive["ghost_user_values"],
                                          archive["ghost_user_offsets"]),
                ghost_items=_split_ragged(archive["ghost_item_values"],
                                          archive["ghost_item_offsets"]),
                halo_hops=halo_hops,
                partitioner=partitioner,
            )

    def __repr__(self) -> str:
        halo = f", halo_hops={self.halo_hops}" if self.has_halos else ""
        return (
            f"ShardPlan(n_shards={self.n_shards}, n_users={self.n_users}, "
            f"n_items={self.n_items}, partitioner={self.partitioner!r}{halo})"
        )


@dataclass
class FleetReport:
    """One cohort run across the shard fleet, with per-shard breakdowns.

    ``rows`` carry **global** user/item indices (and the global item
    labels), in cohort order, exactly as an unsharded engine would emit
    them. ``per_shard`` holds ``(shard_id, EngineReport)`` pairs for the
    shards the cohort touched; the per-shard reports cover their lookup
    and solve stages (row assembly happens once, fleet-side, and is
    included in the fleet ``seconds``).
    """

    rows: list = field(default_factory=list)
    n_users: int = 0
    k: int = 10
    seconds: float = 0.0
    n_shards: int = 0
    row_cache_hits: int = 0
    row_cache_misses: int = 0
    per_shard: list = field(default_factory=list)
    #: Process-fleet supervision counters (always zero / empty for the
    #: in-process ShardedEngine): lifetime worker restarts, WAL batches
    #: replayed into restarted workers, and the per-shard health rows the
    #: run was served under. ``summary()`` surfaces them only when
    #: ``shard_health`` is populated, so in-process summaries are unchanged.
    restarts: int = 0
    replayed_batches: int = 0
    #: WAL batches skipped on replay because a checkpoint's recorded seqno
    #: already contained them (supervisor died between checkpoint and WAL
    #: truncation; see DESIGN.md §13/§14).
    skipped_replay_batches: int = 0
    #: Wall-clock seconds of the fleet's most recent successful worker
    #: restart (kill detection through replayed-and-healthy), ``None``
    #: until a restart has happened. First-class here so the
    #: restart-to-healthy latency the mmap artifacts buy is observable in
    #: production reports, not only in benchmarks.
    last_restart_s: float | None = None
    shard_health: list = field(default_factory=list)

    @property
    def users_per_second(self) -> float:
        """Fleet throughput; clamped to 0.0 when the clock resolved no time
        (:func:`~repro.utils.timer.per_second` — ``inf`` would corrupt JSON
        summaries)."""
        return per_second(self.n_users, self.seconds)

    @property
    def n_solves(self) -> int:
        return sum(report.n_solves for _, report in self.per_shard)

    @property
    def result_cache_hits(self) -> int:
        """Requests answered from a cache: the fleet's row cache plus the
        shard engines' result caches (a fleet row-cache miss falls through
        to a shard, where it counts again as that layer's hit or miss)."""
        return self.row_cache_hits + sum(
            report.result_cache_hits for _, report in self.per_shard
        )

    @property
    def result_cache_misses(self) -> int:
        return sum(report.result_cache_misses for _, report in self.per_shard)

    @property
    def result_cache_hit_rate(self) -> float:
        total = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / total if total else 0.0

    def summary(self) -> dict:
        """One fleet-level summary row (JSON-safe)."""
        row = {
            "users": self.n_users,
            "k": self.k,
            "seconds": round(self.seconds, 4),
            "users_per_sec": round(self.users_per_second, 1),
            "shards": self.n_shards,
            "shards_hit": len(self.per_shard),
            "solves": self.n_solves,
            "row_hits": self.row_cache_hits,
            "result_hits": self.result_cache_hits,
            "result_misses": self.result_cache_misses,
            "result_hit_rate": round(self.result_cache_hit_rate, 3),
        }
        if self.shard_health:
            row["restarts"] = self.restarts
            row["replayed_batches"] = self.replayed_batches
            row["skipped_replay_batches"] = self.skipped_replay_batches
            if self.last_restart_s is not None:
                row["last_restart_s"] = round(self.last_restart_s, 4)
            row["shards_down"] = sum(
                1 for entry in self.shard_health
                if entry.get("state") != "up"
            )
        return row

    def shard_summaries(self) -> list[dict]:
        """Per-shard summary rows, each tagged with its shard id."""
        return [{"shard": shard, **report.summary()}
                for shard, report in self.per_shard]


@dataclass
class FleetUpdateReport:
    """One :meth:`ShardedEngine.apply_updates` batch across the fleet.

    ``per_shard`` holds ``(shard_id, UpdateReport)`` pairs for the shards
    that received events; untouched shards keep serving warm and do not
    appear. On an edge-cut (halo) fleet, ``hint`` is set when some events
    could not reach every replica of their endpoints — the untouched ghost
    copies are now stale (bounded drift, DESIGN.md §12) and a re-plan
    refreshes them; component fleets never set it (they reject cross-shard
    edges outright instead).
    """

    n_events: int = 0
    seconds: float = 0.0
    per_shard: list = field(default_factory=list)
    stale_ghost_events: int = 0
    hint: str | None = None
    #: Rows dropped from the fleet-level row cache by this batch — one
    #: eviction pass over the cache after every touched shard has applied
    #: (not one per shard), so a batch spanning S shards costs one cache
    #: scan instead of S.
    fleet_rows_evicted: int = 0
    #: WAL batches replayed because a worker crashed while this batch was
    #: in flight (multi-process fleet only; always 0 in-process).
    replayed_batches: int = 0

    @property
    def n_shards_touched(self) -> int:
        return len(self.per_shard)

    @property
    def n_new_users(self) -> int:
        return sum(report.n_new_users for _, report in self.per_shard)

    @property
    def n_new_items(self) -> int:
        return sum(report.n_new_items for _, report in self.per_shard)

    @property
    def n_replaced(self) -> int:
        return sum(report.n_replaced for _, report in self.per_shard)

    @property
    def result_rows_evicted(self) -> int:
        return sum(report.result_rows_evicted for _, report in self.per_shard)

    def summary(self) -> dict:
        """One fleet-level summary row (JSON-safe)."""
        row = {
            "events": self.n_events,
            "shards_touched": self.n_shards_touched,
            "new_users": self.n_new_users,
            "new_items": self.n_new_items,
            "replaced": self.n_replaced,
            "results_evicted": self.result_rows_evicted,
            "fleet_rows_evicted": self.fleet_rows_evicted,
            "seconds": round(self.seconds, 4),
        }
        if self.replayed_batches:
            row["replayed_batches"] = self.replayed_batches
        if self.hint is not None:
            row["stale_ghost_events"] = self.stale_ghost_events
            row["hint"] = self.hint
        return row

    def shard_summaries(self) -> list[dict]:
        """Per-shard summary rows, each tagged with its shard id."""
        return [{"shard": shard, **report.summary()}
                for shard, report in self.per_shard]


class ShardedEngine:
    """A fleet of per-shard :class:`ServingEngine`\\ s behind one front.

    The public surface mirrors the single engine — ``recommend`` /
    ``serve_cohort`` / ``apply_updates`` / ``warm`` / ``stats`` — but every
    request is routed to the shard that owns the user (or, for update
    events, the shard that owns the event's labels) and answered there.
    Global user/item indices are the *original dataset's*; users and items
    registered later by updates are appended to the global space in shard
    order. External labels are the stable identity across the fleet.

    On top of the shard engines' own two cache layers, the fleet front
    keeps a bounded LRU **row cache** of fully materialised response rows
    per ``(user, k, exclude_rated)`` — the global-index remap and the row
    assembly are work that exists only above the shard tier, so this is
    where memoizing them pays: a fully warm cohort is answered without
    touching a single shard (classic edge caching over a sharded backend).
    Rows are shared across repeated serves; treat reports as read-only.
    Updates evict the touched shard's users from the row cache (a
    conservative superset of the affected users).

    Parameters
    ----------
    plan:
        The :class:`ShardPlan` the engines were fitted from.
    engines:
        One fitted :class:`ServingEngine` per shard, aligned with the
        plan's shard ids. Engines whose datasets have grown beyond the
        plan (updated artifacts) are absorbed: the extra labels join the
        global index space.
    result_cache_size:
        Bound on the fleet row cache (entries are per-user ranked lists,
        LRU-evicted beyond it); ``0`` disables it and every cohort request
        goes through its shard engine (whose own caches still apply).

    Build with :meth:`fit` (plan → per-shard fit) or
    :meth:`from_directory` (per-shard artifacts written by :meth:`save` or
    ``repro.cli shard-fit``).
    """

    def __init__(self, plan: ShardPlan, engines,
                 result_cache_size: int = 65536):
        engines = list(engines)
        if not isinstance(plan, ShardPlan):
            raise ConfigError(
                f"ShardedEngine requires a ShardPlan; got {type(plan).__name__}"
            )
        if len(engines) != plan.n_shards:
            raise ConfigError(
                f"plan has {plan.n_shards} shards; got {len(engines)} engines"
            )
        for shard, engine in enumerate(engines):
            if not isinstance(engine, ServingEngine):
                raise ConfigError(
                    f"engine {shard} is {type(engine).__name__}; "
                    "expected ServingEngine"
                )
            base_users = plan.shard_users(shard).size
            base_items = plan.shard_items(shard).size
            if (engine.dataset.n_users < base_users
                    or engine.dataset.n_items < base_items):
                raise ConfigError(
                    f"engine {shard} serves {engine.dataset.n_users} users × "
                    f"{engine.dataset.n_items} items; the plan assigns it "
                    f"{base_users} × {base_items} (owned + ghosts) — "
                    "artifact/plan mismatch"
                )
        self.plan = plan
        self.engines = engines
        self.result_cache_size = check_non_negative_int(
            result_cache_size, "result_cache_size"
        )
        self._rows: OrderedDict[tuple, list] = OrderedDict()  # guarded-by: sharded._lock
        self.row_cache_hits = 0  # guarded-by: sharded._lock
        self.row_cache_misses = 0  # guarded-by: sharded._lock
        self._lock = threading.RLock()
        self._user_shard = plan.user_shard.copy()
        self._user_local = plan.user_local.copy()
        self._item_shard = plan.item_shard.copy()
        self._item_local = plan.item_local.copy()
        # Per-shard local → global translation covers owned nodes first,
        # then halo ghosts (matching the shard dataset's row/column order),
        # then anything updates appended later.
        self._user_global = [plan.shard_users(s) for s in range(plan.n_shards)]
        self._item_global = [plan.shard_items(s) for s in range(plan.n_shards)]
        self._item_labels = np.empty(plan.n_items, dtype=object)
        for shard, engine in enumerate(engines):
            base = self._item_global[shard]
            self._item_labels[base] = _label_array(
                engine.dataset.item_labels[:base.size]
            )
        # Halo plans additionally keep a dense global→local item map per
        # shard (−1 where absent) so exclusions translate for ghost items
        # too; component shards translate through the owner maps instead.
        self._item_local_in_shard: list[np.ndarray] | None = (
            [np.empty(0, dtype=np.int64)] * plan.n_shards
            if plan.has_halos else None
        )
        self._user_shard_by_label: dict = {}
        self._item_shard_by_label: dict = {}
        for shard in range(plan.n_shards):
            self._absorb_new_labels(shard)
        # Label ownership: every *non-ghost* label (owned by the plan, or
        # appended by absorbed updates) must live in exactly one shard;
        # ghost labels are replicas and must be owned elsewhere.
        for shard, engine in enumerate(engines):
            for axis, labels, lookup, ghost_count, owned_count in (
                    ("user", engine.dataset.user_labels,
                     self._user_shard_by_label,
                     plan.ghost_users_of_shard(shard).size,
                     plan.users_of_shard(shard).size),
                    ("item", engine.dataset.item_labels,
                     self._item_shard_by_label,
                     plan.ghost_items_of_shard(shard).size,
                     plan.items_of_shard(shard).size)):
                for position, label in enumerate(labels):
                    if owned_count <= position < owned_count + ghost_count:
                        continue  # ghost replica; verified below
                    owner = lookup.setdefault(label, shard)
                    if owner != shard:
                        raise ConfigError(
                            f"{axis} label {label!r} appears in shards "
                            f"{owner} and {shard}; shard datasets must be "
                            "disjoint"
                        )
        if plan.has_halos:
            for shard, engine in enumerate(engines):
                for axis, labels, lookup, ghost_count, owned_count in (
                        ("user", engine.dataset.user_labels,
                         self._user_shard_by_label,
                         plan.ghost_users_of_shard(shard).size,
                         plan.users_of_shard(shard).size),
                        ("item", engine.dataset.item_labels,
                         self._item_shard_by_label,
                         plan.ghost_items_of_shard(shard).size,
                         plan.items_of_shard(shard).size)):
                    for label in labels[owned_count:owned_count + ghost_count]:
                        owner = lookup.get(label)
                        if owner is None or owner == shard:
                            raise ConfigError(
                                f"ghost {axis} label {label!r} in shard "
                                f"{shard} is not owned by any other shard — "
                                "plan/artifact mismatch"
                            )
            for shard in range(plan.n_shards):
                self._rebuild_item_map(shard)

    # -- construction --------------------------------------------------------

    @classmethod
    def fit(cls, dataset: RatingDataset, recommender_factory,
            n_shards: int | None = None, plan: ShardPlan | None = None,
            **engine_kwargs) -> "ShardedEngine":
        """Plan (unless given), fit one recommender per shard, wrap engines.

        ``recommender_factory`` is a zero-argument callable returning a
        fresh unfitted :class:`~repro.core.base.Recommender` (each shard
        gets its own instance); ``engine_kwargs`` are forwarded to every
        per-shard :class:`ServingEngine` (cache sizes, worker pools, update
        policy).
        """
        if plan is None:
            if n_shards is None:
                raise ConfigError("ShardedEngine.fit needs n_shards or a plan")
            plan = ShardPlan.build(dataset, n_shards)
        engines = []
        for shard in range(plan.n_shards):
            recommender = recommender_factory()
            if not isinstance(recommender, Recommender):
                raise ConfigError(
                    "recommender_factory must return a Recommender; got "
                    f"{type(recommender).__name__}"
                )
            recommender.fit(plan.shard_dataset(dataset, shard))
            engines.append(ServingEngine(recommender, **engine_kwargs))
        return cls(plan, engines)

    @classmethod
    def from_directory(cls, path: str, **engine_kwargs) -> "ShardedEngine":
        """Boot a fleet from a directory written by :meth:`save`.

        Expects ``plan.npz`` plus one ``shard-NNN.npz`` model artifact per
        shard (loaded through :func:`repro.core.artifacts.load_artifact`
        via :meth:`ServingEngine.from_artifact` — no refitting).
        ``engine_kwargs`` reach every shard's
        :meth:`ServingEngine.from_artifact`; pass ``mmap=True`` to
        memory-map all shard artifacts instead of materialising them.
        """
        plan_path = os.path.join(path, _PLAN_FILENAME)
        if not os.path.exists(plan_path):
            raise ArtifactError(
                f"{path!r} is not a sharded-artifact directory "
                f"(no {_PLAN_FILENAME})"
            )
        plan = ShardPlan.load(plan_path)
        engines = [
            ServingEngine.from_artifact(
                os.path.join(path, _shard_artifact_name(shard)), **engine_kwargs
            )
            for shard in range(plan.n_shards)
        ]
        return cls(plan, engines)

    def save(self, path: str) -> str:
        """Write ``plan.npz`` + per-shard model artifacts into ``path``.

        Reload with :meth:`from_directory`. Saving after updates persists
        the grown shard datasets; on reload, post-update users/items rejoin
        the global index space in shard order (their *labels* — the stable
        identity — are unchanged).
        """
        os.makedirs(path, exist_ok=True)
        self.plan.save(os.path.join(path, _PLAN_FILENAME))
        for shard, engine in enumerate(self.engines):
            engine.recommender.save(
                os.path.join(path, _shard_artifact_name(shard))
            )
        return path

    # -- shape ---------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.engines)

    @property
    def n_users(self) -> int:
        return self._user_shard.size

    @property
    def n_items(self) -> int:
        return self._item_shard.size

    def shard_of_user(self, user: int) -> int:
        """The shard id serving a global user index."""
        self._check_user(user)
        return int(self._user_shard[user])

    def _check_user(self, user: int) -> None:
        if not is_index(user, self.n_users):
            raise UnknownUserError(user)

    def _rebuild_item_map(self, shard: int) -> None:
        """Recompute one shard's dense global→local item map (halo plans)."""
        lookup = np.full(self.n_items, -1, dtype=np.int64)
        lookup[self._item_global[shard]] = np.arange(
            self._item_global[shard].size, dtype=np.int64
        )
        self._item_local_in_shard[shard] = lookup

    def _translate_exclusions(self, shard: int,
                              banned: np.ndarray) -> np.ndarray:
        """Global exclusion indices → the shard's local item indices.

        Exclusions the shard cannot see (other shards' items outside its
        halo) are dropped — the shard can never recommend them anyway. On
        halo plans the map covers ghost items too, so a ban on an item the
        shard merely replicates still suppresses it.
        """
        in_range = banned[(banned >= 0) & (banned < self.n_items)]
        if self._item_local_in_shard is not None:
            local = self._item_local_in_shard[shard][in_range]
            return local[local >= 0]
        mine = in_range[self._item_shard[in_range] == shard]
        return self._item_local[mine]

    # -- serving -------------------------------------------------------------

    def recommend(self, user: int, k: int = 10, exclude_rated: bool = True,
                  exclude=None) -> list[Recommendation]:
        """Top-``k`` for one global user, answered by the owning shard.

        ``exclude`` takes **global** item indices; exclusions living in
        other shards are dropped (the user's shard can never recommend
        them) and the rest are translated to shard-local indices. Returned
        recommendations carry global item indices and labels.
        """
        self._check_user(user)
        shard = int(self._user_shard[user])
        banned = as_exclude_array(exclude)
        if banned.size:
            banned = self._translate_exclusions(shard, banned)
        ranked = self.engines[shard].recommend(
            int(self._user_local[user]), k=k, exclude_rated=exclude_rated,
            exclude=banned,
        )
        lookup = self._item_global[shard]
        return [
            Recommendation(int(lookup[r.item]), r.label, r.score)
            for r in ranked
        ]

    def recommend_many(self, users, k: int = 10, exclude_rated: bool = True,
                       excludes=None) -> list[list[Recommendation]]:
        """A batch of independent single-user requests, routed per shard.

        The fleet-side half of the micro-batching hook: requests are
        grouped by owning shard, each shard answers its slice through
        :meth:`ServingEngine.recommend_many` (one coalesced solve per
        depth group), and item indices are remapped shard-local → global.
        Exclusions are translated exactly as :meth:`recommend` translates
        them (out-of-shard bans dropped — the shard can never recommend
        them), so responses are bit-identical to calling :meth:`recommend`
        once per request.
        """
        users = list(users)
        if excludes is None:
            excludes = [None] * len(users)
        else:
            excludes = list(excludes)
            if len(excludes) != len(users):
                raise ConfigError(
                    f"excludes has {len(excludes)} entries for "
                    f"{len(users)} users"
                )
        k = check_positive_int(k, "k")
        out: list = [None] * len(users)
        by_shard: dict[int, tuple[list, list, list]] = {}
        for position, (user, exclude) in enumerate(zip(users, excludes)):
            self._check_user(user)
            shard = int(self._user_shard[user])
            banned = as_exclude_array(exclude)
            if banned.size:
                banned = self._translate_exclusions(shard, banned)
            positions, local_users, local_bans = by_shard.setdefault(
                shard, ([], [], [])
            )
            positions.append(position)
            local_users.append(int(self._user_local[user]))
            local_bans.append(banned)
        for shard, (positions, local_users, local_bans) in by_shard.items():
            ranked_lists = self.engines[shard].recommend_many(
                local_users, k=k, exclude_rated=exclude_rated,
                excludes=local_bans,
            )
            lookup = self._item_global[shard]
            for position, ranked in zip(positions, ranked_lists):
                out[position] = [
                    Recommendation(int(lookup[r.item]), r.label, r.score)
                    for r in ranked
                ]
        return out

    def serve_cohort(self, users, k: int = 10, batch_size: int = 256,
                     exclude_rated: bool = True) -> FleetReport:
        """Serve a cohort of global user indices across the fleet.

        Users with a fleet row-cache entry are answered without touching
        any shard. The rest are split by owning shard, answered by each
        engine's arrays path, remapped from shard-local to global item
        indices, materialised as rows (which enter the row cache) and
        merged back in original cohort order — byte-for-byte the shape an
        unsharded engine's report carries.
        """
        k = check_positive_int(k, "k")
        exclude_rated = bool(exclude_rated)
        users = as_index_array(users, self.n_users, "users")
        report = FleetReport(n_users=int(users.size), k=k,
                             n_shards=self.n_shards)
        with Timer() as timer:
            per_position: list = [None] * users.size
            if self.result_cache_size:
                missing: list[int] = []
                with self._lock:
                    for position, user in enumerate(users):
                        key = (int(user), k, exclude_rated)
                        entry = self._rows.get(key)
                        if entry is None:
                            missing.append(position)
                        else:
                            self._rows.move_to_end(key)
                            per_position[position] = entry
                    report.row_cache_hits = users.size - len(missing)
                    report.row_cache_misses = len(missing)
                    self.row_cache_hits += report.row_cache_hits
                    self.row_cache_misses += report.row_cache_misses
            else:
                missing = list(range(users.size))
            if missing:
                versions = [engine.model_version for engine in self.engines]
                positions = np.asarray(missing, dtype=np.int64)
                miss_users = users[positions]
                items = np.full((positions.size, k), -1, dtype=np.int64)
                scores = np.full((positions.size, k), -np.inf)
                shard_of = self._user_shard[miss_users]
                for shard in np.unique(shard_of):
                    shard = int(shard)
                    rows_of_shard = np.flatnonzero(shard_of == shard)
                    local = self._user_local[miss_users[rows_of_shard]]
                    shard_report, _, shard_items, shard_scores = (
                        self.engines[shard]._serve_cohort_arrays(
                            local, k=k, batch_size=batch_size,
                            exclude_rated=exclude_rated,
                        )
                    )
                    lookup = self._item_global[shard]
                    valid = shard_items >= 0
                    items[rows_of_shard] = np.where(
                        valid, lookup[np.where(valid, shard_items, 0)], -1
                    )
                    scores[rows_of_shard] = shard_scores
                    report.per_shard.append((shard, shard_report))
                flat = rows_from_ranked_arrays(
                    miss_users, items, scores, self._item_labels
                )
                bounds = np.concatenate(
                    [[0], np.cumsum((items >= 0).sum(axis=1))]
                )
                for index, position in enumerate(missing):
                    per_position[position] = flat[bounds[index]:
                                                  bounds[index + 1]]
                if self.result_cache_size:
                    with self._lock:
                        # Shard solves ran outside the lock; skip inserting
                        # rows whose shard absorbed an update meanwhile
                        # (version bumped, its users evicted) — re-caching
                        # them would serve pre-update rows indefinitely.
                        for index, position in enumerate(missing):
                            user = int(users[position])
                            shard = int(self._user_shard[user])
                            if self.engines[shard].model_version != versions[shard]:
                                continue
                            self._rows[(user, k, exclude_rated)] = (
                                per_position[position]
                            )
                        while len(self._rows) > self.result_cache_size:
                            self._rows.popitem(last=False)
            rows: list = []
            for user_rows in per_position:
                if user_rows:
                    rows.extend(user_rows)
            report.rows = rows
        report.seconds = timer.elapsed
        return report

    def warm(self, users=None, k: int = 10, batch_size: int = 256) -> FleetReport:
        """Pre-fill every shard's caches (default: every user)."""
        if users is None:
            users = np.arange(self.n_users, dtype=np.int64)
        return self.serve_cohort(users, k=k, batch_size=batch_size)

    # -- incremental updates --------------------------------------------------

    def apply_updates(self, events, duplicates: str | None = None,
                      ) -> FleetUpdateReport:
        """Route ``(user_label, item_label, rating)`` events to their shards.

        **Component plans** route order-independently: the batch's events
        form a label graph, and every connected group of labels lands on
        one shard wherever its events sit in the batch (union-find over
        the batch, mirroring the component semantics the tier is built
        on). A group resolves to:

        1. the single shard its known labels live in → that shard
           (brand-new labels in the group register there too);
        2. two *different* known shards → the batch would merge components
           across shard boundaries; raises
           :class:`~repro.exceptions.ConfigError` naming the offending
           edge and hinting the edge-cut partitioner;
        3. no known label at all → the least-loaded shard (fewest ratings,
           ties to the lowest id).

        **Edge-cut (halo) plans** route per event: an event whose two
        endpoints are co-located in at least one shard is applied to
        *every* shard holding both (owner and ghost replicas alike — a
        co-located apply keeps the frozen degree deficit exact, so those
        shards stay degree-true). An event introducing a new label lands
        on the known endpoint's owner shard; replicas that hold only one
        endpoint cannot see the new edge and their ghost copies go stale
        within the documented error bound — counted in
        ``FleetUpdateReport.stale_ghost_events`` with a re-plan ``hint``.
        An edge between two known labels co-located *nowhere* exceeds
        what the halo covers and raises :class:`ConfigError`.

        The whole batch is pre-validated (rating values and scale, the
        ``duplicates`` policy, cross-shard edges) before any shard
        mutates, so a bad event rejects the batch with the fleet
        untouched. Each touched shard then absorbs its slice through
        :meth:`ServingEngine.apply_updates` (targeted invalidation, model
        version bump); untouched shards keep serving fully warm.
        """
        events = list(events)
        report = FleetUpdateReport(n_events=len(events))
        if not events:
            return report
        with Timer() as timer:
            if self.plan.has_halos:
                routed, stale = self._route_events_halo(events)
            else:
                routed = self._route_events_component(events)
                stale = 0
            for shard, shard_events in enumerate(routed):
                if shard_events:
                    self._validate_events(shard, shard_events, duplicates)
            for shard, shard_events in enumerate(routed):
                if not shard_events:
                    continue
                update = self.engines[shard].apply_updates(
                    shard_events, duplicates=duplicates
                )
                self._absorb_new_labels(shard)
                report.per_shard.append((shard, update))
            # One row-cache eviction pass for the whole batch, after every
            # touched shard has applied (all model versions already bumped,
            # so the version-gated insert in serve_cohort cannot re-admit a
            # pre-update row behind this sweep) — a batch spanning S shards
            # costs one cache scan, not S.
            report.fleet_rows_evicted = self._evict_shard_rows(
                shard for shard, _ in report.per_shard
            )
            if stale:
                report.stale_ghost_events = stale
                report.hint = (
                    f"{stale} event(s) could not reach every halo replica "
                    "of their endpoints; the untouched ghost copies drift "
                    f"within the documented bound — {EDGE_CUT_HINT}"
                )
        report.seconds = timer.elapsed
        return report

    def _route_events_component(self, events) -> list[list]:
        """Union-find routing for component plans (see :meth:`apply_updates`)."""
        # Union-find over the batch's labels, namespaced "u"/"i" — a
        # user and an item may legitimately share an external label.
        parent: dict = {}

        def find(key):
            root = key
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(key, key) != key:  # path compression
                parent[key], key = root, parent[key]
            return root

        for event in events:
            user_root = find(("u", event[0]))
            item_root = find(("i", event[1]))
            if user_root != item_root:
                parent[item_root] = user_root
        group_shard: dict = {}
        group_label: dict = {}
        for kind, position, lookup in (
                ("u", 0, self._user_shard_by_label),
                ("i", 1, self._item_shard_by_label)):
            for event in events:
                label = event[position]
                known = lookup.get(label)
                if known is None:
                    continue
                root = find((kind, label))
                owner = group_shard.setdefault(root, known)
                group_label.setdefault(root, label)
                if owner != known:
                    raise ConfigError(
                        self._cross_shard_message(
                            events, group_label[root], owner, label, known
                        )
                    )
        routed: list[list] = [[] for _ in range(self.n_shards)]
        loads = [engine.dataset.n_ratings for engine in self.engines]
        for event in events:
            root = find(("u", event[0]))
            shard = group_shard.get(root)
            if shard is None:  # every label in the group is brand-new
                shard = int(np.argmin(loads))
                group_shard[root] = shard
            loads[shard] += 1
            routed[shard].append(event)
        return routed

    def _cross_shard_message(self, events, label_a, shard_a, label_b,
                             shard_b) -> str:
        """Name the offending cross-shard edge as concretely as possible.

        Prefers an actual event from the batch whose two endpoints live in
        different shards (the direct cut edge); falls back to the two
        conflicting group labels when the link is transitive through
        brand-new labels.
        """
        for user_label, item_label, _ in events:
            user_owner = self._user_shard_by_label.get(user_label)
            item_owner = self._item_shard_by_label.get(item_label)
            if (user_owner is not None and item_owner is not None
                    and user_owner != item_owner):
                return (
                    f"update event (user={user_label!r}, "
                    f"item={item_label!r}) is a cross-shard edge: the user "
                    f"lives in shard {user_owner}, the item in shard "
                    f"{item_owner}; a component-sharded tier cannot apply "
                    f"it — {EDGE_CUT_HINT}"
                )
        return (
            f"update batch links {label_a!r} (shard {shard_a}) with "
            f"{label_b!r} (shard {shard_b}) through new labels; "
            "cross-shard edges cannot be applied to a component-sharded "
            f"tier — {EDGE_CUT_HINT}"
        )

    def _route_events_halo(self, events) -> tuple[list[list], int]:
        """Per-event replica routing for edge-cut plans.

        Returns ``(routed, stale)`` where ``routed[shard]`` is the
        shard's event slice (one event may appear in several shards) and
        ``stale`` counts events some replica of whose endpoints could not
        be updated. ``pending_*`` track labels registered earlier in this
        batch so later events in the same batch route consistently.
        """
        routed: list[list] = [[] for _ in range(self.n_shards)]
        loads = [engine.dataset.n_ratings for engine in self.engines]
        pending_users: dict = {}
        pending_items: dict = {}
        stale = 0
        for event in events:
            user_label, item_label = event[0], event[1]
            user_shards = self._shards_with(
                user_label, "user", pending_users)
            item_shards = self._shards_with(
                item_label, "item", pending_items)
            if user_shards and item_shards:
                both = sorted(user_shards & item_shards)
                if not both:
                    user_owner = self._user_shard_by_label.get(
                        user_label, pending_users.get(user_label))
                    item_owner = self._item_shard_by_label.get(
                        item_label, pending_items.get(item_label))
                    raise ConfigError(
                        f"update event (user={user_label!r}, "
                        f"item={item_label!r}) joins shard {user_owner} to "
                        f"shard {item_owner} but no shard holds both "
                        "endpoints — the edge exceeds the plan's "
                        f"{self.plan.halo_hops}-hop halo; {EDGE_CUT_HINT}"
                    )
                for shard in both:
                    routed[shard].append(event)
                    loads[shard] += 1
                if (user_shards | item_shards) - set(both):
                    stale += 1
            elif user_shards or item_shards:
                # One endpoint is brand-new: register it on the known
                # endpoint's owner shard (the authoritative copy).
                if user_shards:
                    owner = self._user_shard_by_label.get(
                        user_label, pending_users.get(user_label))
                    pending_items[item_label] = owner
                    replicas = user_shards
                else:
                    owner = self._item_shard_by_label.get(
                        item_label, pending_items.get(item_label))
                    pending_users[user_label] = owner
                    replicas = item_shards
                routed[owner].append(event)
                loads[owner] += 1
                if replicas - {owner}:
                    stale += 1
            else:
                shard = int(np.argmin(loads))
                routed[shard].append(event)
                loads[shard] += 1
                pending_users[user_label] = shard
                pending_items[item_label] = shard
        return routed, stale

    def _shards_with(self, label, axis: str, pending: dict) -> set:
        """Every shard whose dataset holds ``label`` (owned or ghost),
        plus a registration pending earlier in the current batch."""
        shards = set()
        for shard, engine in enumerate(self.engines):
            try:
                if axis == "user":
                    engine.dataset.user_id(label)
                else:
                    engine.dataset.item_id(label)
            except (UnknownUserError, UnknownItemError):
                continue
            shards.add(shard)
        if label in pending:
            shards.add(pending[label])
        return shards

    def _validate_events(self, shard: int, events, duplicates: str | None,
                         ) -> None:
        """Reject a bad batch before ANY shard mutates.

        Shards apply sequentially, so without this pre-pass a malformed
        event for shard 2 would leave shards 0–1 already updated — neither
        applied nor rejected, and retrying would double-apply. Mirrors the
        checks :meth:`RatingDataset.extend` performs (rating value and
        scale, plus the ``duplicates="error"`` policy against both the
        batch and the base), raising the same :class:`DataError` shapes
        while the fleet is still untouched.
        """
        engine = self.engines[shard]
        validate_shard_events(engine.dataset, events,
                              duplicates or engine.update_duplicates)

    def _evict_shard_rows(self, shards) -> int:
        """Drop the fleet row cache's entries for the given shards' users.

        A conservative superset of the update's affected users (the shard
        engines evict precisely; the fleet layer only knows the shards) —
        over-eviction costs a re-route, never a stale row. Takes the whole
        touched-shard set at once so an update batch pays a single scan of
        the cache, under a single lock acquisition.
        """
        touched = set(int(s) for s in shards)
        if not touched:
            return 0
        with self._lock:
            stale = [key for key in self._rows
                     if int(self._user_shard[key[0]]) in touched]
            for key in stale:
                del self._rows[key]
            return len(stale)

    def _absorb_new_labels(self, shard: int) -> None:
        """Append a shard's post-update users/items to the global space."""
        engine = self.engines[shard]
        dataset = engine.dataset
        known = self._user_global[shard].size
        if dataset.n_users > known:
            count = dataset.n_users - known
            fresh = np.arange(self.n_users, self.n_users + count,
                              dtype=np.int64)
            self._user_global[shard] = np.concatenate(
                [self._user_global[shard], fresh]
            )
            self._user_shard = np.concatenate(
                [self._user_shard, np.full(count, shard, dtype=np.int64)]
            )
            self._user_local = np.concatenate(
                [self._user_local,
                 np.arange(known, dataset.n_users, dtype=np.int64)]
            )
            for label in dataset.user_labels[known:]:
                self._user_shard_by_label[label] = shard
        known = self._item_global[shard].size
        if dataset.n_items > known:
            count = dataset.n_items - known
            fresh = np.arange(self.n_items, self.n_items + count,
                              dtype=np.int64)
            self._item_global[shard] = np.concatenate(
                [self._item_global[shard], fresh]
            )
            self._item_shard = np.concatenate(
                [self._item_shard, np.full(count, shard, dtype=np.int64)]
            )
            self._item_local = np.concatenate(
                [self._item_local,
                 np.arange(known, dataset.n_items, dtype=np.int64)]
            )
            self._item_labels = np.concatenate(
                [self._item_labels, _label_array(dataset.item_labels[known:])]
            )
            for label in dataset.item_labels[known:]:
                self._item_shard_by_label[label] = shard
            if self._item_local_in_shard is not None:
                # The global item space grew: every shard's dense
                # global→local map must cover the new tail indices.
                for other in range(self.n_shards):
                    self._rebuild_item_map(other)

    # -- lifecycle / introspection -------------------------------------------

    def clear_caches(self) -> None:
        """Drop the fleet row cache and both cache layers on every shard."""
        with self._lock:
            self._rows.clear()
            self.row_cache_hits = 0
            self.row_cache_misses = 0
        for engine in self.engines:
            engine.clear_caches()

    def invalidate_user(self, user: int) -> int:
        """Evict one global user's rows: fleet row cache + shard cache."""
        self._check_user(user)
        with self._lock:
            stale = [key for key in self._rows if key[0] == int(user)]
            for key in stale:
                del self._rows[key]
        return self.engines[int(self._user_shard[user])].invalidate_user(
            int(self._user_local[user])
        )

    def close(self) -> None:
        """Shut down every shard engine's worker pool."""
        for engine in self.engines:
            engine.close()

    def health(self) -> dict:
        """Per-shard health, in the shape the HTTP ``/health`` probe serves.

        In-process shards share the front's fate — they cannot be
        individually down — so the status is always ``"ok"``; the
        multi-process :class:`~repro.service.fleet.ProcessShardFleet`
        implements the same hook with real up/down/restart state, and
        :class:`~repro.service.server.HttpFrontend` answers 503 whenever
        the hook reports anything but ``"ok"``.
        """
        return {
            "status": "ok",
            "shards": [
                {"shard": shard, "state": "up",
                 "model_version": engine.model_version}
                for shard, engine in enumerate(self.engines)
            ],
        }

    def stats(self) -> dict:
        """Fleet shape and row-cache counters plus each shard's own stats."""
        with self._lock:
            fleet = {
                "n_shards": self.n_shards,
                "n_users": self.n_users,
                "n_items": self.n_items,
                "row_entries": len(self._rows),
                "row_hits": self.row_cache_hits,
                "row_misses": self.row_cache_misses,
            }
        fleet["shards"] = [engine.stats() for engine in self.engines]
        return fleet

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(n_shards={self.n_shards}, n_users={self.n_users}, "
            f"n_items={self.n_items})"
        )

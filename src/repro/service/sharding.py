"""Component-sharded serving tier: one engine per graph partition.

The paper's walk recommenders (Eq. 7–10) score strictly *within* a user's
connected component — a walk can never leave it, items outside it score
``-inf``. The user–item graph therefore partitions naturally into
independent shards, and a serving deployment can split one big engine into
a fleet of small ones with **zero loss of ranking quality** for the walk
family:

* :class:`ShardPlan` partitions a :class:`~repro.data.RatingDataset` by
  connected component into balanced shards — greedy bin-packing on
  component nnz (the walk-solve cost measure), users/items re-indexed per
  shard with label-preserving maps, saved/loaded as a versioned ``.npz``;
* :class:`ShardedEngine` owns one :class:`~repro.service.ServingEngine`
  per shard and routes every request to the owning shard:
  ``recommend(user)`` by the user's shard, ``serve_cohort`` by splitting
  the cohort and merging ranked arrays back in cohort order, and
  ``apply_updates`` by event label (events on known users/items go to
  their shard, events introducing brand-new labels go to the least-loaded
  shard). Per-shard artifacts reuse :mod:`repro.core.artifacts`
  (``fit`` → ``save`` → ``from_directory``, no refitting);
* :class:`FleetReport` / :class:`FleetUpdateReport` merge the per-shard
  :class:`~repro.service.EngineReport` / :class:`~repro.service.UpdateReport`
  objects into one fleet-level summary with per-shard breakdowns.

Why shard at all? Besides being the load-bearing step toward multi-process
and multi-host serving (each shard is an independent, individually
persistable unit with its own caches and update stream), sharding shrinks
the serving working set: a cohort's dense score matrix is
``batch × shard_items`` instead of ``batch × all_items``, so cold solves
allocate and scan less memory (measured in ``benchmarks/bench_sharded.py``).

**Semantics caveat.** Routing a user to their component's shard is
score-exact for component-local scorers (the walk family: AT, AC1, AC2,
HT, and the graph baselines). Globally coupled algorithms (MostPopular,
PureSVD, kNN, LDA) rank only the shard's items when sharded — candidates
outside the user's component disappear. That is a *semantics change* for
those baselines; shard them only when per-tenant catalogues are the intent
(the federated-shards deployment shape).

**Cross-shard updates.** A rating event joining a user in shard A to an
item in shard B would merge two components across shard boundaries; no
single engine can absorb it. :meth:`ShardedEngine.apply_updates` detects
this and raises :class:`~repro.exceptions.ConfigError` — the remedy is a
re-plan (``repro.cli shard-fit`` on the merged data), not a silent wrong
routing.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Recommendation, Recommender
from repro.data.dataset import RatingDataset
from repro.exceptions import (
    ArtifactError,
    ConfigError,
    DataError,
    UnknownItemError,
    UnknownUserError,
)
from repro.graph.bipartite import UserItemGraph
from repro.service.engine import EngineReport, ServingEngine, UpdateReport
from repro.service.serving import _label_array, rows_from_ranked_arrays
from repro.utils.timer import Timer, per_second
from repro.utils.validation import (
    as_exclude_array,
    as_index_array,
    check_non_negative_int,
    check_positive_int,
    is_index,
)

__all__ = [
    "SHARD_PLAN_FORMAT_VERSION",
    "ShardPlan",
    "FleetReport",
    "FleetUpdateReport",
    "ShardedEngine",
]

#: On-disk format version of saved shard plans; bump on any layout change.
#: A plan whose version is absent or different raises
#: :class:`~repro.exceptions.ArtifactError` — routing traffic through a
#: stale partition must fail loudly, never silently.
SHARD_PLAN_FORMAT_VERSION = 1

_PLAN_FILENAME = "plan.npz"


def _shard_artifact_name(shard: int) -> str:
    return f"shard-{shard:03d}.npz"


class ShardPlan:
    """A partition of a dataset's users and items into serving shards.

    Parameters
    ----------
    user_shard, item_shard:
        Shard id per global user / item index. Every shard must own at
        least one user and one item (a shard dataset must be non-empty).
    n_shards:
        Total shard count; defaults to ``max(shard ids) + 1``.

    Use :meth:`build` to derive a balanced, component-closed plan from a
    dataset; hand-written plans are validated for shape here and for
    edge-cuts in :meth:`shard_dataset`.

    Local indexing convention: within a shard, users (and items) are
    ordered by ascending *global* index, so a one-shard plan is the
    identity mapping — the property the score-parity tests pin down.
    """

    def __init__(self, user_shard, item_shard, n_shards: int | None = None):
        user_shard = np.asarray(user_shard, dtype=np.int64)
        item_shard = np.asarray(item_shard, dtype=np.int64)
        if user_shard.ndim != 1 or item_shard.ndim != 1:
            raise ConfigError("user_shard and item_shard must be 1-D arrays")
        if user_shard.size == 0 or item_shard.size == 0:
            raise ConfigError("a shard plan needs at least one user and one item")
        if user_shard.min() < 0 or item_shard.min() < 0:
            raise ConfigError("shard ids must be non-negative")
        top = int(max(user_shard.max(), item_shard.max()))
        if n_shards is None:
            n_shards = top + 1
        n_shards = check_positive_int(n_shards, "n_shards")
        if top >= n_shards:
            raise ConfigError(
                f"shard id {top} out of range for n_shards={n_shards}"
            )
        user_counts = np.bincount(user_shard, minlength=n_shards)
        item_counts = np.bincount(item_shard, minlength=n_shards)
        empty = np.flatnonzero((user_counts == 0) | (item_counts == 0))
        if empty.size:
            raise ConfigError(
                f"shard(s) {empty.tolist()} own no users or no items; every "
                "shard must be a servable dataset"
            )
        self.user_shard = user_shard
        self.item_shard = item_shard
        self.n_shards = int(n_shards)
        self._shard_users = [np.flatnonzero(user_shard == s)
                             for s in range(n_shards)]
        self._shard_items = [np.flatnonzero(item_shard == s)
                             for s in range(n_shards)]
        self.user_local = np.empty(user_shard.size, dtype=np.int64)
        self.item_local = np.empty(item_shard.size, dtype=np.int64)
        for members in self._shard_users:
            self.user_local[members] = np.arange(members.size)
        for members in self._shard_items:
            self.item_local[members] = np.arange(members.size)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, dataset: RatingDataset, n_shards: int,
              graph: UserItemGraph | None = None) -> "ShardPlan":
        """Partition ``dataset`` into ``n_shards`` balanced shards.

        Connected components are the atomic units (a walk never crosses
        one, so splitting a component would change scores); they are
        bin-packed greedily by descending rating count onto the
        least-loaded shard — the classic LPT heuristic, within 4/3 of the
        optimal makespan. Components without any rating (isolated users or
        items) carry no solve cost, so they balance on *node* count
        instead — otherwise they would all pile onto whichever shard holds
        the fewest ratings. Requires at least ``n_shards`` components with
        ratings; fewer means the graph cannot be cut without changing
        scores, and the plan refuses.
        """
        if not isinstance(dataset, RatingDataset):
            raise ConfigError(
                f"ShardPlan.build expects a RatingDataset; "
                f"got {type(dataset).__name__}"
            )
        n_shards = check_positive_int(n_shards, "n_shards")
        if graph is None:
            graph = UserItemGraph(dataset)
        elif graph.dataset is not dataset:
            raise ConfigError("graph was built over a different dataset")
        labels = graph.component_labels()
        nnz = graph.component_nnz()
        n_rated = int((nnz > 0).sum())
        if n_shards > n_rated:
            raise ConfigError(
                f"cannot build {n_shards} shards: the graph has only "
                f"{n_rated} connected component(s) with ratings, and a "
                "component cannot be split without changing walk scores"
            )
        present = np.zeros(nnz.size, dtype=bool)
        present[labels] = True
        sizes = np.bincount(labels, minlength=nnz.size)
        order = np.argsort(-nnz, kind="stable")  # desc nnz, ties by label
        loads = np.zeros(n_shards, dtype=np.int64)
        node_loads = np.zeros(n_shards, dtype=np.int64)
        component_shard = np.full(nnz.size, -1, dtype=np.int64)
        for component in order:
            if not present[component]:
                continue
            if nnz[component] > 0:
                shard = int(np.argmin(loads))
            else:
                shard = int(np.argmin(node_loads))
            component_shard[component] = shard
            loads[shard] += int(nnz[component])
            node_loads[shard] += int(sizes[component])
        return cls(
            component_shard[labels[:dataset.n_users]],
            component_shard[labels[dataset.n_users:]],
            n_shards=n_shards,
        )

    # -- shape ---------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return self.user_shard.size

    @property
    def n_items(self) -> int:
        return self.item_shard.size

    def users_of_shard(self, shard: int) -> np.ndarray:
        """Global user indices owned by ``shard``, ascending."""
        return self._shard_users[self._check_shard(shard)]

    def items_of_shard(self, shard: int) -> np.ndarray:
        """Global item indices owned by ``shard``, ascending."""
        return self._shard_items[self._check_shard(shard)]

    def _check_shard(self, shard: int) -> int:
        if isinstance(shard, bool) or not isinstance(shard, (int, np.integer)):
            raise ConfigError(f"shard must be an int; got {shard!r}")
        if not 0 <= shard < self.n_shards:
            raise ConfigError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        return int(shard)

    # -- materialisation -----------------------------------------------------

    def shard_dataset(self, dataset: RatingDataset, shard: int) -> RatingDataset:
        """The sub-dataset ``shard`` serves, labels preserved.

        Guards against edge cuts: every rating of a kept user must land in
        the shard (true by construction for :meth:`build` plans, violated
        by hand-written plans that split a component) — a cut rating would
        silently vanish from the shard's graph and change scores.
        """
        shard = self._check_shard(shard)
        if dataset.n_users != self.n_users or dataset.n_items != self.n_items:
            raise ConfigError(
                f"plan covers {self.n_users} users × {self.n_items} items; "
                f"dataset has {dataset.n_users} × {dataset.n_items}"
            )
        users = self._shard_users[shard]
        items = self._shard_items[shard]
        sub = dataset.subset(users=users, items=items)
        expected = int(dataset.user_activity()[users].sum())
        if sub.n_ratings != expected:
            raise ConfigError(
                f"shard {shard} cuts {expected - sub.n_ratings} rating(s) "
                "across shard boundaries; a plan must keep every user's "
                "rated items in the user's shard (use ShardPlan.build)"
            )
        return sub

    def summary(self, dataset: RatingDataset | None = None) -> list[dict]:
        """One row per shard: sizes (+ rating balance when ``dataset`` given)."""
        rows = []
        activity = dataset.user_activity() if dataset is not None else None
        for shard in range(self.n_shards):
            row = {
                "shard": shard,
                "users": int(self._shard_users[shard].size),
                "items": int(self._shard_items[shard].size),
            }
            if activity is not None:
                row["ratings"] = int(activity[self._shard_users[shard]].sum())
            rows.append(row)
        return rows

    # -- persistence ---------------------------------------------------------

    @staticmethod
    def _npz_path(path: str) -> str:
        return path if str(path).endswith(".npz") else f"{path}.npz"

    def save(self, path: str) -> str:
        """Persist the plan as a versioned ``.npz``; returns the path written."""
        path = self._npz_path(path)
        np.savez_compressed(
            path,
            format_version=np.array(SHARD_PLAN_FORMAT_VERSION, dtype=np.int64),
            n_shards=np.array(self.n_shards, dtype=np.int64),
            user_shard=self.user_shard,
            item_shard=self.item_shard,
        )
        return path

    @classmethod
    def load(cls, path: str) -> "ShardPlan":
        """Reload a plan written by :meth:`save` (strict format versioning)."""
        try:
            archive = np.load(cls._npz_path(path), allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"cannot read shard plan {path!r}: {exc}") from None
        with archive:
            if "format_version" not in archive.files:
                raise ArtifactError(
                    f"{path!r} has no shard-plan format version; rebuild it "
                    "with ShardPlan.build"
                )
            version = int(archive["format_version"])
            if version != SHARD_PLAN_FORMAT_VERSION:
                raise ArtifactError(
                    f"{path!r} has shard-plan format version {version}; this "
                    f"build reads {SHARD_PLAN_FORMAT_VERSION} — rebuild the plan"
                )
            return cls(archive["user_shard"], archive["item_shard"],
                       n_shards=int(archive["n_shards"]))

    def __repr__(self) -> str:
        return (
            f"ShardPlan(n_shards={self.n_shards}, n_users={self.n_users}, "
            f"n_items={self.n_items})"
        )


@dataclass
class FleetReport:
    """One cohort run across the shard fleet, with per-shard breakdowns.

    ``rows`` carry **global** user/item indices (and the global item
    labels), in cohort order, exactly as an unsharded engine would emit
    them. ``per_shard`` holds ``(shard_id, EngineReport)`` pairs for the
    shards the cohort touched; the per-shard reports cover their lookup
    and solve stages (row assembly happens once, fleet-side, and is
    included in the fleet ``seconds``).
    """

    rows: list = field(default_factory=list)
    n_users: int = 0
    k: int = 10
    seconds: float = 0.0
    n_shards: int = 0
    row_cache_hits: int = 0
    row_cache_misses: int = 0
    per_shard: list = field(default_factory=list)

    @property
    def users_per_second(self) -> float:
        """Fleet throughput; clamped to 0.0 when the clock resolved no time
        (:func:`~repro.utils.timer.per_second` — ``inf`` would corrupt JSON
        summaries)."""
        return per_second(self.n_users, self.seconds)

    @property
    def n_solves(self) -> int:
        return sum(report.n_solves for _, report in self.per_shard)

    @property
    def result_cache_hits(self) -> int:
        """Requests answered from a cache: the fleet's row cache plus the
        shard engines' result caches (a fleet row-cache miss falls through
        to a shard, where it counts again as that layer's hit or miss)."""
        return self.row_cache_hits + sum(
            report.result_cache_hits for _, report in self.per_shard
        )

    @property
    def result_cache_misses(self) -> int:
        return sum(report.result_cache_misses for _, report in self.per_shard)

    @property
    def result_cache_hit_rate(self) -> float:
        total = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / total if total else 0.0

    def summary(self) -> dict:
        """One fleet-level summary row (JSON-safe)."""
        return {
            "users": self.n_users,
            "k": self.k,
            "seconds": round(self.seconds, 4),
            "users_per_sec": round(self.users_per_second, 1),
            "shards": self.n_shards,
            "shards_hit": len(self.per_shard),
            "solves": self.n_solves,
            "row_hits": self.row_cache_hits,
            "result_hits": self.result_cache_hits,
            "result_misses": self.result_cache_misses,
            "result_hit_rate": round(self.result_cache_hit_rate, 3),
        }

    def shard_summaries(self) -> list[dict]:
        """Per-shard summary rows, each tagged with its shard id."""
        return [{"shard": shard, **report.summary()}
                for shard, report in self.per_shard]


@dataclass
class FleetUpdateReport:
    """One :meth:`ShardedEngine.apply_updates` batch across the fleet.

    ``per_shard`` holds ``(shard_id, UpdateReport)`` pairs for the shards
    that received events; untouched shards keep serving warm and do not
    appear.
    """

    n_events: int = 0
    seconds: float = 0.0
    per_shard: list = field(default_factory=list)

    @property
    def n_shards_touched(self) -> int:
        return len(self.per_shard)

    @property
    def n_new_users(self) -> int:
        return sum(report.n_new_users for _, report in self.per_shard)

    @property
    def n_new_items(self) -> int:
        return sum(report.n_new_items for _, report in self.per_shard)

    @property
    def n_replaced(self) -> int:
        return sum(report.n_replaced for _, report in self.per_shard)

    @property
    def result_rows_evicted(self) -> int:
        return sum(report.result_rows_evicted for _, report in self.per_shard)

    def summary(self) -> dict:
        """One fleet-level summary row (JSON-safe)."""
        return {
            "events": self.n_events,
            "shards_touched": self.n_shards_touched,
            "new_users": self.n_new_users,
            "new_items": self.n_new_items,
            "replaced": self.n_replaced,
            "results_evicted": self.result_rows_evicted,
            "seconds": round(self.seconds, 4),
        }

    def shard_summaries(self) -> list[dict]:
        """Per-shard summary rows, each tagged with its shard id."""
        return [{"shard": shard, **report.summary()}
                for shard, report in self.per_shard]


class ShardedEngine:
    """A fleet of per-shard :class:`ServingEngine`\\ s behind one front.

    The public surface mirrors the single engine — ``recommend`` /
    ``serve_cohort`` / ``apply_updates`` / ``warm`` / ``stats`` — but every
    request is routed to the shard that owns the user (or, for update
    events, the shard that owns the event's labels) and answered there.
    Global user/item indices are the *original dataset's*; users and items
    registered later by updates are appended to the global space in shard
    order. External labels are the stable identity across the fleet.

    On top of the shard engines' own two cache layers, the fleet front
    keeps a bounded LRU **row cache** of fully materialised response rows
    per ``(user, k, exclude_rated)`` — the global-index remap and the row
    assembly are work that exists only above the shard tier, so this is
    where memoizing them pays: a fully warm cohort is answered without
    touching a single shard (classic edge caching over a sharded backend).
    Rows are shared across repeated serves; treat reports as read-only.
    Updates evict the touched shard's users from the row cache (a
    conservative superset of the affected users).

    Parameters
    ----------
    plan:
        The :class:`ShardPlan` the engines were fitted from.
    engines:
        One fitted :class:`ServingEngine` per shard, aligned with the
        plan's shard ids. Engines whose datasets have grown beyond the
        plan (updated artifacts) are absorbed: the extra labels join the
        global index space.
    result_cache_size:
        Bound on the fleet row cache (entries are per-user ranked lists,
        LRU-evicted beyond it); ``0`` disables it and every cohort request
        goes through its shard engine (whose own caches still apply).

    Build with :meth:`fit` (plan → per-shard fit) or
    :meth:`from_directory` (per-shard artifacts written by :meth:`save` or
    ``repro.cli shard-fit``).
    """

    def __init__(self, plan: ShardPlan, engines,
                 result_cache_size: int = 65536):
        engines = list(engines)
        if not isinstance(plan, ShardPlan):
            raise ConfigError(
                f"ShardedEngine requires a ShardPlan; got {type(plan).__name__}"
            )
        if len(engines) != plan.n_shards:
            raise ConfigError(
                f"plan has {plan.n_shards} shards; got {len(engines)} engines"
            )
        for shard, engine in enumerate(engines):
            if not isinstance(engine, ServingEngine):
                raise ConfigError(
                    f"engine {shard} is {type(engine).__name__}; "
                    "expected ServingEngine"
                )
            base_users = plan.users_of_shard(shard).size
            base_items = plan.items_of_shard(shard).size
            if (engine.dataset.n_users < base_users
                    or engine.dataset.n_items < base_items):
                raise ConfigError(
                    f"engine {shard} serves {engine.dataset.n_users} users × "
                    f"{engine.dataset.n_items} items; the plan assigns it "
                    f"{base_users} × {base_items} — artifact/plan mismatch"
                )
        self.plan = plan
        self.engines = engines
        self.result_cache_size = check_non_negative_int(
            result_cache_size, "result_cache_size"
        )
        self._rows: OrderedDict[tuple, list] = OrderedDict()
        self.row_cache_hits = 0
        self.row_cache_misses = 0
        self._lock = threading.RLock()
        self._user_shard = plan.user_shard.copy()
        self._user_local = plan.user_local.copy()
        self._item_shard = plan.item_shard.copy()
        self._item_local = plan.item_local.copy()
        self._user_global = [plan.users_of_shard(s).copy()
                             for s in range(plan.n_shards)]
        self._item_global = [plan.items_of_shard(s).copy()
                             for s in range(plan.n_shards)]
        self._item_labels = np.empty(plan.n_items, dtype=object)
        for shard, engine in enumerate(engines):
            base = self._item_global[shard]
            self._item_labels[base] = _label_array(
                engine.dataset.item_labels[:base.size]
            )
        self._user_shard_by_label: dict = {}
        self._item_shard_by_label: dict = {}
        for shard in range(plan.n_shards):
            self._absorb_new_labels(shard)
        for shard, engine in enumerate(engines):
            for label in engine.dataset.user_labels:
                owner = self._user_shard_by_label.setdefault(label, shard)
                if owner != shard:
                    raise ConfigError(
                        f"user label {label!r} appears in shards {owner} and "
                        f"{shard}; shard datasets must be disjoint"
                    )
            for label in engine.dataset.item_labels:
                owner = self._item_shard_by_label.setdefault(label, shard)
                if owner != shard:
                    raise ConfigError(
                        f"item label {label!r} appears in shards {owner} and "
                        f"{shard}; shard datasets must be disjoint"
                    )

    # -- construction --------------------------------------------------------

    @classmethod
    def fit(cls, dataset: RatingDataset, recommender_factory,
            n_shards: int | None = None, plan: ShardPlan | None = None,
            **engine_kwargs) -> "ShardedEngine":
        """Plan (unless given), fit one recommender per shard, wrap engines.

        ``recommender_factory`` is a zero-argument callable returning a
        fresh unfitted :class:`~repro.core.base.Recommender` (each shard
        gets its own instance); ``engine_kwargs`` are forwarded to every
        per-shard :class:`ServingEngine` (cache sizes, worker pools, update
        policy).
        """
        if plan is None:
            if n_shards is None:
                raise ConfigError("ShardedEngine.fit needs n_shards or a plan")
            plan = ShardPlan.build(dataset, n_shards)
        engines = []
        for shard in range(plan.n_shards):
            recommender = recommender_factory()
            if not isinstance(recommender, Recommender):
                raise ConfigError(
                    "recommender_factory must return a Recommender; got "
                    f"{type(recommender).__name__}"
                )
            recommender.fit(plan.shard_dataset(dataset, shard))
            engines.append(ServingEngine(recommender, **engine_kwargs))
        return cls(plan, engines)

    @classmethod
    def from_directory(cls, path: str, **engine_kwargs) -> "ShardedEngine":
        """Boot a fleet from a directory written by :meth:`save`.

        Expects ``plan.npz`` plus one ``shard-NNN.npz`` model artifact per
        shard (loaded through :func:`repro.core.artifacts.load_artifact`
        via :meth:`ServingEngine.from_artifact` — no refitting).
        """
        plan_path = os.path.join(path, _PLAN_FILENAME)
        if not os.path.exists(plan_path):
            raise ArtifactError(
                f"{path!r} is not a sharded-artifact directory "
                f"(no {_PLAN_FILENAME})"
            )
        plan = ShardPlan.load(plan_path)
        engines = [
            ServingEngine.from_artifact(
                os.path.join(path, _shard_artifact_name(shard)), **engine_kwargs
            )
            for shard in range(plan.n_shards)
        ]
        return cls(plan, engines)

    def save(self, path: str) -> str:
        """Write ``plan.npz`` + per-shard model artifacts into ``path``.

        Reload with :meth:`from_directory`. Saving after updates persists
        the grown shard datasets; on reload, post-update users/items rejoin
        the global index space in shard order (their *labels* — the stable
        identity — are unchanged).
        """
        os.makedirs(path, exist_ok=True)
        self.plan.save(os.path.join(path, _PLAN_FILENAME))
        for shard, engine in enumerate(self.engines):
            engine.recommender.save(
                os.path.join(path, _shard_artifact_name(shard))
            )
        return path

    # -- shape ---------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.engines)

    @property
    def n_users(self) -> int:
        return self._user_shard.size

    @property
    def n_items(self) -> int:
        return self._item_shard.size

    def shard_of_user(self, user: int) -> int:
        """The shard id serving a global user index."""
        self._check_user(user)
        return int(self._user_shard[user])

    def _check_user(self, user: int) -> None:
        if not is_index(user, self.n_users):
            raise UnknownUserError(user)

    # -- serving -------------------------------------------------------------

    def recommend(self, user: int, k: int = 10, exclude_rated: bool = True,
                  exclude=None) -> list[Recommendation]:
        """Top-``k`` for one global user, answered by the owning shard.

        ``exclude`` takes **global** item indices; exclusions living in
        other shards are dropped (the user's shard can never recommend
        them) and the rest are translated to shard-local indices. Returned
        recommendations carry global item indices and labels.
        """
        self._check_user(user)
        shard = int(self._user_shard[user])
        banned = as_exclude_array(exclude)
        if banned.size:
            in_range = banned[(banned >= 0) & (banned < self.n_items)]
            mine = in_range[self._item_shard[in_range] == shard]
            banned = self._item_local[mine]
        ranked = self.engines[shard].recommend(
            int(self._user_local[user]), k=k, exclude_rated=exclude_rated,
            exclude=banned,
        )
        lookup = self._item_global[shard]
        return [
            Recommendation(int(lookup[r.item]), r.label, r.score)
            for r in ranked
        ]

    def recommend_many(self, users, k: int = 10, exclude_rated: bool = True,
                       excludes=None) -> list[list[Recommendation]]:
        """A batch of independent single-user requests, routed per shard.

        The fleet-side half of the micro-batching hook: requests are
        grouped by owning shard, each shard answers its slice through
        :meth:`ServingEngine.recommend_many` (one coalesced solve per
        depth group), and item indices are remapped shard-local → global.
        Exclusions are translated exactly as :meth:`recommend` translates
        them (out-of-shard bans dropped — the shard can never recommend
        them), so responses are bit-identical to calling :meth:`recommend`
        once per request.
        """
        users = list(users)
        if excludes is None:
            excludes = [None] * len(users)
        else:
            excludes = list(excludes)
            if len(excludes) != len(users):
                raise ConfigError(
                    f"excludes has {len(excludes)} entries for "
                    f"{len(users)} users"
                )
        k = check_positive_int(k, "k")
        out: list = [None] * len(users)
        by_shard: dict[int, tuple[list, list, list]] = {}
        for position, (user, exclude) in enumerate(zip(users, excludes)):
            self._check_user(user)
            shard = int(self._user_shard[user])
            banned = as_exclude_array(exclude)
            if banned.size:
                in_range = banned[(banned >= 0) & (banned < self.n_items)]
                mine = in_range[self._item_shard[in_range] == shard]
                banned = self._item_local[mine]
            positions, local_users, local_bans = by_shard.setdefault(
                shard, ([], [], [])
            )
            positions.append(position)
            local_users.append(int(self._user_local[user]))
            local_bans.append(banned)
        for shard, (positions, local_users, local_bans) in by_shard.items():
            ranked_lists = self.engines[shard].recommend_many(
                local_users, k=k, exclude_rated=exclude_rated,
                excludes=local_bans,
            )
            lookup = self._item_global[shard]
            for position, ranked in zip(positions, ranked_lists):
                out[position] = [
                    Recommendation(int(lookup[r.item]), r.label, r.score)
                    for r in ranked
                ]
        return out

    def serve_cohort(self, users, k: int = 10, batch_size: int = 256,
                     exclude_rated: bool = True) -> FleetReport:
        """Serve a cohort of global user indices across the fleet.

        Users with a fleet row-cache entry are answered without touching
        any shard. The rest are split by owning shard, answered by each
        engine's arrays path, remapped from shard-local to global item
        indices, materialised as rows (which enter the row cache) and
        merged back in original cohort order — byte-for-byte the shape an
        unsharded engine's report carries.
        """
        k = check_positive_int(k, "k")
        exclude_rated = bool(exclude_rated)
        users = as_index_array(users, self.n_users, "users")
        report = FleetReport(n_users=int(users.size), k=k,
                             n_shards=self.n_shards)
        with Timer() as timer:
            per_position: list = [None] * users.size
            if self.result_cache_size:
                missing: list[int] = []
                with self._lock:
                    for position, user in enumerate(users):
                        key = (int(user), k, exclude_rated)
                        entry = self._rows.get(key)
                        if entry is None:
                            missing.append(position)
                        else:
                            self._rows.move_to_end(key)
                            per_position[position] = entry
                    report.row_cache_hits = users.size - len(missing)
                    report.row_cache_misses = len(missing)
                    self.row_cache_hits += report.row_cache_hits
                    self.row_cache_misses += report.row_cache_misses
            else:
                missing = list(range(users.size))
            if missing:
                versions = [engine.model_version for engine in self.engines]
                positions = np.asarray(missing, dtype=np.int64)
                miss_users = users[positions]
                items = np.full((positions.size, k), -1, dtype=np.int64)
                scores = np.full((positions.size, k), -np.inf)
                shard_of = self._user_shard[miss_users]
                for shard in np.unique(shard_of):
                    shard = int(shard)
                    rows_of_shard = np.flatnonzero(shard_of == shard)
                    local = self._user_local[miss_users[rows_of_shard]]
                    shard_report, _, shard_items, shard_scores = (
                        self.engines[shard]._serve_cohort_arrays(
                            local, k=k, batch_size=batch_size,
                            exclude_rated=exclude_rated,
                        )
                    )
                    lookup = self._item_global[shard]
                    valid = shard_items >= 0
                    items[rows_of_shard] = np.where(
                        valid, lookup[np.where(valid, shard_items, 0)], -1
                    )
                    scores[rows_of_shard] = shard_scores
                    report.per_shard.append((shard, shard_report))
                flat = rows_from_ranked_arrays(
                    miss_users, items, scores, self._item_labels
                )
                bounds = np.concatenate(
                    [[0], np.cumsum((items >= 0).sum(axis=1))]
                )
                for index, position in enumerate(missing):
                    per_position[position] = flat[bounds[index]:
                                                  bounds[index + 1]]
                if self.result_cache_size:
                    with self._lock:
                        # Shard solves ran outside the lock; skip inserting
                        # rows whose shard absorbed an update meanwhile
                        # (version bumped, its users evicted) — re-caching
                        # them would serve pre-update rows indefinitely.
                        for index, position in enumerate(missing):
                            user = int(users[position])
                            shard = int(self._user_shard[user])
                            if self.engines[shard].model_version != versions[shard]:
                                continue
                            self._rows[(user, k, exclude_rated)] = (
                                per_position[position]
                            )
                        while len(self._rows) > self.result_cache_size:
                            self._rows.popitem(last=False)
            rows: list = []
            for user_rows in per_position:
                if user_rows:
                    rows.extend(user_rows)
            report.rows = rows
        report.seconds = timer.elapsed
        return report

    def warm(self, users=None, k: int = 10, batch_size: int = 256) -> FleetReport:
        """Pre-fill every shard's caches (default: every user)."""
        if users is None:
            users = np.arange(self.n_users, dtype=np.int64)
        return self.serve_cohort(users, k=k, batch_size=batch_size)

    # -- incremental updates --------------------------------------------------

    def apply_updates(self, events, duplicates: str | None = None,
                      ) -> FleetUpdateReport:
        """Route ``(user_label, item_label, rating)`` events to their shards.

        Routing is order-independent: the batch's events form a label
        graph, and every connected group of labels lands on one shard
        wherever its events sit in the batch (union-find over the batch,
        mirroring the component semantics the tier is built on). A group
        resolves to:

        1. the single shard its known labels live in → that shard
           (brand-new labels in the group register there too);
        2. two *different* known shards → the batch would merge components
           across shard boundaries; raises
           :class:`~repro.exceptions.ConfigError` (re-plan via
           ``shard-fit`` on the merged data);
        3. no known label at all → the least-loaded shard (fewest ratings,
           ties to the lowest id).

        The whole batch is pre-validated (rating values and scale, the
        ``duplicates`` policy, cross-shard edges) before any shard
        mutates, so a bad event rejects the batch with the fleet
        untouched. Each touched shard then absorbs its slice through
        :meth:`ServingEngine.apply_updates` (targeted invalidation, model
        version bump); untouched shards keep serving fully warm.
        """
        events = list(events)
        report = FleetUpdateReport(n_events=len(events))
        if not events:
            return report
        with Timer() as timer:
            # Union-find over the batch's labels, namespaced "u"/"i" — a
            # user and an item may legitimately share an external label.
            parent: dict = {}

            def find(key):
                root = key
                while parent.get(root, root) != root:
                    root = parent[root]
                while parent.get(key, key) != key:  # path compression
                    parent[key], key = root, parent[key]
                return root

            for event in events:
                user_root = find(("u", event[0]))
                item_root = find(("i", event[1]))
                if user_root != item_root:
                    parent[item_root] = user_root
            group_shard: dict = {}
            group_label: dict = {}
            for kind, position, lookup in (
                    ("u", 0, self._user_shard_by_label),
                    ("i", 1, self._item_shard_by_label)):
                for event in events:
                    label = event[position]
                    known = lookup.get(label)
                    if known is None:
                        continue
                    root = find((kind, label))
                    owner = group_shard.setdefault(root, known)
                    group_label.setdefault(root, label)
                    if owner != known:
                        raise ConfigError(
                            f"update batch links {group_label[root]!r} "
                            f"(shard {owner}) with {label!r} (shard {known}); "
                            "cross-shard edges cannot be applied to a "
                            "component-sharded tier — rebuild the plan "
                            "(repro.cli shard-fit) on the merged data"
                        )
            routed: list[list] = [[] for _ in range(self.n_shards)]
            loads = [engine.dataset.n_ratings for engine in self.engines]
            for event in events:
                root = find(("u", event[0]))
                shard = group_shard.get(root)
                if shard is None:  # every label in the group is brand-new
                    shard = int(np.argmin(loads))
                    group_shard[root] = shard
                loads[shard] += 1
                routed[shard].append(event)
            for shard, shard_events in enumerate(routed):
                if shard_events:
                    self._validate_events(shard, shard_events, duplicates)
            for shard, shard_events in enumerate(routed):
                if not shard_events:
                    continue
                update = self.engines[shard].apply_updates(
                    shard_events, duplicates=duplicates
                )
                self._absorb_new_labels(shard)
                self._evict_shard_rows(shard)
                report.per_shard.append((shard, update))
        report.seconds = timer.elapsed
        return report

    def _validate_events(self, shard: int, events, duplicates: str | None,
                         ) -> None:
        """Reject a bad batch before ANY shard mutates.

        Shards apply sequentially, so without this pre-pass a malformed
        event for shard 2 would leave shards 0–1 already updated — neither
        applied nor rejected, and retrying would double-apply. Mirrors the
        checks :meth:`RatingDataset.extend` performs (rating value and
        scale, plus the ``duplicates="error"`` policy against both the
        batch and the base), raising the same :class:`DataError` shapes
        while the fleet is still untouched.
        """
        engine = self.engines[shard]
        dataset = engine.dataset
        policy = duplicates or engine.update_duplicates
        seen: set = set()
        for user_label, item_label, rating in events:
            dataset.check_event_rating(user_label, item_label, rating)
            if policy != "error":
                continue
            pair = (user_label, item_label)
            if pair in seen:
                raise DataError(
                    f"duplicate event for (user={user_label!r}, "
                    f"item={item_label!r}); pass duplicates='last' to keep "
                    "the latest value"
                )
            seen.add(pair)
            try:
                already = dataset.rating(dataset.user_id(user_label),
                                         dataset.item_id(item_label)) != 0
            except (UnknownUserError, UnknownItemError):
                already = False
            if already:
                raise DataError(
                    f"(user={user_label!r}, item={item_label!r}) is already "
                    "rated; pass duplicates='last' to overwrite"
                )

    def _evict_shard_rows(self, shard: int) -> int:
        """Drop the fleet row cache's entries for one shard's users.

        A conservative superset of the update's affected users (the shard
        engine evicts precisely; the fleet layer only knows the shard) —
        over-eviction costs a re-route, never a stale row.
        """
        with self._lock:
            stale = [key for key in self._rows
                     if int(self._user_shard[key[0]]) == shard]
            for key in stale:
                del self._rows[key]
            return len(stale)

    def _absorb_new_labels(self, shard: int) -> None:
        """Append a shard's post-update users/items to the global space."""
        engine = self.engines[shard]
        dataset = engine.dataset
        known = self._user_global[shard].size
        if dataset.n_users > known:
            count = dataset.n_users - known
            fresh = np.arange(self.n_users, self.n_users + count,
                              dtype=np.int64)
            self._user_global[shard] = np.concatenate(
                [self._user_global[shard], fresh]
            )
            self._user_shard = np.concatenate(
                [self._user_shard, np.full(count, shard, dtype=np.int64)]
            )
            self._user_local = np.concatenate(
                [self._user_local,
                 np.arange(known, dataset.n_users, dtype=np.int64)]
            )
            for label in dataset.user_labels[known:]:
                self._user_shard_by_label[label] = shard
        known = self._item_global[shard].size
        if dataset.n_items > known:
            count = dataset.n_items - known
            fresh = np.arange(self.n_items, self.n_items + count,
                              dtype=np.int64)
            self._item_global[shard] = np.concatenate(
                [self._item_global[shard], fresh]
            )
            self._item_shard = np.concatenate(
                [self._item_shard, np.full(count, shard, dtype=np.int64)]
            )
            self._item_local = np.concatenate(
                [self._item_local,
                 np.arange(known, dataset.n_items, dtype=np.int64)]
            )
            self._item_labels = np.concatenate(
                [self._item_labels, _label_array(dataset.item_labels[known:])]
            )
            for label in dataset.item_labels[known:]:
                self._item_shard_by_label[label] = shard

    # -- lifecycle / introspection -------------------------------------------

    def clear_caches(self) -> None:
        """Drop the fleet row cache and both cache layers on every shard."""
        with self._lock:
            self._rows.clear()
            self.row_cache_hits = 0
            self.row_cache_misses = 0
        for engine in self.engines:
            engine.clear_caches()

    def invalidate_user(self, user: int) -> int:
        """Evict one global user's rows: fleet row cache + shard cache."""
        self._check_user(user)
        with self._lock:
            stale = [key for key in self._rows if key[0] == int(user)]
            for key in stale:
                del self._rows[key]
        return self.engines[int(self._user_shard[user])].invalidate_user(
            int(self._user_local[user])
        )

    def close(self) -> None:
        """Shut down every shard engine's worker pool."""
        for engine in self.engines:
            engine.close()

    def stats(self) -> dict:
        """Fleet shape and row-cache counters plus each shard's own stats."""
        with self._lock:
            fleet = {
                "n_shards": self.n_shards,
                "n_users": self.n_users,
                "n_items": self.n_items,
                "row_entries": len(self._rows),
                "row_hits": self.row_cache_hits,
                "row_misses": self.row_cache_misses,
            }
        fleet["shards"] = [engine.stats() for engine in self.engines]
        return fleet

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(n_shards={self.n_shards}, n_users={self.n_users}, "
            f"n_items={self.n_items})"
        )

"""Deterministic fault injection for the multi-process shard fleet.

Failure-injection tests need crashes that happen at an *exact, repeatable*
point in a worker's request stream — "the worker dies while applying the
second update batch", not "kill it and hope the race lands". A
:class:`FaultSpec` encodes one such scripted failure; the fleet supervisor
hands it to the target shard's worker process at spawn time and the worker
loop (:mod:`repro.service.fleet`) consults it before serving each request:

* ``kill_at_request=N`` — the worker SIGKILLs itself upon receiving its
  N-th *serving* request (``recommend`` / ``recommend_many`` /
  ``serve_cohort``; health pings don't count, so supervision traffic never
  perturbs the script). Models a hard crash mid-read.
* ``hang_at_request=N`` — instead of dying, the worker sleeps
  ``hang_seconds`` before answering its N-th serving request, long enough
  to trip the supervisor's per-request timeout. Models a wedged worker
  (deadlock, runaway solve) that is alive but not answering.
* ``crash_mid_update`` — the worker SIGKILLs itself inside
  ``apply_updates``: ``"before-apply"`` dies before mutating any state,
  ``"after-apply"`` mutates the engine and dies *before acknowledging* —
  the hard case, because recovery must not double-apply. Either way the
  supervisor restarts from the artifact and replays the write-ahead log,
  so recovered state is bit-identical to a never-crashed fleet.

By default a spec arms only the worker's **first** incarnation: after the
supervisor restarts the shard, the replacement runs clean (the common
"crash once, recover" scenario). ``persistent=True`` re-arms the spec on
every restart, which — combined with the supervisor's bounded retry
budget — produces a deterministic *down* shard for degraded-serving tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigError

__all__ = ["FaultSpec", "CRASH_POINTS"]

#: Where inside ``apply_updates`` a ``crash_mid_update`` fault fires.
CRASH_POINTS = ("before-apply", "after-apply")


@dataclass(frozen=True)
class FaultSpec:
    """One scripted worker failure (see module docstring for semantics).

    Attributes
    ----------
    kill_at_request:
        1-based serving-request count at which the worker SIGKILLs itself
        (``None`` = never).
    hang_at_request:
        1-based serving-request count at which the worker sleeps
        ``hang_seconds`` before responding (``None`` = never).
    hang_seconds:
        Sleep length for ``hang_at_request`` — pick it longer than the
        supervisor's ``request_timeout_s`` so the hang is detected.
    crash_mid_update:
        ``None``, ``"before-apply"`` or ``"after-apply"``: SIGKILL inside
        the next ``apply_updates`` request, before or after the engine
        mutates.
    persistent:
        Re-arm the spec in every restarted incarnation of the worker
        (default False: only the first incarnation is faulty).
    """

    kill_at_request: int | None = None
    hang_at_request: int | None = None
    hang_seconds: float = 5.0
    crash_mid_update: str | None = None
    persistent: bool = False

    def __post_init__(self):
        for name in ("kill_at_request", "hang_at_request"):
            value = getattr(self, name)
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, int)
                                      or value < 1):
                raise ConfigError(
                    f"{name} must be a positive int or None; got {value!r}"
                )
        if not isinstance(self.hang_seconds, (int, float)) \
                or isinstance(self.hang_seconds, bool) \
                or self.hang_seconds < 0:
            raise ConfigError(
                f"hang_seconds must be a number >= 0; got {self.hang_seconds!r}"
            )
        if self.crash_mid_update is not None \
                and self.crash_mid_update not in CRASH_POINTS:
            raise ConfigError(
                f"crash_mid_update must be one of {CRASH_POINTS} or None; "
                f"got {self.crash_mid_update!r}"
            )

    @property
    def is_noop(self) -> bool:
        """True when the spec injects nothing (all triggers disabled)."""
        return (self.kill_at_request is None
                and self.hang_at_request is None
                and self.crash_mid_update is None)

"""PureSVD (Cremonesi, Koren & Turrin, RecSys 2010) — the paper's strongest
matrix-factorisation competitor (§5.1.1).

PureSVD treats unrated cells as zeros, takes a rank-``f`` truncated SVD of
the raw rating matrix ``R ≈ U Σ Qᵀ``, and scores user ``u`` on item ``i`` as
``r̂_ui = r_u · Q q_iᵀ`` — equivalently ``(U Σ Qᵀ)_ui``. The cited
benchmarking paper found it beat SVD++/AsySVD and neighbourhood models on
top-N recall, yet (as this paper demonstrates) its principal components
capture head items, so its long-tail recall and diversity are poor — the
behaviour our Figure 5/6 and Table 2 reproductions check for.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.artifacts import register_recommender
from repro.core.base import Recommender
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.utils.validation import check_positive_int, check_random_state

__all__ = ["PureSVDRecommender"]


@register_recommender
class PureSVDRecommender(Recommender):
    """Truncated-SVD top-N recommender on the raw rating matrix.

    Parameters
    ----------
    n_factors:
        Rank ``f`` of the factorisation (tuned per dataset in the original
        evaluation; 50 is the classic MovieLens choice, capped automatically
        at ``min(n_users, n_items) - 1``).
    seed:
        Seed for the Lanczos starting vector (scipy ``svds`` is otherwise
        run-to-run nondeterministic).
    """

    name = "PureSVD"

    def __init__(self, n_factors: int = 50, seed: int = 0):
        super().__init__()
        self.n_factors = check_positive_int(n_factors, "n_factors")
        self.seed = seed
        self._user_factors: np.ndarray | None = None   # U Σ
        self._item_factors: np.ndarray | None = None   # Q

    def _fit(self, dataset: RatingDataset) -> None:
        matrix = sp.csr_matrix(dataset.matrix, dtype=np.float64)
        max_rank = min(matrix.shape) - 1
        if max_rank < 1:
            raise ConfigError("PureSVD requires at least a 2x2 rating matrix")
        rank = min(self.n_factors, max_rank)
        rng = check_random_state(self.seed)
        v0 = rng.random(min(matrix.shape))
        u, s, vt = spla.svds(matrix, k=rank, v0=v0)
        # svds returns singular values ascending; order is irrelevant for the
        # reconstruction but keep factors aligned.
        self._user_factors = u * s
        self._item_factors = vt

    def get_config(self) -> dict:
        return {"n_factors": self.n_factors, "seed": self.seed}

    def _state_arrays(self) -> dict:
        return {"user_factors": self._user_factors,
                "item_factors": self._item_factors}

    def _load_state_arrays(self, arrays: dict) -> None:
        self._user_factors = np.asarray(arrays["user_factors"], dtype=np.float64)
        self._item_factors = np.asarray(arrays["item_factors"], dtype=np.float64)

    def _score_user(self, user: int) -> np.ndarray:
        return self._score_users_batch(np.array([user], dtype=np.int64))[0]

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        # One (n_users, f) × (f, n_items) product scores the whole cohort.
        return self._user_factors[users] @ self._item_factors

    @property
    def effective_rank(self) -> int:
        """The rank actually used (after capping to the matrix size)."""
        self._require_fitted()
        return self._item_factors.shape[0]

"""The LDA-based recommendation baseline (paper §5.1.1).

Scores every item for user ``u`` by the model likelihood
``p(i|u) = Σ_z θ_uz · φ_zi`` from the same rating-data LDA the paper's AC2
variant uses for entropy. As the paper observes, the learned topics
concentrate probability mass on popular items, so the top-N lists are
accurate on the head but weak in the long tail and poorly diversified —
the behaviour Table 2 (diversity 0.035/0.025, worst of all) checks.
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import register_recommender
from repro.core.base import Recommender
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.topics import fit_lda
from repro.topics.model import LatentTopicModel
from repro.utils.validation import check_in_options, check_positive_int

__all__ = ["LDARecommender"]


@register_recommender
class LDARecommender(Recommender):
    """Latent-topic likelihood ranking.

    Parameters
    ----------
    n_topics:
        K (the paper tunes this; defaults follow the synthetic ground truth
        scale of ~10 genres).
    method:
        LDA engine: ``"cvb0"`` (fast, default) or ``"gibbs"`` (Algorithm 2).
    model:
        Optionally reuse a pre-trained :class:`LatentTopicModel` (e.g. the
        one AC2 was fitted with); it must match the dataset's shape.
    seed, lda_kwargs:
        Training seed and extra engine arguments.
    """

    name = "LDA"

    def __init__(self, n_topics: int = 10, method: str = "cvb0",
                 model: LatentTopicModel | None = None, seed=0,
                 lda_kwargs: dict | None = None):
        super().__init__()
        self.n_topics = check_positive_int(n_topics, "n_topics")
        self.method = check_in_options(method, "method", ("cvb0", "gibbs"))
        self.model = model
        self._model_supplied = model is not None
        self.seed = seed
        self.lda_kwargs = dict(lda_kwargs or {})

    def _fit(self, dataset: RatingDataset) -> None:
        if self.model is None:
            self.model = fit_lda(
                dataset, self.n_topics, method=self.method, seed=self.seed,
                **self.lda_kwargs
            )
        if (self.model.n_users, self.model.n_items) != (dataset.n_users, dataset.n_items):
            raise ConfigError(
                f"pre-trained model shape ({self.model.n_users}, {self.model.n_items}) "
                f"does not match dataset ({dataset.n_users}, {dataset.n_items})"
            )

    def _partial_fit(self, delta):
        # Topic mixtures are a global function of the rating matrix, so the
        # update path is the refit fallback — but a *self-trained* model
        # must actually retrain (same seed, merged matrix) rather than keep
        # serving stale topics through _fit's train-once guard. A model the
        # caller supplied is theirs to manage: it is kept while it still
        # matches, and rejected *before* any state moves once the
        # catalogue has outgrown it (the in-fit check would fire only
        # after self.dataset was already swapped).
        if self._model_supplied:
            merged = delta.dataset
            if (self.model.n_users, self.model.n_items) != (
                    merged.n_users, merged.n_items):
                raise ConfigError(
                    f"pre-trained model shape ({self.model.n_users}, "
                    f"{self.model.n_items}) does not match the updated "
                    f"dataset ({merged.n_users}, {merged.n_items}); supply "
                    "a retrained model and refit"
                )
        else:
            self.model = None
        return super()._partial_fit(delta)

    def get_config(self) -> dict:
        # The trained model rides in the state arrays, not the config, so a
        # recommender built around a shared pre-trained model still
        # round-trips (the loaded instance simply owns its own copy).
        return {"n_topics": self.n_topics, "method": self.method,
                "seed": self.seed, "lda_kwargs": self.lda_kwargs}

    def _state_arrays(self) -> dict:
        return {
            "user_topics": self.model.user_topics,
            "topic_items": self.model.topic_items,
            "alpha": np.array(self.model.alpha),
            "beta": np.array(self.model.beta),
        }

    def _load_state_arrays(self, arrays: dict) -> None:
        self.model = LatentTopicModel(
            arrays["user_topics"], arrays["topic_items"],
            alpha=float(np.asarray(arrays["alpha"])),
            beta=float(np.asarray(arrays["beta"])),
        )

    def _score_user(self, user: int) -> np.ndarray:
        return self.model.score_items(user)

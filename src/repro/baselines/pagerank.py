"""Personalized PageRank baselines: PPR and the paper's DPPR (§5.1.1, Eq. 15).

PPR ranks items by their personalized-PageRank mass with the restart
distribution centred on the query user's rated items — a popularity-and-
similarity blend that, as the paper notes, favours head items. The paper
therefore designs **Discounted PPR** as its long-tail baseline::

    DPPR(i|S) = PPR(i|S) / Popularity(i)

where popularity is the item's rating count. DPPR recommends deep-tail
items (Figure 6 shows it comparable to AT/AC) but loses on accuracy and
taste match (Figure 5, Table 3) — both behaviours are asserted in the
reproduction benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import GraphStateMixin, register_recommender
from repro.core.base import Recommender
from repro.data.dataset import RatingDataset
from repro.graph.bipartite import UserItemGraph
from repro.graph.proximity import personalized_pagerank_multi
from repro.utils.validation import check_fraction

__all__ = ["PersonalizedPageRankRecommender", "DiscountedPageRankRecommender"]


@register_recommender
class PersonalizedPageRankRecommender(GraphStateMixin, Recommender):
    """Rank items by personalized PageRank around the user's rated items.

    Parameters
    ----------
    damping:
        λ, the probability of following an edge instead of teleporting back
        to the restart set (paper's tuned value: 0.5).
    tol, max_iter:
        Power-iteration stopping controls.
    """

    name = "PPR"

    def __init__(self, damping: float = 0.5, tol: float = 1e-10, max_iter: int = 1000):
        super().__init__()
        self.damping = check_fraction(damping, "damping", inclusive_low=True,
                                      inclusive_high=False)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.graph: UserItemGraph | None = None

    def _fit(self, dataset: RatingDataset) -> None:
        self.graph = UserItemGraph(dataset)

    def get_config(self) -> dict:
        return {"damping": self.damping, "tol": self.tol,
                "max_iter": self.max_iter}

    def _score_user(self, user: int) -> np.ndarray:
        return self._score_users_batch(np.array([user], dtype=np.int64))[0]

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        # All restart walks share the transition matrix, so the cohort runs
        # as one multi-column power iteration; each column freezes at its own
        # convergence point, keeping batch and per-user results identical.
        scores = np.full((users.size, self.dataset.n_items), -np.inf)
        restart_sets = []
        active = []
        for row, user in enumerate(users):
            items = self.dataset.items_of_user(int(user))
            if items.size == 0:
                continue
            restart_sets.append(self.graph.item_nodes(items))
            active.append(row)
        if not active:
            return scores
        pi = personalized_pagerank_multi(
            self.graph.transition_matrix(), restart_sets,
            damping=self.damping, tol=self.tol, max_iter=self.max_iter,
        )
        item_mass = pi[self.graph.item_nodes(), :]
        for column, row in enumerate(active):
            scores[row] = item_mass[:, column]
        return scores


@register_recommender
class DiscountedPageRankRecommender(PersonalizedPageRankRecommender):
    """The paper's DPPR baseline: PPR discounted by item popularity (Eq. 15).

    Items the PPR walk never reaches (score 0) stay at 0 after discounting
    and thus rank below every reached item, mirroring the graph methods'
    unreachable ``-inf`` semantics without being infinite.
    """

    name = "DPPR"

    def _refresh_popularity(self) -> None:
        # The discount vector is a pure function of the dataset; recompute
        # (one vectorised column count) instead of persisting it.
        self._popularity = np.maximum(
            self.dataset.item_popularity(), 1
        ).astype(np.float64)

    def _fit(self, dataset: RatingDataset) -> None:
        super()._fit(dataset)
        self._refresh_popularity()

    def _load_state_arrays(self, arrays: dict) -> None:
        super()._load_state_arrays(arrays)
        self._refresh_popularity()

    def _post_partial_fit(self, delta, update):
        # Popularity only changed for touched items, which live in touched
        # components — untouched users' scores are unaffected, so the
        # graph mixin's component-scoped affected set stands.
        self._refresh_popularity()
        return super()._post_partial_fit(delta, update)

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        # Discounting is elementwise, so it composes directly with the batch
        # PPR solve; -inf cold-start rows stay -inf under the division.
        return super()._score_users_batch(users) / self._popularity

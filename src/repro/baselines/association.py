"""Association-rule recommendation (paper §1's motivating strawman).

The paper opens by arguing that association-rule recommenders "typically
recommend rather generic, popular items" because rules need high support for
both antecedent and consequent. This implementation mines pairwise rules
``j → i`` with the classic support/confidence thresholds and scores a user's
candidates by the best-confidence rule fired by their rated items — so the
claim becomes checkable: its recommendations should be the most head-heavy
of all baselines (see the Figure 6 bench).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.artifacts import register_recommender
from repro.core.base import Recommender
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.utils.sparse import binarize
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["AssociationRuleRecommender"]


@register_recommender
class AssociationRuleRecommender(Recommender):
    """Pairwise association rules with support/confidence filtering.

    Parameters
    ----------
    min_support:
        Minimum co-occurrence count (absolute number of users) for a rule
        ``j → i`` to exist.
    min_confidence:
        Minimum ``P(i|j) = supp(i, j) / supp(j)`` for the rule to fire.

    Scores: ``score(u, i) = max_{j ∈ S_u} confidence(j → i)`` (0 when no
    rule fires — such items rank below every rule-backed item but are not
    excluded, so top-N lists stay full).
    """

    name = "AssocRules"

    def __init__(self, min_support: int = 2, min_confidence: float = 0.1):
        super().__init__()
        self.min_support = check_positive_int(min_support, "min_support")
        self.min_confidence = check_fraction(min_confidence, "min_confidence")
        self._confidence: sp.csr_matrix | None = None

    def _fit(self, dataset: RatingDataset) -> None:
        binary = binarize(dataset.matrix)
        # Co-occurrence counts: cooc[j, i] = #users who rated both.
        cooc = (binary.T @ binary).tocoo()
        item_support = np.asarray(binary.sum(axis=0)).ravel()

        antecedent, consequent, counts = cooc.row, cooc.col, cooc.data
        keep = (antecedent != consequent) & (counts >= self.min_support)
        antecedent, consequent, counts = antecedent[keep], consequent[keep], counts[keep]
        if antecedent.size == 0:
            self._confidence = sp.csr_matrix(
                (dataset.n_items, dataset.n_items), dtype=np.float64
            )
            return
        confidence = counts / item_support[antecedent]
        keep = confidence >= self.min_confidence
        self._confidence = sp.csr_matrix(
            (confidence[keep], (antecedent[keep], consequent[keep])),
            shape=(dataset.n_items, dataset.n_items),
        )

    def get_config(self) -> dict:
        return {"min_support": self.min_support,
                "min_confidence": self.min_confidence}

    def _state_arrays(self) -> dict:
        return {"confidence": self._confidence}

    def _load_state_arrays(self, arrays: dict) -> None:
        self._confidence = sp.csr_matrix(arrays["confidence"], dtype=np.float64)

    def n_rules(self) -> int:
        """Number of mined rules passing both thresholds."""
        self._require_fitted()
        return int(self._confidence.nnz)

    def _score_user(self, user: int) -> np.ndarray:
        items = self.dataset.items_of_user(user)
        if items.size == 0:
            return np.zeros(self.dataset.n_items)
        rows = self._confidence[items]
        if rows.nnz == 0:
            return np.zeros(self.dataset.n_items)
        return np.asarray(rows.max(axis=0).todense()).ravel()

    def rules_from(self, item: int) -> list[tuple[int, float]]:
        """All rules ``item → i`` as ``(consequent, confidence)`` pairs."""
        dataset = self._require_fitted()
        dataset._check_item(item)
        row = self._confidence.getrow(item).tocoo()
        return sorted(
            zip(row.col.tolist(), row.data.tolist()), key=lambda t: -t[1]
        )

"""Classic neighbourhood collaborative filtering (user-kNN and item-kNN).

The paper's introduction singles out neighbourhood CF as the archetype of a
*local-popularity* recommender: "finds k most similar users … then
recommends the most popular item among these k users". These implementations
serve as extended baselines for the diversity/popularity experiments and for
the worked Figure 2 contrast (CF suggests the locally-popular M1 where HT
finds the niche M4).

Both use cosine similarity on the raw rating vectors (sparse, vectorised);
scores are similarity-weighted rating sums over the neighbourhood.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.artifacts import register_recommender
from repro.core.base import Recommender
from repro.data.dataset import RatingDataset
from repro.utils.validation import check_positive_int

__all__ = ["UserKNNRecommender", "ItemKNNRecommender", "cosine_similarity_matrix"]


def cosine_similarity_matrix(matrix: sp.spmatrix) -> np.ndarray:
    """Dense row-by-row cosine similarity of a sparse matrix.

    Zero rows yield zero similarity to everything (not NaN). Intended for
    the laptop-scale matrices of this reproduction; the result is
    ``(n_rows, n_rows)`` dense.
    """
    csr = sp.csr_matrix(matrix, dtype=np.float64)
    norms = np.sqrt(np.asarray(csr.multiply(csr).sum(axis=1)).ravel())
    inv = np.zeros_like(norms)
    nonzero = norms > 0
    inv[nonzero] = 1.0 / norms[nonzero]
    normalised = sp.diags(inv) @ csr
    return np.asarray((normalised @ normalised.T).todense())


class _SimilarityStateMixin:
    """Persistence hooks shared by the kNN models (state = one dense matrix)."""

    def get_config(self) -> dict:
        return {"k_neighbors": self.k_neighbors}

    def _state_arrays(self) -> dict:
        return {"similarity": self._similarity}

    def _load_state_arrays(self, arrays: dict) -> None:
        self._similarity = np.asarray(arrays["similarity"], dtype=np.float64)


@register_recommender
class UserKNNRecommender(_SimilarityStateMixin, Recommender):
    """User-based kNN CF: score items by what the k most similar users rated.

    ``score(u, i) = Σ_{v ∈ N_k(u)} sim(u, v) · r_vi`` with cosine
    similarity and the user itself excluded from its neighbourhood.
    """

    name = "UserKNN"

    def __init__(self, k_neighbors: int = 30):
        super().__init__()
        self.k_neighbors = check_positive_int(k_neighbors, "k_neighbors")
        self._similarity: np.ndarray | None = None

    def _fit(self, dataset: RatingDataset) -> None:
        self._similarity = cosine_similarity_matrix(dataset.matrix)
        np.fill_diagonal(self._similarity, 0.0)

    def _score_user(self, user: int) -> np.ndarray:
        return self._score_users_batch(np.array([user], dtype=np.int64))[0]

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        sims = self._similarity[users]
        k = min(self.k_neighbors, self._similarity.shape[0] - 1)
        if k <= 0 or users.size == 0:
            return np.zeros((users.size, self.dataset.n_items))
        # Row-wise neighbourhood selection, then one sparse weight-matrix ×
        # rating-matrix product scores the whole cohort.
        neighbors = np.argpartition(-sims, k - 1, axis=1)[:, :k]
        weights = np.take_along_axis(sims, neighbors, axis=1)
        weights = np.where(weights > 0, weights, 0.0)
        weight_matrix = sp.csr_matrix(
            (weights.ravel(),
             (np.repeat(np.arange(users.size), k), neighbors.ravel())),
            shape=(users.size, self._similarity.shape[0]),
        )
        return np.asarray((weight_matrix @ self.dataset.matrix).todense())


@register_recommender
class ItemKNNRecommender(_SimilarityStateMixin, Recommender):
    """Item-based kNN CF: score items by similarity to the user's profile.

    ``score(u, i) = Σ_{j ∈ S_u} sim(i, j) · r_uj`` with cosine similarity
    between item rating columns, truncated to each item's ``k`` most similar
    items.
    """

    name = "ItemKNN"

    def __init__(self, k_neighbors: int = 30):
        super().__init__()
        self.k_neighbors = check_positive_int(k_neighbors, "k_neighbors")
        self._similarity: np.ndarray | None = None

    def _fit(self, dataset: RatingDataset) -> None:
        sim = cosine_similarity_matrix(dataset.matrix.T)
        np.fill_diagonal(sim, 0.0)
        # Keep each item's k strongest neighbours; zero the rest.
        k = min(self.k_neighbors, sim.shape[0] - 1)
        if k > 0:
            threshold_idx = np.argpartition(-sim, k - 1, axis=1)[:, :k]
            mask = np.zeros_like(sim, dtype=bool)
            np.put_along_axis(mask, threshold_idx, True, axis=1)
            sim = np.where(mask, sim, 0.0)
        self._similarity = sim

    def _score_user(self, user: int) -> np.ndarray:
        return self._score_users_batch(np.array([user], dtype=np.int64))[0]

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        # score(u, i) = Σ_j r_uj · sim(j, i) is exactly one sparse
        # rating-rows × dense similarity product; users with no ratings get
        # an all-zero row for free.
        return np.asarray(self.dataset.matrix[users] @ self._similarity)

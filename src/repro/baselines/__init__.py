"""Baseline recommenders: the paper's competitors (LDA, PureSVD, PPR/DPPR)
plus extended references (popularity, random, kNN CF, association rules)."""

from repro.baselines.association import AssociationRuleRecommender
from repro.baselines.lda_rec import LDARecommender
from repro.baselines.neighborhood import (
    ItemKNNRecommender,
    UserKNNRecommender,
    cosine_similarity_matrix,
)
from repro.baselines.pagerank import (
    DiscountedPageRankRecommender,
    PersonalizedPageRankRecommender,
)
from repro.baselines.popularity import MostPopularRecommender, RandomRecommender
from repro.baselines.puresvd import PureSVDRecommender
from repro.baselines.walk_similarity import (
    CommuteTimeRecommender,
    KatzRecommender,
    RandomWalkWithRestartRecommender,
)

__all__ = [
    "CommuteTimeRecommender",
    "KatzRecommender",
    "RandomWalkWithRestartRecommender",
    "AssociationRuleRecommender",
    "LDARecommender",
    "ItemKNNRecommender",
    "UserKNNRecommender",
    "cosine_similarity_matrix",
    "DiscountedPageRankRecommender",
    "PersonalizedPageRankRecommender",
    "MostPopularRecommender",
    "RandomRecommender",
    "PureSVDRecommender",
]

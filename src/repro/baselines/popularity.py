"""Trivial reference recommenders: MostPopular and Random.

The paper repeatedly contrasts its methods against "simply suggesting the
most popular items" (§3.2) — MostPopular makes that comparison explicit, and
Random provides the diversity/popularity floor/ceiling every metric can be
sanity-checked against.
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import register_recommender
from repro.core.base import PartialFitReport, Recommender
from repro.data.dataset import RatingDataset
from repro.utils.validation import check_random_state

__all__ = ["MostPopularRecommender", "RandomRecommender"]


@register_recommender
class MostPopularRecommender(Recommender):
    """Rank every item by its global rating count (ties by index).

    The same list is offered to every user — the degenerate behaviour the
    paper's diversity experiment (Table 2) penalises.
    """

    name = "MostPopular"

    def __init__(self):
        super().__init__()
        self._scores: np.ndarray | None = None

    def _fit(self, dataset: RatingDataset) -> None:
        self._scores = dataset.item_popularity().astype(np.float64)

    def _partial_fit(self, delta) -> PartialFitReport:
        # Popularity is a per-item rating count: pad new items with zero and
        # bump each genuinely new (non-replacement) pair by one. Counts are
        # small integers, exact in float64, so this is bit-identical to a
        # recount — but the *ranking* is globally coupled (one list serves
        # everyone), hence affected_users=None.
        self.dataset = delta.dataset
        scores = np.zeros(delta.dataset.n_items)
        scores[:self._scores.shape[0]] = self._scores
        new_pairs = ~delta.replaced
        np.add.at(scores, delta.items[new_pairs], 1.0)
        self._scores = scores
        return PartialFitReport(
            mode="incremental", n_events=delta.n_events,
            n_new_users=delta.n_new_users, n_new_items=delta.n_new_items,
            affected_users=None,
        )

    def _score_user(self, user: int) -> np.ndarray:
        return self._scores.copy()

    def _score_users_batch(self, users: np.ndarray) -> np.ndarray:
        # The list is user-independent: one broadcast serves any cohort.
        return np.tile(self._scores, (users.size, 1))

    def _state_arrays(self) -> dict:
        return {"item_scores": self._scores}

    def _load_state_arrays(self, arrays: dict) -> None:
        self._scores = np.asarray(arrays["item_scores"], dtype=np.float64)


@register_recommender
class RandomRecommender(Recommender):
    """Uniformly random scores, deterministic per (seed, user).

    Maximises diversity and draws items uniformly from the catalogue —
    the popularity floor. Each user's scores are drawn from a generator
    seeded with ``(seed, user)`` so repeated calls are stable.
    """

    name = "Random"

    def __init__(self, seed: int = 0):
        super().__init__()
        self.seed = int(seed)

    def get_config(self) -> dict:
        return {"seed": self.seed}

    def _fit(self, dataset: RatingDataset) -> None:
        pass

    def _score_user(self, user: int) -> np.ndarray:
        rng = check_random_state(np.random.SeedSequence([self.seed, user]).generate_state(1)[0])
        return rng.random(self.dataset.n_items)

"""Related-work random-walk recommenders (paper §2, §3.2).

The paper's §3.2 dismisses three walk-based proximities as unsuited to the
long tail: *random walk with restart* and *commute time* "tend to recommend
popular items … dominated by the stationary distribution", while *Katz*
"does not take into account the popularity of items". These classes make
those claims testable by wrapping the :mod:`repro.graph.proximity`
primitives in the common :class:`~repro.core.base.Recommender` interface;
``benchmarks/bench_ablation_related_walks.py`` reproduces the §3.2 argument
empirically.
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import GraphStateMixin, register_recommender
from repro.core.base import Recommender
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigError
from repro.graph.bipartite import UserItemGraph
from repro.graph.proximity import katz_index, personalized_pagerank
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["RandomWalkWithRestartRecommender", "CommuteTimeRecommender",
           "KatzRecommender"]


@register_recommender
class RandomWalkWithRestartRecommender(GraphStateMixin, Recommender):
    """RWR: personalized PageRank restarting at the *user node* itself.

    This is the classic RWR recommendation setup ([23] in the paper):
    restart at the query user (not, as in the DPPR baseline, at their item
    set). Dominated by the stationary distribution for mid-range damping,
    hence head-biased — the §3.2 claim.
    """

    name = "RWR"

    def __init__(self, damping: float = 0.8, tol: float = 1e-10,
                 max_iter: int = 1000):
        super().__init__()
        self.damping = check_fraction(damping, "damping", inclusive_low=True,
                                      inclusive_high=False)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.graph: UserItemGraph | None = None

    def _fit(self, dataset: RatingDataset) -> None:
        self.graph = UserItemGraph(dataset)

    def get_config(self) -> dict:
        return {"damping": self.damping, "tol": self.tol,
                "max_iter": self.max_iter}

    def _score_user(self, user: int) -> np.ndarray:
        node = self.graph.user_node(user)
        if self.graph.degrees[node] == 0:
            return np.full(self.dataset.n_items, -np.inf)
        pi = personalized_pagerank(
            self.graph.transition_matrix(), np.array([node]),
            damping=self.damping, tol=self.tol, max_iter=self.max_iter,
        )
        return pi[self.graph.item_nodes()]


@register_recommender
class CommuteTimeRecommender(GraphStateMixin, Recommender):
    """Rank items by ascending commute time ``C(q, i) = H(q|i) + H(i|q)``.

    The symmetric round-trip variant of hitting time ([4, 8] in the paper).
    The ``H(i|q)`` leg — reaching the *item* from the user — is governed by
    the item's stationary mass, so commute time largely ranks like
    popularity (§3.2); HT keeps only the popularity-discounting leg.

    Dense O(n³) via the Laplacian pseudoinverse; guarded by ``max_nodes``.
    """

    name = "CommuteTime"

    def __init__(self, max_nodes: int = 5000):
        super().__init__()
        self.max_nodes = check_positive_int(max_nodes, "max_nodes")
        self.graph: UserItemGraph | None = None
        self._component_cache: dict[int, np.ndarray] = {}

    def _fit(self, dataset: RatingDataset) -> None:
        self.graph = UserItemGraph(dataset)
        self._component_cache = {}
        if self.graph.n_nodes > self.max_nodes:
            raise ConfigError(
                f"CommuteTimeRecommender is dense O(n^3): graph has "
                f"{self.graph.n_nodes} nodes > max_nodes={self.max_nodes}"
            )

    def get_config(self) -> dict:
        return {"max_nodes": self.max_nodes}

    def _load_state_arrays(self, arrays: dict) -> None:
        super()._load_state_arrays(arrays)
        # Laplacian pseudoinverses are rebuilt lazily per component on demand.
        self._component_cache = {}

    def _partial_fit(self, delta):
        # Size-gate *before* any state is touched: a rejected update must
        # leave the fitted recommender exactly as it was.
        n_nodes = delta.dataset.n_users + delta.dataset.n_items
        if n_nodes > self.max_nodes:
            raise ConfigError(
                f"CommuteTimeRecommender is dense O(n^3): updated graph has "
                f"{n_nodes} nodes > max_nodes={self.max_nodes}"
            )
        return super()._partial_fit(delta)

    def _post_partial_fit(self, delta, update):
        # Targeted invalidation of the pseudoinverse memo: only touched
        # components' Laplacians changed (labels of untouched components
        # are stable across the update, and their cached pinv — keyed by
        # label, node indices re-derived per query — stays exact).
        for label in update.touched_components:
            self._component_cache.pop(int(label), None)
        return super()._post_partial_fit(delta, update)

    def clear_scoring_cache(self) -> None:
        self._component_cache = {}

    def _component_pinv(self, label: int, component: np.ndarray):
        """Laplacian pseudoinverse of one component, cached across users."""
        if label not in self._component_cache:
            sub = self.graph.adjacency[component][:, component]
            degrees = np.asarray(sub.sum(axis=1)).ravel()
            laplacian = np.diag(degrees) - sub.toarray()
            lplus = np.linalg.pinv(laplacian)
            self._component_cache[label] = (lplus, float(degrees.sum()))
        return self._component_cache[label]

    def _score_user(self, user: int) -> np.ndarray:
        graph = self.graph
        scores = np.full(self.dataset.n_items, -np.inf)
        node = graph.user_node(user)
        if graph.degrees[node] == 0:
            return scores
        # Commute time is finite only within the user's component; the
        # component's pseudoinverse is computed once and reused.
        component = graph.component_of(node)
        label = int(graph.component_labels()[node])
        lplus, volume = self._component_pinv(label, component)
        local = int(np.flatnonzero(component == node)[0])
        diag = np.diag(lplus)
        times = volume * (diag[local] + diag - 2.0 * lplus[local])
        item_positions = np.flatnonzero(component >= graph.n_users)
        items = component[item_positions] - graph.n_users
        scores[items] = -times[item_positions]
        return scores


@register_recommender
class KatzRecommender(GraphStateMixin, Recommender):
    """Rank items by the truncated Katz index from the query user.

    Counts damped paths of every length from the user ([8] in the paper).
    Path counts grow with item degree, so Katz, too, skews popular — but
    unlike RWR it at least weights short taste paths heavily.
    """

    name = "Katz"

    def __init__(self, beta: float | None = None, max_length: int = 8):
        super().__init__()
        if beta is not None and beta <= 0:
            raise ConfigError(f"beta must be > 0; got {beta}")
        self.beta = beta
        self.max_length = check_positive_int(max_length, "max_length")
        self.graph: UserItemGraph | None = None
        self._beta_effective: float | None = None

    def _fit(self, dataset: RatingDataset) -> None:
        self.graph = UserItemGraph(dataset)
        if self.beta is None:
            # Keep the series contracting: safely under 1 / max degree.
            max_degree = float(self.graph.degrees.max())
            self._beta_effective = 0.5 / max(max_degree, 1.0)
        else:
            self._beta_effective = float(self.beta)

    def get_config(self) -> dict:
        return {"beta": self.beta, "max_length": self.max_length}

    def _post_partial_fit(self, delta, update):
        # The auto-tuned β tracks the max degree, which an update can move;
        # recompute it exactly as _fit does. A changed β rescales *every*
        # path count, so the affected-user set widens to all.
        if self.beta is None:
            previous = self._beta_effective
            max_degree = float(self.graph.degrees.max())
            self._beta_effective = 0.5 / max(max_degree, 1.0)
            if self._beta_effective != previous:
                return "all"
        return super()._post_partial_fit(delta, update)

    def _state_arrays(self) -> dict:
        arrays = super()._state_arrays()
        arrays["beta_effective"] = np.array(self._beta_effective)
        return arrays

    def _load_state_arrays(self, arrays: dict) -> None:
        self._beta_effective = float(np.asarray(arrays.pop("beta_effective")))
        super()._load_state_arrays(arrays)

    def _score_user(self, user: int) -> np.ndarray:
        node = self.graph.user_node(user)
        if self.graph.degrees[node] == 0:
            return np.full(self.dataset.n_items, -np.inf)
        scores = katz_index(self.graph.adjacency, node,
                            beta=self._beta_effective,
                            max_length=self.max_length)
        return scores[self.graph.item_nodes()]

"""repro — reproduction of "Challenging the Long Tail Recommendation"
(Yin, Cui, Li, Yao & Chen, VLDB 2012).

The package implements the paper's graph-based long-tail recommenders —
Hitting Time (HT), Absorbing Time (AT) and the entropy-biased Absorbing
Cost variants (AC1/AC2) — together with every substrate they need (the
bipartite user-item graph, absorbing Markov-chain solvers, a rating-data
LDA), the paper's baselines (LDA, PureSVD, PPR/DPPR), extended references,
the full evaluation harness regenerating each table and figure of the
paper's experimental section, and a serving layer for cohort-scale traffic:
vectorised multi-user scoring, versioned model artifacts (fit once, save,
load, serve — no refitting), and a stateful ``ServingEngine`` with warm
transition/result caches plus a precomputed top-K store.

Quickstart
----------
>>> from repro import movielens_like, generate_dataset, AbsorbingCostRecommender
>>> data = generate_dataset(movielens_like(0.3), seed=7)
>>> ac2 = AbsorbingCostRecommender.topic_based(n_topics=8).fit(data.dataset)
>>> [r.label for r in ac2.recommend(user=0, k=5)]  # doctest: +SKIP
['item12', 'item88', ...]

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.baselines import (
    AssociationRuleRecommender,
    CommuteTimeRecommender,
    KatzRecommender,
    RandomWalkWithRestartRecommender,
    DiscountedPageRankRecommender,
    ItemKNNRecommender,
    LDARecommender,
    MostPopularRecommender,
    PersonalizedPageRankRecommender,
    PureSVDRecommender,
    RandomRecommender,
    UserKNNRecommender,
)
from repro.core import (
    AbsorbingCostRecommender,
    explain_recommendation,
    AbsorbingTimeRecommender,
    EntropyCostModel,
    HittingTimeRecommender,
    PartialFitReport,
    Recommendation,
    Recommender,
    UnitCostModel,
    item_entropy,
    topic_entropy,
)
from repro.data import (
    DatasetDelta,
    RatingDataset,
    SyntheticConfig,
    SyntheticData,
    douban_like,
    figure2_dataset,
    generate_dataset,
    load_movielens_1m,
    load_movielens_100k,
    load_rating_csv,
    long_tail_split,
    long_tail_stats,
    make_recall_split,
    movielens_like,
    sample_test_users,
)
from repro.eval import (
    RecallProtocol,
    bootstrap_recall,
    bootstrap_recall_difference,
    SimulatedPanel,
    TopNExperiment,
    recall_curve,
)
from repro.exceptions import (
    ConfigError,
    ConvergenceError,
    DataError,
    DataFormatError,
    DeadlineExceededError,
    DisconnectedGraphError,
    GraphError,
    NotFittedError,
    OverloadedError,
    ReproError,
    UnknownItemError,
    UnknownUserError,
)
from repro.core import load_artifact, save_artifact
from repro.exceptions import ArtifactError
from repro.graph import TransitionCache, UserItemGraph
from repro.solver import WalkOperator
from repro.service import (
    BatchingServer,
    BatchServingReport,
    HttpFrontend,
    ServerReport,
    ServingEngine,
    ShardedEngine,
    ShardPlan,
    TopKStore,
    serve_user_cohort,
)
from repro.topics import LatentTopicModel, fit_lda, fit_lda_cvb0, fit_lda_gibbs

__version__ = "1.0.0"

__all__ = [
    # core algorithms
    "HittingTimeRecommender",
    "AbsorbingTimeRecommender",
    "AbsorbingCostRecommender",
    "Recommender",
    "Recommendation",
    "PartialFitReport",
    "EntropyCostModel",
    "UnitCostModel",
    "item_entropy",
    "topic_entropy",
    "explain_recommendation",
    # baselines
    "AssociationRuleRecommender",
    "CommuteTimeRecommender",
    "KatzRecommender",
    "RandomWalkWithRestartRecommender",
    "DiscountedPageRankRecommender",
    "ItemKNNRecommender",
    "LDARecommender",
    "MostPopularRecommender",
    "PersonalizedPageRankRecommender",
    "PureSVDRecommender",
    "RandomRecommender",
    "UserKNNRecommender",
    # data
    "RatingDataset",
    "DatasetDelta",
    "SyntheticConfig",
    "SyntheticData",
    "douban_like",
    "figure2_dataset",
    "generate_dataset",
    "load_movielens_1m",
    "load_movielens_100k",
    "load_rating_csv",
    "long_tail_split",
    "long_tail_stats",
    "make_recall_split",
    "movielens_like",
    "sample_test_users",
    # graph / topics
    "UserItemGraph",
    "LatentTopicModel",
    "fit_lda",
    "fit_lda_cvb0",
    "fit_lda_gibbs",
    # graph serving caches & solver core
    "TransitionCache",
    "WalkOperator",
    # serving & artifacts
    "BatchServingReport",
    "BatchingServer",
    "HttpFrontend",
    "ServerReport",
    "ServingEngine",
    "ShardPlan",
    "ShardedEngine",
    "TopKStore",
    "serve_user_cohort",
    "save_artifact",
    "load_artifact",
    # evaluation
    "RecallProtocol",
    "SimulatedPanel",
    "TopNExperiment",
    "recall_curve",
    "bootstrap_recall",
    "bootstrap_recall_difference",
    # errors
    "OverloadedError",
    "DeadlineExceededError",
    "ReproError",
    "ArtifactError",
    "ConfigError",
    "ConvergenceError",
    "DataError",
    "DataFormatError",
    "DisconnectedGraphError",
    "GraphError",
    "NotFittedError",
    "UnknownItemError",
    "UnknownUserError",
]

"""Finding and baseline machinery shared by every checker.

A finding's ``key`` deliberately excludes line numbers: it names the
rule, file, symbol, and detail, so a committed baseline entry keeps
suppressing the same known issue as unrelated edits shift the file.
The exception-taxonomy rule is *not* baselineable — raw raises must be
fixed, never suppressed (see ISSUE 10 acceptance criteria).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigError

JSON_VERSION = 1

#: Rules whose findings a baseline may never suppress.
NON_BASELINEABLE = frozenset({"exception-taxonomy"})


@dataclass
class Finding:
    """One checker hit, in the stable machine-readable shape."""

    rule: str
    file: str
    line: int
    message: str
    key: str
    #: Acquisition / call chain as ``[{"file", "line", "note"}, ...]``,
    #: outermost hop first.  Empty for single-site rules.
    chain: list[dict] = field(default_factory=list)
    baselined: bool = False

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "key": self.key,
            "chain": self.chain,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        lines = [f"{self.file}:{self.line}: {self.rule}: {self.message}"]
        for hop in self.chain:
            lines.append(
                f"    via {hop['file']}:{hop['line']}  {hop['note']}"
            )
        return "\n".join(lines)

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.rule, self.key)


def findings_to_document(findings: list[Finding]) -> dict:
    """The stable JSON document ``--json`` emits."""
    ordered = sorted(findings, key=Finding.sort_key)
    return {
        "version": JSON_VERSION,
        "n_findings": len(ordered),
        "n_new": sum(1 for f in ordered if not f.baselined),
        "n_baselined": sum(1 for f in ordered if f.baselined),
        "findings": [f.to_json() for f in ordered],
    }


@dataclass
class Baseline:
    """Committed suppression list: finding key -> justification."""

    entries: dict[str, str] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            raise ConfigError(f"baseline file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed baseline {path}: {exc}") from None
        entries = {}
        for entry in raw.get("entries", []):
            entries[entry["key"]] = entry.get("justification", "")
        return cls(entries=entries, path=path)

    def save(self, path: str | Path) -> None:
        doc = {
            "version": JSON_VERSION,
            "entries": [
                {"key": key, "justification": why}
                for key, why in sorted(self.entries.items())
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")

    def apply(self, findings: list[Finding]) -> list[Finding]:
        """Mark baselined findings; returns the NEW (unsuppressed) ones.

        Taxonomy findings are never suppressed, even if a key for them
        was smuggled into the baseline file.
        """
        fresh = []
        for finding in findings:
            if (finding.rule not in NON_BASELINEABLE
                    and finding.key in self.entries):
                finding.baselined = True
            else:
                fresh.append(finding)
        return fresh

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        """Build a baseline covering every (baselineable) finding.

        Justifications from ``previous`` are carried over for keys that
        survive; new keys get a TODO placeholder that a reviewer must
        replace with a real justification before committing.
        """
        entries = {}
        for finding in findings:
            if finding.rule in NON_BASELINEABLE:
                continue
            carried = (previous.entries.get(finding.key)
                       if previous else None)
            entries[finding.key] = carried or (
                "TODO: justify or fix (auto-added by --write-baseline)"
            )
        return cls(entries=entries)

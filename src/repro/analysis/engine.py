"""Lint orchestrator: parse → run checkers → suppress → baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import blocking, guarded, lock_order, taxonomy
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.findings import Baseline, Finding
from repro.analysis.model import Program, build_program

CHECKERS = (
    lock_order.check,
    guarded.check,
    blocking.check,
    taxonomy.check,
)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    program: Program
    #: Every finding, inline-suppressions already removed; findings
    #: covered by the baseline carry ``baselined=True``.
    findings: list[Finding] = field(default_factory=list)
    #: Findings NOT covered by the baseline — what CI fails on.
    new: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new


def run_lint(paths, config: AnalysisConfig | None = None,
             baseline: Baseline | None = None,
             root: Path | None = None) -> LintResult:
    """Lint ``paths`` (files or directories) and apply the baseline."""
    if config is None:
        config = load_config()
    program = build_program([Path(p) for p in paths], config, root=root)
    findings: list[Finding] = []
    for checker in CHECKERS:
        findings.extend(checker(program))
    findings = [
        f for f in findings
        if not program.suppressed(f.file, f.line, f.rule)
    ]
    findings.sort(key=Finding.sort_key)
    new = baseline.apply(findings) if baseline is not None else findings
    return LintResult(program=program, findings=findings, new=new)

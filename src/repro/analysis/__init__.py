"""Repo-specific static analysis and runtime lock checking.

This package is the machine-checked counterpart of the concurrency
conventions documented in DESIGN.md §15:

* :func:`run_lint` / ``python -m repro.analysis lint src`` — an
  AST-based lint engine over ``src/repro`` with four checkers
  (lock-order, guarded-attribute, blocking-under-lock,
  exception-taxonomy), driven by the declarative ``analysis.toml`` and
  gated by a committed baseline so CI fails only on *new* findings.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime
  :class:`LockOrderSanitizer` that wraps ``threading`` locks, records
  per-thread acquisition stacks, and raises on hierarchy violations or
  potential-deadlock witnesses during the concurrency test suites.
"""

from __future__ import annotations

from repro.analysis.config import AnalysisConfig, LockSpec, load_config
from repro.analysis.engine import run_lint
from repro.analysis.findings import Baseline, Finding
from repro.analysis.sanitizer import (
    LockOrderSanitizer,
    LockOrderViolation,
    instrument,
)

__all__ = [
    "AnalysisConfig",
    "Baseline",
    "Finding",
    "LockOrderSanitizer",
    "LockOrderViolation",
    "LockSpec",
    "instrument",
    "load_config",
    "run_lint",
]

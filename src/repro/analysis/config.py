"""Declarative configuration for the analysis engine (``analysis.toml``).

The config names every lock in the serving stack, binds it to the
``(attribute, class)`` pair that holds it, and fixes a linear extension
of the documented acquisition order.  Both the static checkers and the
runtime sanitizer consume the same file, so the hierarchy cannot drift
between lint time and test time.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigError

CONFIG_NAME = "analysis.toml"
BASELINE_NAME = "analysis-baseline.json"


@dataclass(frozen=True)
class LockSpec:
    """One declared lock: canonical name plus its resolution anchors."""

    name: str
    attr: str
    klass: str | None = None
    reentrant: bool = False


@dataclass
class AnalysisConfig:
    """Parsed ``analysis.toml``."""

    locks: list[LockSpec] = field(default_factory=list)
    order: list[str] = field(default_factory=list)
    no_blocking_under: list[str] = field(default_factory=list)
    blocking_calls: list[str] = field(default_factory=list)
    taxonomy_allowed: list[str] = field(default_factory=list)
    #: class name -> base variable names that trigger non-self
    #: guarded-attribute matching (e.g. _ShardWorker -> ["worker"])
    guarded_aliases: dict[str, list[str]] = field(default_factory=dict)
    path: Path | None = None

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.locks]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"duplicate lock names in {self.path or CONFIG_NAME}"
            )
        unknown = [n for n in self.order if n not in set(names)]
        if unknown:
            raise ConfigError(
                f"locks.order names undeclared locks {unknown} "
                f"in {self.path or CONFIG_NAME}"
            )
        self._rank = {name: i for i, name in enumerate(self.order)}
        self._by_name = {spec.name: spec for spec in self.locks}

    def rank(self, name: str) -> int | None:
        """Position of ``name`` in the declared order, or None if unranked."""
        return self._rank.get(name)

    def spec(self, name: str) -> LockSpec | None:
        return self._by_name.get(name)

    def resolve(self, attr: str, klass: str | None) -> LockSpec | None:
        """Map an attribute access to a declared lock.

        ``klass`` is the class the attribute lives on when known (the
        enclosing class for ``self.X``, None for ``other.X``).  With a
        class, only an exact ``(attr, class)`` declaration matches; a
        class-less access matches iff exactly one declaration uses the
        attribute name, so ``worker.lock`` resolves while an ambiguous
        bare ``._lock`` (four declarations) stays unresolved.
        """
        candidates = [spec for spec in self.locks if spec.attr == attr]
        if klass is not None:
            for spec in candidates:
                if spec.klass == klass:
                    return spec
            return None
        if len(candidates) == 1:
            return candidates[0]
        return None


def find_config(start: Path | None = None) -> Path | None:
    """Walk upward from ``start`` (default cwd) looking for analysis.toml."""
    here = (start or Path.cwd()).resolve()
    for directory in [here, *here.parents]:
        candidate = directory / CONFIG_NAME
        if candidate.is_file():
            return candidate
    return None


def load_config(path: str | Path | None = None) -> AnalysisConfig:
    """Load ``analysis.toml`` from ``path`` or the nearest ancestor dir."""
    if path is None:
        found = find_config()
        if found is None:
            raise ConfigError(
                f"no {CONFIG_NAME} found in the current directory or any "
                "parent; pass --config explicitly"
            )
        path = found
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            raw = tomllib.load(handle)
    except FileNotFoundError:
        raise ConfigError(f"analysis config not found: {path}") from None
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"malformed {path}: {exc}") from None

    locks_tbl = raw.get("locks", {})
    declares = []
    for entry in locks_tbl.get("declare", []):
        try:
            declares.append(LockSpec(
                name=entry["name"],
                attr=entry["attr"],
                klass=entry.get("class"),
                reentrant=bool(entry.get("reentrant", False)),
            ))
        except KeyError as exc:
            raise ConfigError(
                f"[[locks.declare]] entry in {path} is missing {exc}"
            ) from None
    blocking = raw.get("blocking", {})
    taxonomy = raw.get("taxonomy", {})
    guarded = raw.get("guarded", {})
    aliases = {
        klass: list(bases)
        for klass, bases in guarded.get("base_aliases", {}).items()
    }
    return AnalysisConfig(
        locks=declares,
        order=list(locks_tbl.get("order", [])),
        no_blocking_under=list(blocking.get("no_blocking_under", [])),
        blocking_calls=list(blocking.get("blocking_calls", [])),
        taxonomy_allowed=list(taxonomy.get("allowed", [])),
        guarded_aliases=aliases,
        path=path,
    )

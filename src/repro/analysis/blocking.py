"""Blocking-under-lock checker.

The routing lock serialises every request's shard lookup; holding it
across a pipe RPC, fsync, file write, or solver call would turn one
slow worker into a fleet-wide stall.  This checker flags any call that
is blocking — by name (``send``, ``fsync``, ``solve``, ...) or
transitively, through any resolvable chain of repo functions that ends
in one — made while a lock listed in ``[blocking].no_blocking_under``
is held.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.model import FunctionInfo, Program

RULE = "blocking-under-lock"


def blocking_closure(program: Program) -> dict[int, dict[str, list]]:
    """``id(func) -> {blocking call name: witness chain}`` fixpoint.

    A call counts as directly blocking when its name is configured
    blocking *and* it does not resolve to a repo function (a repo
    method that happens to be called ``flush`` is judged by what it
    does, not its name).
    """
    blocking_names = set(program.config.blocking_calls)
    closure: dict[int, dict[str, list]] = {}
    resolved: dict[tuple[int, int], FunctionInfo | None] = {}
    for func in program.functions:
        mine: dict[str, list] = {}
        for index, site in enumerate(func.calls):
            callee = program.resolve_call(site, func)
            resolved[(id(func), index)] = callee
            if callee is None and site.callee in blocking_names:
                mine.setdefault(site.callee, [{
                    "file": func.file, "line": site.line,
                    "note": f"{func.qualname} calls {site.callee}()",
                }])
        closure[id(func)] = mine
    changed = True
    while changed:
        changed = False
        for func in program.functions:
            mine = closure[id(func)]
            for index, site in enumerate(func.calls):
                callee = resolved[(id(func), index)]
                if callee is None or callee is func:
                    continue
                for name, chain in closure[id(callee)].items():
                    if name in mine:
                        continue
                    mine[name] = [{
                        "file": func.file, "line": site.line,
                        "note": f"{func.qualname} calls {callee.qualname}",
                    }] + chain
                    changed = True
    return closure


def check(program: Program) -> list[Finding]:
    config = program.config
    forbidden = set(config.no_blocking_under)
    if not forbidden or not config.blocking_calls:
        return []
    closure = blocking_closure(program)
    blocking_names = set(config.blocking_calls)
    findings: list[Finding] = []
    seen: set[str] = set()

    def report(func: FunctionInfo, lock, name: str, chain: list) -> None:
        key = f"{RULE}:{func.file}:{func.qualname}:{lock.lock}:{name}"
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(
            rule=RULE, file=func.file, line=chain[0]["line"],
            message=(
                f"{func.qualname}: blocking call {name}() reached while "
                f"holding {lock.lock!r} (acquired at "
                f"{lock.file}:{lock.line}); no RPC/fsync/file/solver "
                f"work may run under this lock"
            ),
            key=key,
            chain=[{
                "file": lock.file, "line": lock.line,
                "note": f"{lock.lock} acquired here",
            }] + chain))

    for func in program.functions:
        for site in func.calls:
            locks = [h for h in site.held if h.lock in forbidden]
            if not locks:
                continue
            callee = program.resolve_call(site, func)
            if callee is None:
                if site.callee in blocking_names:
                    for lock in locks:
                        report(func, lock, site.callee, [{
                            "file": func.file, "line": site.line,
                            "note": f"{func.qualname} calls "
                                    f"{site.callee}()",
                        }])
                continue
            for name, chain in closure[id(callee)].items():
                for lock in locks:
                    report(func, lock, name, [{
                        "file": func.file, "line": site.line,
                        "note": f"{func.qualname} calls "
                                f"{callee.qualname}",
                    }] + chain)
    return findings

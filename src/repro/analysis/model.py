"""AST extraction: parse modules into the facts the checkers consume.

One pass over each module collects, per function, the lexical lock
acquisitions (``with self._lock:`` with the held-stack at that point),
call sites, attribute accesses, and raise sites — plus module-level
class hierarchies, ``# guarded-by:`` declarations, and per-line
``# analysis: ignore[rule]`` suppressions.  Checkers never re-walk the
AST; they work on these records and a name-based call-graph closure.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigError
from repro.analysis.config import AnalysisConfig

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([\w.\-]+)")
_SUPPRESS_RE = re.compile(r"#\s*analysis:\s*ignore\[([\w,\s\-]+)\]")
_ATTR_DECL_RE = re.compile(r"^\s*self\.(\w+)\s*[:=\[]|^\s*(\w+)\s*[:=]")


@dataclass(frozen=True)
class HeldLock:
    """A lock lexically held at some point: name + acquisition site."""

    lock: str
    file: str
    line: int


@dataclass(frozen=True)
class LockAcquire:
    lock: str
    line: int
    held: tuple[HeldLock, ...]


@dataclass(frozen=True)
class CallSite:
    callee: str
    base: str | None  # "self", a variable name, or None for bare calls
    line: int
    held: tuple[HeldLock, ...]


@dataclass(frozen=True)
class AttrAccess:
    base: str
    attr: str
    line: int
    held: tuple[HeldLock, ...]
    is_write: bool


@dataclass(frozen=True)
class RaiseSite:
    #: Class/callable name being raised, or None for a bare ``raise``.
    exc_name: str | None
    line: int
    #: True when the raised expression is a call (``raise X(...)``), so
    #: ``exc_name`` is definitely a class, not maybe a variable.
    is_call: bool


@dataclass
class FunctionInfo:
    qualname: str
    name: str
    klass: str | None
    file: str
    line: int
    acquires: list[LockAcquire] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    accesses: list[AttrAccess] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)


@dataclass(frozen=True)
class GuardedDecl:
    """One ``# guarded-by: <lock>`` annotation."""

    klass: str | None
    attr: str
    lock: str
    file: str
    line: int


@dataclass
class ModuleInfo:
    path: Path
    relpath: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> list of base-class names (dotted bases keep the
    #: last component: ``repro.exceptions.ReproError`` -> ``ReproError``)
    classes: dict[str, list[str]] = field(default_factory=dict)
    guarded: list[GuardedDecl] = field(default_factory=list)
    #: line number -> set of suppressed rule ids ("*" = all)
    suppressions: dict[int, set[str]] = field(default_factory=dict)


class _FunctionWalker:
    """Walks one function body tracking the lexical held-lock stack."""

    def __init__(self, module: ModuleInfo, info: FunctionInfo,
                 config: AnalysisConfig, collector: "_ModuleCollector"):
        self.module = module
        self.info = info
        self.config = config
        self.collector = collector

    def walk(self, node: ast.AST, held: tuple[HeldLock, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _visit(self, node: ast.AST, held: tuple[HeldLock, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: analyzed as its own function, empty held stack
            # (it runs later, not under the current locks).
            self.collector.process_function(
                node, klass=self.info.klass, prefix=self.info.qualname)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._visit(item.context_expr, held)
                spec = self._resolve_lock(item.context_expr)
                if spec is not None:
                    self.info.acquires.append(LockAcquire(
                        lock=spec.name, line=item.context_expr.lineno,
                        held=held))
                    held = held + (HeldLock(
                        lock=spec.name, file=self.module.relpath,
                        line=item.context_expr.lineno),)
            for stmt in node.body:
                self._visit(stmt, held)
            return
        if isinstance(node, ast.Call):
            callee, base = self._call_target(node.func)
            if callee is not None:
                self.info.calls.append(CallSite(
                    callee=callee, base=base, line=node.lineno, held=held))
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                self.info.accesses.append(AttrAccess(
                    base=node.value.id, attr=node.attr, line=node.lineno,
                    held=held,
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del))))
        elif isinstance(node, ast.Raise):
            self.info.raises.append(self._raise_site(node))
        self.walk(node, held)

    def _resolve_lock(self, expr: ast.AST):
        if not isinstance(expr, ast.Attribute):
            return None
        if not isinstance(expr.value, ast.Name):
            return None
        base = expr.value.id
        klass = self.info.klass if base == "self" else None
        return self.config.resolve(expr.attr, klass)

    @staticmethod
    def _call_target(func: ast.AST) -> tuple[str | None, str | None]:
        if isinstance(func, ast.Name):
            return func.id, None
        if isinstance(func, ast.Attribute):
            base = (func.value.id
                    if isinstance(func.value, ast.Name) else None)
            return func.attr, base
        return None, None

    @staticmethod
    def _raise_site(node: ast.Raise) -> RaiseSite:
        exc = node.exc
        if exc is None:
            return RaiseSite(exc_name=None, line=node.lineno, is_call=False)
        is_call = isinstance(exc, ast.Call)
        target = exc.func if is_call else exc
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        else:
            name = None
        return RaiseSite(exc_name=name, line=node.lineno, is_call=is_call)


class _ModuleCollector:
    def __init__(self, path: Path, relpath: str, source: str,
                 config: AnalysisConfig):
        self.config = config
        self.module = ModuleInfo(path=path, relpath=relpath)
        self.tree = ast.parse(source, filename=str(path))
        self.source_lines = source.splitlines()
        self._class_spans: list[tuple[int, int, str]] = []

    def collect(self) -> ModuleInfo:
        self._walk_top(self.tree, klass=None, prefix=None)
        self._scan_comments()
        return self.module

    def _walk_top(self, node: ast.AST, klass: str | None,
                  prefix: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                bases = []
                for base in child.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                self.module.classes[child.name] = bases
                self._class_spans.append(
                    (child.lineno, child.end_lineno or child.lineno,
                     child.name))
                self._walk_top(child, klass=child.name, prefix=None)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.process_function(child, klass=klass, prefix=prefix)
            else:
                # Module/class-level statements may still raise or call.
                self._walk_top(child, klass=klass, prefix=prefix)

    def process_function(self, node, klass: str | None,
                         prefix: str | None) -> None:
        if prefix:
            qualname = f"{prefix}.<locals>.{node.name}"
        elif klass:
            qualname = f"{klass}.{node.name}"
        else:
            qualname = node.name
        info = FunctionInfo(
            qualname=qualname, name=node.name, klass=klass,
            file=self.module.relpath, line=node.lineno)
        self.module.functions[qualname] = info
        walker = _FunctionWalker(self.module, info, self.config, self)
        for stmt in node.body:
            walker._visit(stmt, held=())

    def _class_at(self, line: int) -> str | None:
        best = None
        for start, end, name in self._class_spans:
            if start <= line <= end:
                if best is None or start > best[0]:
                    best = (start, name)
        return best[1] if best else None

    def _scan_comments(self) -> None:
        pending_guard: str | None = None
        pending_line = 0
        for lineno, text in enumerate(self.source_lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")
                         if part.strip()}
                self.module.suppressions.setdefault(lineno, set()).update(
                    rules)
            match = _GUARDED_RE.search(text)
            stripped = text.strip()
            if match:
                lock = match.group(1)
                if stripped.startswith("#"):
                    # Standalone comment: applies to the next code line.
                    pending_guard, pending_line = lock, lineno
                    continue
                self._declare_guard(lock, text, lineno)
            elif pending_guard and stripped and not stripped.startswith("#"):
                self._declare_guard(pending_guard, text, lineno,
                                    comment_line=pending_line)
                pending_guard = None
            elif pending_guard and not stripped:
                pending_guard = None
        # A trailing standalone comment with no following code is dropped.

    def _declare_guard(self, lock: str, text: str, lineno: int,
                       comment_line: int | None = None) -> None:
        match = _ATTR_DECL_RE.match(text)
        if not match:
            raise ConfigError(
                f"{self.module.relpath}:{comment_line or lineno}: "
                "guarded-by comment is not attached to an attribute "
                "assignment"
            )
        attr = match.group(1) or match.group(2)
        if self.config.spec(lock) is None:
            raise ConfigError(
                f"{self.module.relpath}:{comment_line or lineno}: "
                f"guarded-by names undeclared lock {lock!r} "
                "(declare it in analysis.toml)"
            )
        self.module.guarded.append(GuardedDecl(
            klass=self._class_at(lineno), attr=attr, lock=lock,
            file=self.module.relpath, line=lineno))


@dataclass
class Program:
    """Every parsed module plus cross-module indexes for the checkers."""

    config: AnalysisConfig
    modules: list[ModuleInfo] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self._by_name: dict[str, list[FunctionInfo]] = {}
        self._by_module: dict[str, dict[str, list[FunctionInfo]]] = {}
        self._by_qual: dict[tuple[str, str], FunctionInfo] = {}
        self.classes: dict[str, list[str]] = {}
        self.guarded: list[GuardedDecl] = []
        for module in self.modules:
            per_name: dict[str, list[FunctionInfo]] = {}
            for info in module.functions.values():
                self.functions.append(info)
                self._by_name.setdefault(info.name, []).append(info)
                per_name.setdefault(info.name, []).append(info)
                self._by_qual[(module.relpath, info.qualname)] = info
            self._by_module[module.relpath] = per_name
            self.classes.update(module.classes)
            self.guarded.extend(module.guarded)

    def resolve_call(self, site: CallSite,
                     caller: FunctionInfo) -> FunctionInfo | None:
        """Name-based callee resolution, tuned for precision over recall.

        ``self.f()`` binds to method ``f`` on the caller's class (or a
        base class we parsed).  A bare call ``f()`` binds to a module
        top-level function of that name (caller's module first, then a
        globally unique one) or, for a known class name, to its
        ``__init__``.  Calls through any other object (``conn.close()``,
        ``engine.stats()``) stay unresolved: a method name only binds
        via ``self``, so a pipe's ``close()`` is never mistaken for the
        fleet's.  A missed edge is better than a phantom one.
        """
        if site.base == "self":
            if caller.klass is None:
                return None
            klass = caller.klass
            seen = set()
            while klass is not None and klass not in seen:
                seen.add(klass)
                hit = self._by_qual.get(
                    (caller.file, f"{klass}.{site.callee}"))
                if hit is not None:
                    return hit
                bases = self.classes.get(klass, [])
                klass = bases[0] if bases else None
            return None
        if site.base is not None:
            return None
        if site.callee in self.classes:
            init = self._by_qual.get(
                (caller.file, f"{site.callee}.__init__"))
            if init is not None:
                return init
            inits = [f for f in self._by_name.get("__init__", [])
                     if f.klass == site.callee]
            if len(inits) == 1:
                return inits[0]
            return None
        local = [f for f in self._by_module.get(caller.file, {})
                 .get(site.callee, []) if f.klass is None]
        if len(local) == 1:
            return local[0]
        if local:
            return None
        everywhere = [f for f in self._by_name.get(site.callee, [])
                      if f.klass is None]
        if len(everywhere) == 1:
            return everywhere[0]
        return None

    def suppressed(self, relpath: str, line: int, rule: str) -> bool:
        for module in self.modules:
            if module.relpath == relpath:
                rules = module.suppressions.get(line, set())
                return rule in rules or "*" in rules
        return False


def collect_paths(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
        else:
            raise ConfigError(f"not a python file or directory: {path}")
    return sorted(out)


def build_program(paths: list[Path], config: AnalysisConfig,
                  root: Path | None = None) -> Program:
    """Parse every module under ``paths`` into a :class:`Program`.

    ``root`` anchors the relative paths used in findings and baseline
    keys (default: the directory holding analysis.toml, else cwd), so
    keys are stable no matter where the linter is launched from.
    """
    if root is None:
        root = (config.path.parent if config.path is not None
                else Path.cwd()).resolve()
    modules = []
    for file_path in collect_paths(paths):
        resolved = file_path.resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            relpath = file_path.as_posix()
        source = resolved.read_text(encoding="utf-8")
        try:
            collector = _ModuleCollector(resolved, relpath, source, config)
        except SyntaxError as exc:
            raise ConfigError(
                f"cannot parse {relpath}: {exc}") from None
        modules.append(collector.collect())
    return Program(config=config, modules=modules)

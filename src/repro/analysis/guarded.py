"""Guarded-attribute checker.

Attributes declared ``# guarded-by: <lock>`` may only be read or
written while that lock is lexically held (a ``with`` block in the same
function), or inside a method whose name ends in ``_locked`` (the
repo's caller-holds-the-lock convention), or inside ``__init__`` /
``__setstate__`` of the declaring class (construction happens before
the object is shared).  Everything else is a finding — to be fixed, or
baselined with a written justification when the unlocked access is
benign by design (e.g. monotone reads documented at the site).
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.model import Program

RULE = "guarded-attribute"

_CONSTRUCTION = {"__init__", "__setstate__", "__getstate__"}


def check(program: Program) -> list[Finding]:
    by_class: dict[tuple[str | None, str], list] = {}
    #: (alias base name, attr) -> decls, per [guarded.base_aliases]
    by_alias: dict[tuple[str, str], list] = {}
    aliases = program.config.guarded_aliases
    for decl in program.guarded:
        by_class.setdefault((decl.klass, decl.attr), []).append(decl)
        for base in aliases.get(decl.klass or "", ()):
            by_alias.setdefault((base, decl.attr), []).append(decl)
    if not by_class:
        return []

    findings: list[Finding] = []
    seen: set[str] = set()
    for func in program.functions:
        for access in func.accesses:
            if access.base == "self":
                decls = by_class.get((func.klass, access.attr), [])
            else:
                decls = by_alias.get((access.base, access.attr), [])
            if not decls:
                continue
            if func.name.endswith("_locked"):
                continue
            if (func.name in _CONSTRUCTION
                    and access.base == "self"
                    and any(d.klass == func.klass for d in decls)):
                continue
            held = {h.lock for h in access.held}
            if any(d.lock in held for d in decls):
                continue
            locks = sorted({d.lock for d in decls})
            klass = decls[0].klass or "*"
            key = (f"{RULE}:{func.file}:{func.qualname}:"
                   f"{klass}.{access.attr}")
            if key in seen:
                continue
            seen.add(key)
            kind = "write to" if access.is_write else "read of"
            held_note = (f"holding {sorted(held)}" if held
                         else "holding no lock")
            findings.append(Finding(
                rule=RULE, file=func.file, line=access.line,
                message=(
                    f"{func.qualname}: {kind} "
                    f"{access.base}.{access.attr} (guarded by "
                    f"{', '.join(repr(lk) for lk in locks)}, declared at "
                    f"{decls[0].file}:{decls[0].line}) while {held_note}"
                ),
                key=key,
                chain=[{
                    "file": decls[0].file, "line": decls[0].line,
                    "note": f"guarded-by declaration for {access.attr}",
                }]))
    return findings

"""Command-line front end: ``python -m repro.analysis lint src``.

Exit codes: 0 = clean against the baseline, 1 = new findings (or a
baseline refresh that still needs justifications), 2 = usage/config
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.config import BASELINE_NAME, load_config
from repro.analysis.engine import run_lint
from repro.analysis.findings import Baseline, findings_to_document
from repro.exceptions import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis for the repro package.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser(
        "lint", help="run the concurrency/taxonomy checkers")
    lint.add_argument(
        "paths", nargs="+", help="files or directories to lint")
    lint.add_argument(
        "--config", default=None,
        help="analysis.toml (default: nearest ancestor of cwd)")
    lint.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: {BASELINE_NAME} next to the "
             "config, when present)")
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring any baseline file")
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable JSON document on stdout")
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover current findings "
             "(taxonomy findings are never baselineable)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _lint(args) -> int:
    config = load_config(args.config)
    baseline = None
    baseline_path = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif config.path is not None:
            default = config.path.parent / BASELINE_NAME
            if default.is_file():
                baseline_path = default
        if baseline_path is not None and baseline_path.is_file():
            baseline = Baseline.load(baseline_path)

    result = run_lint(args.paths, config=config, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or (
            (config.path.parent if config.path else Path.cwd())
            / BASELINE_NAME)
        fresh = Baseline.from_findings(result.findings, previous=baseline)
        fresh.save(target)
        print(f"wrote {len(fresh.entries)} baseline entries to {target}")
        taxonomy_left = [
            f for f in result.findings if f.rule == "exception-taxonomy"]
        for finding in taxonomy_left:
            print(finding.render())
        if taxonomy_left:
            print(f"{len(taxonomy_left)} exception-taxonomy finding(s) "
                  "cannot be baselined — fix them")
            return 1
        return 0

    if args.as_json:
        print(json.dumps(findings_to_document(result.findings), indent=2))
    else:
        for finding in result.new:
            print(finding.render())
        n_baselined = sum(1 for f in result.findings if f.baselined)
        summary = (
            f"{len(result.findings)} finding(s): "
            f"{len(result.new)} new, {n_baselined} baselined"
        )
        print(summary)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())

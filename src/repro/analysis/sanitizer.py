"""Runtime lock-order sanitizer (TSan-style lock witness).

:func:`instrument` swaps an object's ``threading.Lock``/``RLock``
attributes for :class:`SanitizedLock` proxies that report every
acquire/release to a shared :class:`LockOrderSanitizer`.  The sanitizer
keeps a per-thread stack of held locks (with acquisition call sites)
and, *before* delegating to the real ``acquire``:

* raises :class:`LockOrderViolation` when the acquisition inverts the
  rank order declared in ``analysis.toml`` (the violation surfaces as a
  readable report instead of an eventual deadlock);
* raises on re-acquisition of a non-reentrant lock (self-deadlock);
* records the acquisition edge ``held -> acquiring`` in a global
  witness graph and raises when the reverse edge was ever observed —
  the classic potential-deadlock witness, reported with both threads'
  acquisition stacks even though the run happened not to interleave
  fatally.

Opt-in: the test suite enables it via ``REPRO_SANITIZE_LOCKS=1`` (see
``tests/conftest.py``); production code never pays the overhead.
"""

from __future__ import annotations

import importlib
import threading
import traceback
from dataclasses import dataclass, field

from repro.exceptions import ConfigError, ReproError

_LOCK_TYPE = type(threading.Lock())
_RLOCK_TYPE = type(threading.RLock())
_LOCK_TYPES = (_LOCK_TYPE, _RLOCK_TYPE)

_SANITIZER_FILE = __file__


class LockOrderViolation(ReproError):
    """A lock acquisition broke the declared hierarchy (or witnessed a
    potential deadlock); the message is the full two-sided report."""


@dataclass
class _Held:
    name: str
    obj_id: int
    reentrant: bool
    count: int
    stack: list[str] = field(default_factory=list)


def _call_stack(limit: int = 6) -> list[str]:
    """Short acquisition stack, innermost last, sanitizer frames elided."""
    out = []
    for frame in traceback.extract_stack():
        if frame.filename == _SANITIZER_FILE:
            continue
        out.append(f"{frame.filename}:{frame.lineno} in {frame.name}")
    return out[-limit:]


class LockOrderSanitizer:
    """Shared state for every :class:`SanitizedLock` in a test run."""

    def __init__(self, config=None):
        if config is None:
            from repro.analysis.config import load_config
            try:
                config = load_config()
            except ConfigError:
                config = None
        self.config = config
        self._rank: dict[str, int] = {}
        self._reentrant: dict[str, bool] = {}
        self._by_attr: dict[str, list] = {}
        if config is not None:
            self._rank = {name: i for i, name in enumerate(config.order)}
            for spec in config.locks:
                self._reentrant[spec.name] = spec.reentrant
                self._by_attr.setdefault(spec.attr, []).append(spec)
        self._tls = threading.local()
        self._graph_lock = threading.Lock()
        #: (held key, acquired key) -> {"thread", "stack"} witness
        self._edges: dict[tuple[str, str], dict] = {}
        #: every violation report raised, for post-run inspection
        self.violations: list[str] = []

    # -- naming ---------------------------------------------------------------

    def canonical_name(self, attr: str, owner_type: type) -> str | None:
        """Declared name for ``owner.attr``, resolved through the MRO."""
        candidates = self._by_attr.get(attr, [])
        if not candidates:
            return None
        mro_names = {cls.__name__ for cls in owner_type.__mro__}
        for spec in candidates:
            if spec.klass in mro_names:
                return spec.name
        if len(candidates) == 1 and candidates[0].klass is None:
            return candidates[0].name
        return None

    # -- per-thread state -----------------------------------------------------

    def _held(self) -> list[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def held_names(self) -> list[str]:
        return [entry.name for entry in self._held()]

    # -- acquire / release ----------------------------------------------------

    def before_acquire(self, name: str, lock, reentrant: bool) -> bool:
        """Validate; returns True when this is a counted re-entry.

        Runs *before* the real ``acquire`` so that a genuine inversion
        raises a readable report instead of deadlocking the test run.
        """
        held = self._held()
        for entry in held:
            if entry.obj_id == id(lock):
                if reentrant:
                    return True
                self._raise(self._self_deadlock_report(name, entry))
        my_rank = self._rank.get(name)
        for entry in held:
            if entry.name == name and entry.obj_id != id(lock):
                self._raise(self._same_rank_report(name, entry))
            other_rank = self._rank.get(entry.name)
            if (my_rank is not None and other_rank is not None
                    and other_rank > my_rank):
                self._raise(self._inversion_report(name, entry))
        # Witness pass: record held -> acquiring edges; a pre-existing
        # reverse edge is a potential deadlock even if ranks were silent.
        acquiring_stack = _call_stack()
        thread = threading.current_thread().name
        with self._graph_lock:
            for entry in held:
                reverse = self._edges.get((name, entry.name))
                if reverse is not None:
                    self._raise(self._witness_report(
                        name, entry, reverse, acquiring_stack))
                self._edges.setdefault((entry.name, name), {
                    "thread": thread,
                    "stack": acquiring_stack,
                    "held": entry.name,
                })
        return False

    def after_acquire(self, name: str, lock, reentrant: bool,
                      reenter: bool) -> None:
        held = self._held()
        if reenter:
            for entry in held:
                if entry.obj_id == id(lock):
                    entry.count += 1
                    return
        held.append(_Held(
            name=name, obj_id=id(lock), reentrant=reentrant, count=1,
            stack=_call_stack()))

    def on_release(self, lock) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index].obj_id == id(lock):
                held[index].count -= 1
                if held[index].count == 0:
                    del held[index]
                return
        # Released a lock this thread never (visibly) acquired — e.g.
        # instrumented mid-flight; nothing to unwind.

    # -- reports --------------------------------------------------------------

    def _raise(self, report: str) -> None:
        self.violations.append(report)
        raise LockOrderViolation(report)

    def _order_line(self) -> str:
        if not self._rank:
            return "declared order: (none configured)"
        ordered = sorted(self._rank, key=self._rank.get)
        return "declared order: " + " < ".join(ordered)

    def _held_lines(self) -> list[str]:
        thread = threading.current_thread().name
        lines = [f"thread {thread!r} currently holds:"]
        for entry in self._held():
            lines.append(f"  {entry.name!r} acquired at:")
            lines.extend(f"    {frame}" for frame in entry.stack)
        return lines

    def _inversion_report(self, name: str, entry: _Held) -> str:
        lines = [
            f"lock-order violation: acquiring {name!r} while holding "
            f"{entry.name!r}, which ranks after it",
            self._order_line(),
            *self._held_lines(),
            "acquisition attempted at:",
            *(f"  {frame}" for frame in _call_stack()),
        ]
        return "\n".join(lines)

    def _self_deadlock_report(self, name: str, entry: _Held) -> str:
        lines = [
            f"lock-order violation: re-acquiring non-reentrant lock "
            f"{name!r} already held by this thread (self-deadlock)",
            *self._held_lines(),
            "re-acquisition attempted at:",
            *(f"  {frame}" for frame in _call_stack()),
        ]
        return "\n".join(lines)

    def _same_rank_report(self, name: str, entry: _Held) -> str:
        lines = [
            f"lock-order violation: acquiring {name!r} while holding a "
            f"different instance of the same lock rank "
            f"(two {name!r} objects nested)",
            *self._held_lines(),
            "acquisition attempted at:",
            *(f"  {frame}" for frame in _call_stack()),
        ]
        return "\n".join(lines)

    def _witness_report(self, name: str, entry: _Held, reverse: dict,
                        acquiring_stack: list[str]) -> str:
        thread = threading.current_thread().name
        lines = [
            f"potential deadlock: thread {thread!r} acquires {name!r} "
            f"while holding {entry.name!r}, but thread "
            f"{reverse['thread']!r} previously acquired {entry.name!r} "
            f"while holding {name!r}",
            f"thread {thread!r} holds {entry.name!r} acquired at:",
            *(f"  {frame}" for frame in entry.stack),
            f"thread {thread!r} now acquiring {name!r} at:",
            *(f"  {frame}" for frame in acquiring_stack),
            f"thread {reverse['thread']!r} earlier acquired "
            f"{entry.name!r} (while holding {name!r}) at:",
            *(f"  {frame}" for frame in reverse["stack"]),
        ]
        return "\n".join(lines)


class SanitizedLock:
    """Drop-in Lock/RLock proxy reporting to a LockOrderSanitizer."""

    def __init__(self, lock, sanitizer: LockOrderSanitizer,
                 name: str | None = None):
        self._lock = lock
        self._sanitizer = sanitizer
        self._reentrant = isinstance(lock, _RLOCK_TYPE)
        self._name = name or f"lock@{id(lock):#x}"

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        reenter = self._sanitizer.before_acquire(
            self._name, self._lock, self._reentrant)
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._sanitizer.after_acquire(
                self._name, self._lock, self._reentrant, reenter)
        return ok

    def release(self) -> None:
        self._sanitizer.on_release(self._lock)
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __getattr__(self, item):
        return getattr(self._lock, item)

    def __repr__(self) -> str:
        return f"SanitizedLock({self._name!r}, {self._lock!r})"


def wrap(lock, sanitizer: LockOrderSanitizer,
         name: str | None = None) -> SanitizedLock:
    """Wrap one bare lock under an explicit canonical name."""
    if isinstance(lock, SanitizedLock):
        return lock
    return SanitizedLock(lock, sanitizer, name)


def instrument(obj, sanitizer: LockOrderSanitizer, _depth: int = 0):
    """Swap ``obj``'s lock attributes for sanitized proxies, in place.

    Descends one level into list/tuple attributes so container objects
    (e.g. the fleet's ``_workers`` list) get their elements' locks
    instrumented too.  Returns ``obj``.
    """
    attrs = getattr(obj, "__dict__", None)
    if attrs is None:
        return obj
    for attr, value in list(attrs.items()):
        if isinstance(value, _LOCK_TYPES):
            name = (sanitizer.canonical_name(attr, type(obj))
                    or f"{type(obj).__name__}.{attr}")
            setattr(obj, attr, SanitizedLock(value, sanitizer, name))
        elif isinstance(value, SanitizedLock):
            continue
        elif _depth == 0 and isinstance(value, (list, tuple)):
            for item in value:
                instrument(item, sanitizer, _depth=1)
    return obj


#: Classes whose instances are instrumented automatically when the
#: pytest fixture flag is on.  (module, class) pairs, resolved lazily.
AUTO_INSTRUMENT_CLASSES = (
    ("repro.service.engine", "ServingEngine"),
    ("repro.service.sharding", "ShardedEngine"),
    ("repro.service.fleet", "ProcessShardFleet"),
    ("repro.service.fleet", "_ShardWorker"),
    ("repro.graph.cache", "TransitionCache"),
    ("repro.core.graph_base", "RandomWalkRecommender"),
)


def auto_instrument(sanitizer: LockOrderSanitizer):
    """Patch the serving classes so every new instance is instrumented.

    Returns a zero-argument ``restore()`` undoing the patches.
    """
    undo = []
    for module_name, class_name in AUTO_INSTRUMENT_CLASSES:
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
        original = cls.__init__

        def wrapped(self, *args, __original=original, **kwargs):
            __original(self, *args, **kwargs)
            instrument(self, sanitizer)

        wrapped.__wrapped__ = original
        cls.__init__ = wrapped
        undo.append((cls, original))

    def restore() -> None:
        for cls, original in undo:
            cls.__init__ = original

    return restore

"""Exception-taxonomy checker.

Every ``raise`` in ``src/repro`` must throw a :class:`ReproError`
subclass, so the CLI and API boundaries can catch one base class and
print one clean ``error:`` line.  Allowed exceptions: bare re-raises,
raising a caught variable, module-private signal classes (leading
underscore, e.g. the fleet's ``_WorkerCrashed`` control-flow markers),
and names listed in ``[taxonomy].allowed``.  Findings from this rule
can never be baselined — raw raises get fixed, not suppressed.
"""

from __future__ import annotations

import builtins

from repro.analysis.findings import Finding
from repro.analysis.model import Program

RULE = "exception-taxonomy"

_ROOT = "ReproError"


def _builtin_exceptions() -> set[str]:
    out = set()
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            out.add(name)
    return out


def _repro_exception_names() -> set[str]:
    """Names of the real :mod:`repro.exceptions` tree, so linting a
    single module still recognises imported ReproError subclasses."""
    try:
        from repro import exceptions as exc_mod
    except Exception:  # pragma: no cover - repro is always importable here
        return {_ROOT}
    base = getattr(exc_mod, _ROOT, None)
    if base is None:  # pragma: no cover
        return {_ROOT}
    return {
        name for name, obj in vars(exc_mod).items()
        if isinstance(obj, type) and issubclass(obj, base)
    }


def check(program: Program) -> list[Finding]:
    allowed = set(program.config.taxonomy_allowed)
    builtins_set = _builtin_exceptions()
    repro_names = _repro_exception_names()

    def is_repro(name: str) -> bool:
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current == _ROOT or current in repro_names:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(program.classes.get(current, ()))
        return False

    findings: list[Finding] = []
    seen_keys: set[str] = set()
    for func in program.functions:
        for site in func.raises:
            name = site.exc_name
            if name is None:
                continue  # bare `raise` re-raise
            if name.startswith("_"):
                continue  # module-private signal class
            if name in allowed or is_repro(name):
                continue
            known_class = name in program.classes
            if not known_class and name not in builtins_set:
                # `raise exc` / `raise exc_factory(...)` on a lowercase
                # variable is a re-raise; an unknown capitalised callee
                # is still suspicious enough to flag.
                if not (site.is_call and name[:1].isupper()):
                    continue
            key = f"{RULE}:{func.file}:{func.qualname}:{name}"
            if key in seen_keys:
                continue
            seen_keys.add(key)
            findings.append(Finding(
                rule=RULE, file=func.file, line=site.line,
                message=(
                    f"{func.qualname}: raises {name}, which is not a "
                    f"ReproError subclass — use the taxonomy in "
                    f"repro/exceptions.py (e.g. ConfigError, DataError, "
                    f"ArtifactError) so API boundaries catch one base "
                    f"class; this rule cannot be baselined"
                ),
                key=key))
    return findings

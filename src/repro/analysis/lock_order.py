"""Lock-order checker: inter-procedural acquisition-edge validation.

Builds, for every function, the set of locks it may transitively
acquire (with a witness chain of call hops down to the actual ``with``
statement), then validates every acquisition edge — lock B taken while
lock A is held — against the linear order declared in analysis.toml.
An edge whose ranks run backwards is an inversion; re-acquiring a
non-reentrant lock is a self-deadlock; edges among unranked locks are
collected into a witness graph and flagged when they form a cycle.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.model import FunctionInfo, HeldLock, Program

RULE = "lock-order"


def transitive_acquires(program: Program) -> dict[int, dict[str, list]]:
    """``id(func) -> {lock: witness chain}`` fixpoint over the call graph.

    A witness chain is ``[{"file", "line", "note"}, ...]`` from the
    first call hop down to the ``with`` statement that takes the lock.
    """
    acquired: dict[int, dict[str, list]] = {}
    for func in program.functions:
        mine: dict[str, list] = {}
        for acq in func.acquires:
            mine.setdefault(acq.lock, [{
                "file": func.file, "line": acq.line,
                "note": f"{func.qualname} acquires {acq.lock}",
            }])
        acquired[id(func)] = mine
    resolved: dict[tuple[int, int], FunctionInfo | None] = {}
    for func in program.functions:
        for index, site in enumerate(func.calls):
            resolved[(id(func), index)] = program.resolve_call(site, func)
    changed = True
    while changed:
        changed = False
        for func in program.functions:
            mine = acquired[id(func)]
            for index, site in enumerate(func.calls):
                callee = resolved[(id(func), index)]
                if callee is None or callee is func:
                    continue
                for lock, chain in acquired[id(callee)].items():
                    if lock in mine:
                        continue
                    mine[lock] = [{
                        "file": func.file, "line": site.line,
                        "note": f"{func.qualname} calls {callee.qualname}",
                    }] + chain
                    changed = True
    return acquired


def check(program: Program) -> list[Finding]:
    config = program.config
    acquired = transitive_acquires(program)
    findings: list[Finding] = []
    seen: set[str] = set()
    # Witness graph over every edge (including legal ones) for the
    # cycle pass: (A, B) -> representative chain.
    edges: dict[tuple[str, str], tuple[FunctionInfo, list]] = {}

    def consider(func: FunctionInfo, held: HeldLock, lock: str,
                 chain: list) -> None:
        full_chain = [{
            "file": held.file, "line": held.line,
            "note": f"{held.lock} acquired here",
        }] + chain
        edges.setdefault((held.lock, lock), (func, full_chain))
        rank_held = config.rank(held.lock)
        rank_next = config.rank(lock)
        message = None
        if held.lock == lock:
            spec = config.spec(lock)
            if spec is not None and not spec.reentrant:
                message = (
                    f"re-acquires non-reentrant lock {lock!r} while "
                    "already holding it (self-deadlock)"
                )
        elif (rank_held is not None and rank_next is not None
                and rank_held > rank_next):
            message = (
                f"acquires {lock!r} while holding {held.lock!r}, "
                f"inverting the declared order "
                f"({lock!r} ranks before {held.lock!r} in analysis.toml)"
            )
        if message is None:
            return
        key = f"{RULE}:{func.file}:{func.qualname}:{held.lock}->{lock}"
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(
            rule=RULE, file=func.file, line=full_chain[-1]["line"]
            if full_chain[-1]["file"] == func.file else func.line,
            message=f"{func.qualname}: {message}",
            key=key, chain=full_chain))

    for func in program.functions:
        for acq in func.acquires:
            for held in acq.held:
                consider(func, held, acq.lock, [{
                    "file": func.file, "line": acq.line,
                    "note": f"{func.qualname} acquires {acq.lock}",
                }])
        for site in func.calls:
            if not site.held:
                continue
            callee = program.resolve_call(site, func)
            if callee is None:
                continue
            for lock, chain in acquired[id(callee)].items():
                for held in site.held:
                    consider(func, held, lock, [{
                        "file": func.file, "line": site.line,
                        "note": f"{func.qualname} calls {callee.qualname}",
                    }] + chain)

    findings.extend(_cycle_findings(program, edges, seen))
    return findings


def _cycle_findings(program: Program, edges, seen: set[str]):
    """Flag cycles among edges the rank check could not order.

    With a total declared order, every ranked inversion is already a
    finding; this pass catches cycles through *unranked* locks, which
    have no rank to invert.
    """
    graph: dict[str, set[str]] = {}
    for (a, b), _ in edges.items():
        if a != b:
            graph.setdefault(a, set()).add(b)
    out = []
    for (a, b), (func, chain) in sorted(edges.items()):
        if a == b:
            continue
        if program.config.rank(a) is not None \
                and program.config.rank(b) is not None:
            continue  # rank pass owns ordered pairs
        if _reaches(graph, b, a):
            key = f"{RULE}:{func.file}:{func.qualname}:cycle:{a}->{b}"
            if key in seen:
                continue
            seen.add(key)
            out.append(Finding(
                rule=RULE, file=func.file, line=chain[-1]["line"],
                message=(
                    f"{func.qualname}: acquisition cycle — {a!r} is taken "
                    f"before {b!r} here, but {b!r} is also taken before "
                    f"{a!r} elsewhere (potential deadlock)"
                ),
                key=key, chain=chain))
    return out


def _reaches(graph: dict[str, set[str]], start: str, goal: str) -> bool:
    stack, visited = [start], set()
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in visited:
            continue
        visited.add(node)
        stack.extend(graph.get(node, ()))
    return False

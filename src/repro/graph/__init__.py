"""Graph substrate: the bipartite user-item graph, random-walk primitives,
absorbing-chain solvers, BFS subgraph extraction, and related-work proximity
measures."""

from repro.graph.absorbing import (
    exact_absorbing_values,
    iteration_history,
    reachability_mask,
    truncated_absorbing_values,
)
from repro.graph.bipartite import GraphUpdate, UserItemGraph
from repro.graph.cache import TransitionCache, TransitionGroup
from repro.graph.proximity import commute_times, katz_index, personalized_pagerank
from repro.graph.random_walk import (
    monte_carlo_absorbing_time,
    reversibility_gap,
    simulate_walk,
    stationary_distribution,
    transition_matrix,
)
from repro.graph.subgraph import LocalSubgraph, bfs_subgraph

__all__ = [
    "exact_absorbing_values",
    "iteration_history",
    "reachability_mask",
    "truncated_absorbing_values",
    "UserItemGraph",
    "GraphUpdate",
    "TransitionCache",
    "TransitionGroup",
    "commute_times",
    "katz_index",
    "personalized_pagerank",
    "monte_carlo_absorbing_time",
    "reversibility_gap",
    "simulate_walk",
    "stationary_distribution",
    "transition_matrix",
    "LocalSubgraph",
    "bfs_subgraph",
]

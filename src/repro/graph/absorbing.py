"""Absorbing Markov-chain solvers: hitting/absorbing times and costs.

This is the mathematical core the paper's recommenders stand on:

* **Hitting Time** (Definition 1, §3.3) is the absorbing time with a single
  absorbing node.
* **Absorbing Time** ``AT(S|i)`` (Definition 3, Eq. 6) satisfies the
  first-step recurrence ``AT(S|i) = 1 + Σ_j p_ij AT(S|j)`` with ``AT = 0`` on
  ``S``.
* **Absorbing Cost** ``AC(S|i)`` (Eq. 8–9) generalises the constant ``1`` to a
  per-node expected local cost ``c_i = Σ_j p_ij c(j|i)``; the entropy-biased
  cost models of §4.2 plug in here.

Two solvers are provided, matching the paper's discussion in §4.1:

* :func:`exact_absorbing_values` — direct sparse solve of
  ``(I − P_TT)·x = c`` over the transient nodes (the paper's "solving the
  linear system", O(n³) worst case);
* :func:`truncated_absorbing_values` — the dynamic-programming iteration of
  Algorithm 1 run for a fixed ``τ`` sweeps (the paper uses τ = 15 and reports
  the induced *ranking* already matches the exact solution).

Nodes that cannot reach the absorbing set (other components, isolated nodes)
get ``+inf`` from both solvers, so downstream ranking never recommends them.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.csgraph import dijkstra

from repro.exceptions import GraphError
from repro.utils.validation import as_index_array, check_positive_int

__all__ = [
    "reachability_mask",
    "exact_absorbing_values",
    "truncated_absorbing_values",
    "truncated_absorbing_values_multi",
    "iteration_history",
]


def _check_transition(transition) -> sp.csr_matrix:
    p = sp.csr_matrix(transition, dtype=np.float64)
    if p.shape[0] != p.shape[1]:
        raise GraphError(f"transition matrix must be square; got {p.shape}")
    if p.nnz and (p.data.min() < 0):
        raise GraphError("transition matrix has negative entries")
    sums = np.asarray(p.sum(axis=1)).ravel()
    bad = np.flatnonzero((sums > 1e-9) & (np.abs(sums - 1.0) > 1e-6))
    if bad.size:
        raise GraphError(
            f"{bad.size} rows are neither zero nor stochastic "
            f"(first offender: row {bad[0]}, sum {sums[bad[0]]:.6f})"
        )
    return p


def _local_costs(local_costs, n: int) -> np.ndarray:
    if local_costs is None:
        return np.ones(n)
    c = np.asarray(local_costs, dtype=np.float64).ravel()
    if c.shape[0] != n:
        raise GraphError(f"local_costs length {c.shape[0]} != node count {n}")
    if np.any(~np.isfinite(c)) or np.any(c < 0):
        raise GraphError("local_costs must be finite and non-negative")
    return c


def reachability_mask(transition: sp.spmatrix, absorbing: np.ndarray) -> np.ndarray:
    """Boolean mask of nodes from which the absorbing set is reachable.

    Computed as a multi-source BFS from ``absorbing`` along *reversed* edges,
    so it is correct even for non-symmetric transition patterns.
    """
    p = _check_transition(transition)
    absorbing = as_index_array(absorbing, p.shape[0], "absorbing")
    if absorbing.size == 0:
        raise GraphError("absorbing set is empty")
    dist = dijkstra(p.T, indices=absorbing, unweighted=True, min_only=True)
    return np.isfinite(dist)


def exact_absorbing_values(transition: sp.spmatrix, absorbing: np.ndarray,
                           local_costs: np.ndarray | None = None) -> np.ndarray:
    """Solve the first-step equations exactly.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` (zero rows allowed for isolated nodes).
    absorbing:
        Node indices of the absorbing set ``S``.
    local_costs:
        Per-node expected one-step cost ``c_i``; ``None`` means all ones,
        which yields absorbing *times*.

    Returns
    -------
    numpy.ndarray
        ``x`` with ``x[S] = 0``, exact expected cost-to-absorption on nodes
        that reach ``S``, and ``+inf`` elsewhere.
    """
    p = _check_transition(transition)
    n = p.shape[0]
    absorbing = as_index_array(absorbing, n, "absorbing")
    if absorbing.size == 0:
        raise GraphError("absorbing set is empty")
    costs = _local_costs(local_costs, n)

    reachable = reachability_mask(p, absorbing)
    values = np.full(n, np.inf)
    values[absorbing] = 0.0

    transient_mask = reachable.copy()
    transient_mask[absorbing] = False
    transient = np.flatnonzero(transient_mask)
    if transient.size == 0:
        return values

    q = p[transient][:, transient].tocsc()
    system = sp.eye(transient.size, format="csc") - q
    solution = spla.spsolve(system, costs[transient])
    solution = np.atleast_1d(solution)
    values[transient] = solution
    return values


def truncated_absorbing_values(transition: sp.spmatrix, absorbing: np.ndarray,
                               n_iterations: int = 15,
                               local_costs: np.ndarray | None = None) -> np.ndarray:
    """Algorithm 1's truncated dynamic-programming iteration.

    Starting from ``x_0 = 0``, performs ``n_iterations`` sweeps of
    ``x ← c + P·x`` with ``x[S]`` pinned to zero. The fixed point is the exact
    absorbing value; after τ sweeps ``x_i`` equals the expected cost
    accumulated in the first ``min(T_S, τ)`` steps, which preserves the
    *ranking* of the exact values for modest τ (paper: τ = 15).

    Unreachable nodes are reported as ``+inf`` (their iterate would otherwise
    grow linearly with τ and could interleave with legitimate far nodes).
    """
    p = _check_transition(transition)
    n = p.shape[0]
    absorbing = as_index_array(absorbing, n, "absorbing")
    if absorbing.size == 0:
        raise GraphError("absorbing set is empty")
    n_iterations = check_positive_int(n_iterations, "n_iterations")
    costs = _local_costs(local_costs, n)

    x = np.zeros(n)
    costs_eff = costs.copy()
    costs_eff[absorbing] = 0.0
    for _ in range(n_iterations):
        x = costs_eff + p @ x
        x[absorbing] = 0.0

    values = np.where(reachability_mask(p, absorbing), x, np.inf)
    values[absorbing] = 0.0
    return values


def truncated_absorbing_values_multi(transition: sp.spmatrix,
                                     absorbing_sets: list[np.ndarray],
                                     n_iterations: int = 15,
                                     local_costs: np.ndarray | None = None,
                                     reachable: np.ndarray | None = None) -> np.ndarray:
    """Truncated absorbing values for many absorbing sets at once.

    The batch-serving counterpart of :func:`truncated_absorbing_values`:
    instead of iterating ``x ← c + P·x`` once per query, every query's value
    vector becomes one column of a dense ``(n_nodes, n_sets)`` matrix ``X``
    and the sweep is a single sparse-matrix × dense-matrix product
    ``X ← C + P·X`` — the multi-RHS form that amortises the sparse traversal
    of ``P`` across the whole cohort. Column ``k`` is bit-identical to the
    single-set iteration on ``absorbing_sets[k]`` because CSR mat-mat
    accumulates each output row in the same nonzero order regardless of the
    number of right-hand sides.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` shared by every query.
    absorbing_sets:
        One node-index array per query; each must be non-empty.
    n_iterations:
        τ, the sweep count (paper: 15).
    local_costs:
        Per-node expected one-step cost shared by every query (``None`` =
        unit costs, i.e. absorbing *times*).
    reachable:
        Optional precomputed ``(n_nodes, n_sets)`` boolean matrix; column
        ``k`` marks nodes that can reach ``absorbing_sets[k]``. When omitted
        it is derived per set via :func:`reachability_mask`. Callers on
        symmetric graphs can pass connected-component membership instead,
        which is equivalent and far cheaper than per-set Dijkstra runs.

    Returns
    -------
    numpy.ndarray
        ``(n_nodes, n_sets)`` values: zero on each set's absorbing nodes,
        truncated expected cost elsewhere, ``+inf`` where unreachable.
    """
    p = _check_transition(transition)
    n = p.shape[0]
    n_sets = len(absorbing_sets)
    if n_sets == 0:
        return np.zeros((n, 0))
    sets = [as_index_array(a, n, "absorbing") for a in absorbing_sets]
    if any(a.size == 0 for a in sets):
        raise GraphError("absorbing set is empty")
    n_iterations = check_positive_int(n_iterations, "n_iterations")
    costs = _local_costs(local_costs, n)

    # Flat (node, column) coordinates of every absorbing entry, so pinning
    # all sets to zero is one fancy-indexed assignment per sweep.
    pin_rows = np.concatenate(sets)
    pin_cols = np.repeat(np.arange(n_sets), [a.size for a in sets])

    c = np.repeat(costs[:, None], n_sets, axis=1)
    c[pin_rows, pin_cols] = 0.0
    x = np.zeros((n, n_sets))
    for _ in range(n_iterations):
        x = c + p @ x
        x[pin_rows, pin_cols] = 0.0

    if reachable is None:
        reachable = np.column_stack([reachability_mask(p, a) for a in sets])
    reachable = np.asarray(reachable, dtype=bool)
    if reachable.shape != (n, n_sets):
        raise GraphError(
            f"reachable must have shape {(n, n_sets)}; got {reachable.shape}"
        )
    values = np.where(reachable, x, np.inf)
    values[pin_rows, pin_cols] = 0.0
    return values


def iteration_history(transition: sp.spmatrix, absorbing: np.ndarray,
                      n_iterations: int,
                      local_costs: np.ndarray | None = None) -> np.ndarray:
    """Iterates of the truncated solver after each sweep.

    Returns an ``(n_iterations, n_nodes)`` array — row ``t`` is the value
    vector after ``t + 1`` sweeps. Used by the τ-convergence ablation
    (how fast does the induced top-k ranking stabilise?).
    """
    p = _check_transition(transition)
    n = p.shape[0]
    absorbing = as_index_array(absorbing, n, "absorbing")
    if absorbing.size == 0:
        raise GraphError("absorbing set is empty")
    n_iterations = check_positive_int(n_iterations, "n_iterations")
    costs = _local_costs(local_costs, n)
    costs_eff = costs.copy()
    costs_eff[absorbing] = 0.0

    history = np.empty((n_iterations, n))
    x = np.zeros(n)
    for t in range(n_iterations):
        x = costs_eff + p @ x
        x[absorbing] = 0.0
        history[t] = x
    return history

"""Absorbing Markov-chain solvers: hitting/absorbing times and costs.

This is the mathematical core the paper's recommenders stand on:

* **Hitting Time** (Definition 1, §3.3) is the absorbing time with a single
  absorbing node.
* **Absorbing Time** ``AT(S|i)`` (Definition 3, Eq. 6) satisfies the
  first-step recurrence ``AT(S|i) = 1 + Σ_j p_ij AT(S|j)`` with ``AT = 0`` on
  ``S``.
* **Absorbing Cost** ``AC(S|i)`` (Eq. 8–9) generalises the constant ``1`` to a
  per-node expected local cost ``c_i = Σ_j p_ij c(j|i)``; the entropy-biased
  cost models of §4.2 plug in here.

Two solvers are provided, matching the paper's discussion in §4.1:

* :func:`exact_absorbing_values` — direct sparse solve of
  ``(I − P_TT)·x = c`` over the transient nodes (the paper's "solving the
  linear system", O(n³) worst case);
* :func:`truncated_absorbing_values` — the dynamic-programming iteration of
  Algorithm 1 run for a fixed ``τ`` sweeps (the paper uses τ = 15 and reports
  the induced *ranking* already matches the exact solution).

Nodes that cannot reach the absorbing set (other components, isolated nodes)
get ``+inf`` from both solvers, so downstream ranking never recommends them.

Since the prepared-operator refactor these functions are thin *validated
wrappers* for external callers: each call builds a
:class:`~repro.solver.WalkOperator` (paying the one-time O(nnz) validation)
and delegates the solve to it. The warm serving path inside the library
skips the wrappers entirely — it holds prepared operators in the
:class:`~repro.graph.cache.TransitionCache` and validates each matrix
exactly once per cache entry.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import dijkstra

from repro.exceptions import GraphError
from repro.solver import WalkOperator
from repro.utils.validation import as_index_array, check_positive_int

__all__ = [
    "reachability_mask",
    "exact_absorbing_values",
    "truncated_absorbing_values",
    "truncated_absorbing_values_multi",
    "iteration_history",
]


def reachability_mask(transition: sp.spmatrix, absorbing: np.ndarray) -> np.ndarray:
    """Boolean mask of nodes from which the absorbing set is reachable.

    Computed as a multi-source BFS from ``absorbing`` along *reversed* edges,
    so it is correct even for non-symmetric transition patterns.
    """
    p = WalkOperator(transition).transition
    absorbing = as_index_array(absorbing, p.shape[0], "absorbing")
    if absorbing.size == 0:
        raise GraphError("absorbing set is empty")
    dist = dijkstra(p.T, indices=absorbing, unweighted=True, min_only=True)
    return np.isfinite(dist)


def exact_absorbing_values(transition: sp.spmatrix, absorbing: np.ndarray,
                           local_costs: np.ndarray | None = None) -> np.ndarray:
    """Solve the first-step equations exactly.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` (zero rows allowed for isolated nodes).
    absorbing:
        Node indices of the absorbing set ``S``.
    local_costs:
        Per-node expected one-step cost ``c_i``; ``None`` means all ones,
        which yields absorbing *times*.

    Returns
    -------
    numpy.ndarray
        ``x`` with ``x[S] = 0``, exact expected cost-to-absorption on nodes
        that reach ``S``, and ``+inf`` elsewhere.
    """
    return WalkOperator(transition).solve_exact(absorbing, local_costs)


def truncated_absorbing_values(transition: sp.spmatrix, absorbing: np.ndarray,
                               n_iterations: int = 15,
                               local_costs: np.ndarray | None = None) -> np.ndarray:
    """Algorithm 1's truncated dynamic-programming iteration.

    Starting from ``x_0 = 0``, performs ``n_iterations`` sweeps of
    ``x ← c + P·x`` with ``x[S]`` pinned to zero. The fixed point is the exact
    absorbing value; after τ sweeps ``x_i`` equals the expected cost
    accumulated in the first ``min(T_S, τ)`` steps, which preserves the
    *ranking* of the exact values for modest τ (paper: τ = 15).

    Unreachable nodes are reported as ``+inf`` (their iterate would otherwise
    grow linearly with τ and could interleave with legitimate far nodes).
    """
    return WalkOperator(transition).solve(absorbing, n_iterations, local_costs)


def truncated_absorbing_values_multi(transition: sp.spmatrix,
                                     absorbing_sets: list[np.ndarray],
                                     n_iterations: int = 15,
                                     local_costs: np.ndarray | None = None,
                                     reachable: np.ndarray | None = None) -> np.ndarray:
    """Truncated absorbing values for many absorbing sets at once.

    The batch-serving counterpart of :func:`truncated_absorbing_values`:
    instead of iterating ``x ← c + P·x`` once per query, every query's value
    vector becomes one column of a dense ``(n_nodes, n_sets)`` matrix ``X``
    and the sweep is a single sparse-matrix × dense-matrix product
    ``X ← C + P·X`` — the multi-RHS form that amortises the sparse traversal
    of ``P`` across the whole cohort. Column ``k`` is bit-identical to the
    single-set iteration on ``absorbing_sets[k]`` because CSR mat-mat
    accumulates each output row in the same nonzero order regardless of the
    number of right-hand sides.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` shared by every query.
    absorbing_sets:
        One node-index array per query; each must be non-empty.
    n_iterations:
        τ, the sweep count (paper: 15).
    local_costs:
        Per-node expected one-step cost shared by every query (``None`` =
        unit costs, i.e. absorbing *times*).
    reachable:
        Optional precomputed ``(n_nodes, n_sets)`` boolean matrix; column
        ``k`` marks nodes that can reach ``absorbing_sets[k]``. When omitted
        it is derived per set via :func:`reachability_mask`. Callers on
        symmetric graphs can pass connected-component membership instead,
        which is equivalent and far cheaper than per-set Dijkstra runs.

    Returns
    -------
    numpy.ndarray
        ``(n_nodes, n_sets)`` values: zero on each set's absorbing nodes,
        truncated expected cost elsewhere, ``+inf`` where unreachable.
    """
    operator = WalkOperator(transition)
    if len(absorbing_sets) == 0:
        return np.zeros((operator.n_nodes, 0))
    return operator.solve_multi(list(absorbing_sets), n_iterations,
                                local_costs=local_costs, reachable=reachable)


def iteration_history(transition: sp.spmatrix, absorbing: np.ndarray,
                      n_iterations: int,
                      local_costs: np.ndarray | None = None) -> np.ndarray:
    """Iterates of the truncated solver after each sweep.

    Returns an ``(n_iterations, n_nodes)`` array — row ``t`` is the value
    vector after ``t + 1`` sweeps. Used by the τ-convergence ablation
    (how fast does the induced top-k ranking stabilise?).
    """
    operator = WalkOperator(transition)  # the one validation pass
    p = operator.transition
    n = p.shape[0]
    absorbing = as_index_array(absorbing, n, "absorbing")
    if absorbing.size == 0:
        raise GraphError("absorbing set is empty")
    n_iterations = check_positive_int(n_iterations, "n_iterations")
    costs_eff = operator._check_costs(local_costs).copy()
    costs_eff[absorbing] = 0.0

    history = np.empty((n_iterations, n))
    x = np.zeros(n)
    for t in range(n_iterations):
        x = costs_eff + p @ x
        x[absorbing] = 0.0
        history[t] = x
    return history

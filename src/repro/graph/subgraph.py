"""BFS subgraph extraction around an absorbing set (Algorithm 1, step 2).

The paper scales Absorbing Time/Cost to large graphs by restricting the
computation to a local subgraph: a breadth-first search grows outward from
the query user's rated items ``S_q`` and stops expanding once the subgraph
holds more than ``µ`` item nodes. The walk is then run on the induced
subgraph only; items outside it are never recommended (conceptually at
``+inf`` time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.bipartite import UserItemGraph
from repro.utils.validation import as_index_array, check_positive_int

__all__ = ["LocalSubgraph", "bfs_subgraph"]


@dataclass(frozen=True)
class LocalSubgraph:
    """An induced subgraph with mappings back to the parent graph.

    Attributes
    ----------
    nodes:
        Parent-graph node indices in subgraph order (``nodes[k]`` is the
        parent node of local node ``k``).
    adjacency:
        Induced weighted adjacency over ``nodes``.
    local_index:
        Dict mapping parent node → local index.
    n_local_items:
        Number of item nodes included.
    """

    nodes: np.ndarray
    adjacency: sp.csr_matrix
    local_index: dict
    n_local_items: int

    @property
    def n_nodes(self) -> int:
        return self.nodes.size

    def to_local(self, parent_nodes) -> np.ndarray:
        """Map parent node indices to local indices (KeyError if absent)."""
        try:
            return np.array(
                [self.local_index[int(p)] for p in np.atleast_1d(parent_nodes)],
                dtype=np.int64,
            )
        except KeyError as exc:
            raise GraphError(f"node {exc.args[0]} is not in the subgraph") from None

    def contains(self, parent_node: int) -> bool:
        return int(parent_node) in self.local_index


def bfs_subgraph(graph: UserItemGraph, seed_items: np.ndarray,
                 max_items: int = 6000) -> LocalSubgraph:
    """Grow a local subgraph from ``seed_items`` by breadth-first search.

    Expansion proceeds in breadth-first queue order (items → their raters →
    the raters' other items → …) and stops the moment the included item
    count exceeds ``max_items`` (the paper's µ: "the search stops when the
    number of item nodes in the subgraph is larger than a predefined
    number"). Stopping mid-level makes µ a hard budget — exactly what gives
    the Absorbing Time/Cost methods their locality at scale (items far from
    :math:`S_q` never enter the candidate set). Seeds are always included,
    even if ``len(seed_items) > max_items``.

    Parameters
    ----------
    graph:
        The global user-item graph.
    seed_items:
        Item indices of the absorbing set :math:`S_q`.
    max_items:
        The µ parameter (paper default 6000).
    """
    max_items = check_positive_int(max_items, "max_items")
    seed_items = as_index_array(seed_items, graph.n_items, "seed_items")
    if seed_items.size == 0:
        raise GraphError("seed_items is empty; cannot anchor the subgraph")

    adjacency = graph.adjacency
    visited = np.zeros(graph.n_nodes, dtype=bool)
    order: list[int] = []
    n_items_included = 0

    queue = deque()
    for node in graph.item_nodes(seed_items):
        node = int(node)
        visited[node] = True
        order.append(node)
        queue.append(node)
        n_items_included += 1

    budget_exhausted = n_items_included > max_items
    while queue and not budget_exhausted:
        node = queue.popleft()
        lo, hi = adjacency.indptr[node], adjacency.indptr[node + 1]
        for neighbor in adjacency.indices[lo:hi]:
            neighbor = int(neighbor)
            if visited[neighbor]:
                continue
            if graph.is_item_node(neighbor):
                if n_items_included >= max_items:
                    budget_exhausted = True
                    break
                n_items_included += 1
            visited[neighbor] = True
            order.append(neighbor)
            queue.append(neighbor)

    nodes = np.array(order, dtype=np.int64)
    local_index = {int(p): k for k, p in enumerate(nodes)}
    induced = adjacency[nodes][:, nodes].tocsr()
    return LocalSubgraph(
        nodes=nodes,
        adjacency=induced,
        local_index=local_index,
        n_local_items=n_items_included,
    )

"""Memoized walk structures for repeated batch serving (the warm path).

Scoring a cohort through :class:`~repro.core.graph_base.RandomWalkRecommender`
spends a large share of its time *before* any sweep runs: slicing the
component-group submatrix out of the global adjacency, row-normalizing it,
building the user mask and the per-node entropy vector. Those structures
depend only on the (immutable) fitted graph and the component-group key —
never on the query — so a serving process that sees the same µ-subgraph
groups request after request is recomputing identical sparse matrices.

:class:`TransitionCache` memoizes them, and since the prepared-operator
refactor every entry carries a ready-to-solve
:class:`~repro.solver.WalkOperator`: the transition matrix is validated
exactly once when the entry is built, and every subsequent solve through the
operator skips validation, reuses the memoized cost vectors and label-indexed
reachability, and sweeps through preallocated chunked buffers.

* :meth:`group` — the shared transition matrix (plus user mask, local
  component labels, item index maps, the entropy slice and the prepared
  operator) for a component-group key, as used by the grouped multi-RHS
  batch path;
* :meth:`bfs` — the µ-truncated BFS subgraph and its prepared operator for a
  single query, keyed by (user, absorbing set, µ): the BFS expansion is
  deterministic, so a repeated query skips the traversal, the sparse slice,
  the normalization and the validation entirely;
* :attr:`node_entropy` — the full per-node entropy vector, computed once.

Entries are kept in an LRU dict bounded by ``max_entries``; hit/miss
counters feed the serving reports (`cache-hit stats` in
:class:`~repro.service.engine.ServingEngine`). Lookups are guarded by a lock
so the serving engine may resolve independent component-groups from worker
threads; a racing cold build can run twice, but only one entry wins.

The cache assumes the graph and the entropy vector are frozen between
updates — the offline-fit / online-serve contract of the artifact layer.
When the incremental pipeline applies a
:class:`~repro.data.dataset.DatasetDelta`, :meth:`TransitionCache.apply_update`
rebinds the cache to the updated graph with **targeted invalidation**: only
entries whose component key intersects the touched components are evicted;
everything else — including the prepared operators and their splu factors —
stays warm, with eviction/retention counts surfaced in :meth:`stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigError
from repro.graph.bipartite import GraphUpdate, UserItemGraph
from repro.graph.subgraph import LocalSubgraph, bfs_subgraph
from repro.solver import WalkOperator
from repro.utils.sparse import row_normalize, safe_divide_rows
from repro.utils.validation import check_positive_int

__all__ = ["TransitionGroup", "TransitionCache"]


@dataclass(frozen=True)
class TransitionGroup:
    """Warm walk structures shared by every query hitting one node group.

    Attributes
    ----------
    nodes:
        Parent-graph node indices of the group, sorted ascending.
    transition:
        Row-normalized transition matrix over ``nodes``.
    user_mask:
        Boolean per local node; True where the node is a user.
    labels:
        Connected-component id per local node.
    node_entropy:
        Entropy per local node (user entropy at user nodes, 0 at items).
    item_positions:
        Local positions of the item nodes (``flatnonzero(~user_mask)``).
    item_indices:
        Catalogue item index of each entry of ``item_positions``.
    operator:
        The prepared :class:`~repro.solver.WalkOperator` over ``transition``
        — validated once at build time; all warm solves go through it.
    """

    nodes: np.ndarray
    transition: sp.csr_matrix
    user_mask: np.ndarray
    labels: np.ndarray
    node_entropy: np.ndarray
    item_positions: np.ndarray
    item_indices: np.ndarray
    operator: WalkOperator


class TransitionCache:
    """LRU cache of prepared walk operators and structures for one graph.

    Parameters
    ----------
    graph:
        The fitted (immutable) user-item graph.
    node_entropy:
        Optional per-node entropy vector (length ``graph.n_nodes``); defaults
        to all zeros (HT/AT — only Absorbing Cost carries entropies).
    max_entries:
        Bound on cached component-group entries; least-recently-used entries
        are evicted beyond it.
    max_bfs_entries:
        Separate bound for per-query BFS entries. The two kinds live in
        separate LRUs so a churn of one-off truncated-BFS queries can never
        evict the heavily shared group transition matrices.
    """

    #: Key of the whole-graph pseudo-group used by global-graph scoring.
    GLOBAL_KEY = ("__global__",)

    def __init__(self, graph: UserItemGraph, node_entropy: np.ndarray | None = None,
                 max_entries: int = 256, max_bfs_entries: int = 256):
        self.graph = graph
        if node_entropy is None:
            node_entropy = np.zeros(graph.n_nodes)
        node_entropy = np.asarray(node_entropy, dtype=np.float64).ravel()
        if node_entropy.shape[0] != graph.n_nodes:
            raise ConfigError(
                f"node_entropy length {node_entropy.shape[0]} != n_nodes {graph.n_nodes}"
            )
        self.node_entropy = node_entropy
        self.max_entries = check_positive_int(max_entries, "max_entries")
        self.max_bfs_entries = check_positive_int(max_bfs_entries, "max_bfs_entries")
        self._groups: OrderedDict[tuple, TransitionGroup] = OrderedDict()  # guarded-by: cache._lock
        self._bfs: OrderedDict[tuple, tuple] = OrderedDict()  # guarded-by: cache._lock
        # Reentrant so stats() can aggregate via operator_stats()/len()
        # under one consistent snapshot.
        self._lock = threading.RLock()
        self.hits = 0  # guarded-by: cache._lock
        self.misses = 0  # guarded-by: cache._lock
        self.invalidated_groups = 0  # guarded-by: cache._lock
        self.invalidated_bfs = 0  # guarded-by: cache._lock
        self.retained_groups = 0  # guarded-by: cache._lock
        self.retained_bfs = 0  # guarded-by: cache._lock

    # -- generic LRU ---------------------------------------------------------

    def _get(self, entries: OrderedDict, key: tuple, builder, bound: int):
        with self._lock:
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
        # Build outside the lock so independent groups can build in parallel
        # from engine worker threads; a duplicate racing build is harmless
        # (first writer wins, the loser's entry is discarded).
        entry = builder()
        with self._lock:
            existing = entries.get(key)
            if existing is not None:
                entries.move_to_end(key)
                return existing
            entries[key] = entry
            while len(entries) > bound:
                entries.popitem(last=False)
        return entry

    # -- component-group transitions ----------------------------------------

    def group(self, components: tuple[int, ...] | None) -> TransitionGroup:
        """Warm structures for a component-group key.

        ``components`` is the sorted tuple of connected-component ids whose
        union forms the shared subgraph; ``None`` addresses the whole graph
        (the global-graph scoring mode), reusing the graph's own cached
        transition matrix.
        """
        if components is None:
            return self._get(self._groups, self.GLOBAL_KEY, self._build_global,
                             self.max_entries)
        key = ("group",) + tuple(int(c) for c in components)
        return self._get(self._groups, key,
                         lambda: self._build_group(key[1:]), self.max_entries)

    def _finish_group(self, nodes: np.ndarray, transition: sp.csr_matrix,
                      labels: np.ndarray) -> TransitionGroup:
        user_mask = nodes < self.graph.n_users
        item_positions = np.flatnonzero(~user_mask)
        node_entropy = self.node_entropy[nodes]
        # The one place a group matrix is validated: operator construction.
        operator = WalkOperator(
            transition, labels=labels, user_mask=user_mask,
            node_entropy=node_entropy,
            substochastic=self.graph.substochastic,
        )
        return TransitionGroup(
            nodes=nodes,
            transition=operator.transition,
            user_mask=user_mask,
            labels=labels,
            node_entropy=node_entropy,
            item_positions=item_positions,
            item_indices=nodes[item_positions] - self.graph.n_users,
            operator=operator,
        )

    def _build_global(self) -> TransitionGroup:
        graph = self.graph
        nodes = np.arange(graph.n_nodes, dtype=np.int64)
        return self._finish_group(
            nodes, graph.transition_matrix(), graph.component_labels()
        )

    def _subgraph_transition(self, sub: sp.csr_matrix,
                             nodes: np.ndarray) -> sp.csr_matrix:
        """Transition rows for a node-sliced subgraph.

        Ordinary graphs renormalise over the surviving edges (a component
        slice loses none, so the result is exactly the global rows). A
        degree-true halo graph instead divides by the parent's degree vector
        — which already includes each node's cut-edge deficit — so boundary
        rows stay substochastic instead of inflating the surviving edges.
        """
        if self.graph.substochastic:
            return safe_divide_rows(sub, self.graph.degrees[nodes])
        return row_normalize(sub, allow_zero_rows=True)

    def _build_group(self, components: tuple[int, ...]) -> TransitionGroup:
        graph = self.graph
        labels = graph.component_labels()
        nodes = np.flatnonzero(np.isin(labels, np.array(components)))
        transition = self._subgraph_transition(
            graph.adjacency[nodes][:, nodes].tocsr(), nodes
        )
        return self._finish_group(nodes, transition, labels[nodes])

    # -- per-query BFS subgraphs --------------------------------------------

    def bfs(self, user: int, seed_items: np.ndarray, absorbing: np.ndarray,
            max_items: int) -> tuple[LocalSubgraph, WalkOperator]:
        """Memoized µ-truncated BFS subgraph + prepared walk operator.

        The key covers everything the expansion depends on — the seed items,
        the absorbing set and the µ budget — so a repeated request for the
        same user is answered without touching the adjacency (or
        re-validating the transition) at all.
        """
        key = ("bfs", int(user), int(max_items),
               seed_items.tobytes(), absorbing.tobytes())

        def build():
            sub = bfs_subgraph(self.graph, seed_items, max_items)
            transition = self._subgraph_transition(sub.adjacency, sub.nodes)
            operator = WalkOperator(
                transition,
                user_mask=sub.nodes < self.graph.n_users,
                node_entropy=self.node_entropy[sub.nodes],
                substochastic=self.graph.substochastic,
            )
            return (sub, operator)

        return self._get(self._bfs, key, build, self.max_bfs_entries)

    # -- incremental updates --------------------------------------------------

    def apply_update(self, update: GraphUpdate,
                     node_entropy: np.ndarray | None = None) -> dict:
        """Rebind the cache to an updated graph, evicting only what changed.

        ``update`` comes from :meth:`UserItemGraph.apply_delta`; its
        ``touched_components`` are exactly the component labels whose walk
        structure the events altered (labels of untouched components are
        stable across the update, by the graph layer's contract). Targeted
        invalidation:

        * group entries whose component key intersects the touched set are
          evicted, as is the whole-graph pseudo-group (any event changes the
          global transition matrix); every other group entry stays **warm**
          — its transition matrix, prepared operator (validation, memoized
          plans, splu factors) and entropy slice are untouched by
          construction. When users were appended, retained entries get their
          parent ``nodes`` remapped (item node = ``n_users + item`` shifts);
          everything local to the subgraph is index-stable.
        * BFS entries are per-query: evicted when their subgraph touches an
          invalidated component — or wholesale when users were appended,
          because their keys embed absorbing *node* ids that shifted (a
          remapped entry could never be hit again).

        ``node_entropy`` is the per-node entropy over the *new* graph
        (defaults to zeros). Callers guarantee entropies of untouched users
        are unchanged — true for the recommenders using this cache, whose
        per-user entropies depend only on the user's own (untouched)
        ratings. Returns the eviction/retention counts of this update.
        """
        if not isinstance(update, GraphUpdate):
            raise ConfigError(
                f"apply_update expects a GraphUpdate; got {type(update).__name__}"
            )
        new_graph = update.graph
        if node_entropy is None:
            node_entropy = np.zeros(new_graph.n_nodes)
        node_entropy = np.asarray(node_entropy, dtype=np.float64).ravel()
        if node_entropy.shape[0] != new_graph.n_nodes:
            raise ConfigError(
                f"node_entropy length {node_entropy.shape[0]} != n_nodes "
                f"{new_graph.n_nodes}"
            )
        touched = set(int(c) for c in update.touched_components)
        user_shift = update.n_new_users
        old_n_users = self.graph.n_users
        old_labels = self.graph.component_labels()
        counts = {"invalidated_groups": 0, "retained_groups": 0,
                  "invalidated_bfs": 0, "retained_bfs": 0}
        with self._lock:
            groups: OrderedDict[tuple, TransitionGroup] = OrderedDict()
            for key, entry in self._groups.items():
                if key == self.GLOBAL_KEY or touched.intersection(key[1:]):
                    counts["invalidated_groups"] += 1
                    continue
                if user_shift:
                    nodes = np.where(entry.nodes < old_n_users,
                                     entry.nodes, entry.nodes + user_shift)
                    entry = TransitionGroup(
                        nodes=nodes,
                        transition=entry.transition,
                        user_mask=entry.user_mask,
                        labels=entry.labels,
                        node_entropy=entry.node_entropy,
                        item_positions=entry.item_positions,
                        item_indices=entry.item_indices,
                        operator=entry.operator,
                    )
                groups[key] = entry
                counts["retained_groups"] += 1
            self._groups = groups

            bfs: OrderedDict[tuple, tuple] = OrderedDict()
            for key, (sub, operator) in self._bfs.items():
                if user_shift or touched.intersection(
                        int(c) for c in np.unique(old_labels[sub.nodes])):
                    counts["invalidated_bfs"] += 1
                    continue
                bfs[key] = (sub, operator)
                counts["retained_bfs"] += 1
            self._bfs = bfs

            self.graph = new_graph
            self.node_entropy = node_entropy
            self.invalidated_groups += counts["invalidated_groups"]
            self.retained_groups += counts["retained_groups"]
            self.invalidated_bfs += counts["invalidated_bfs"]
            self.retained_bfs += counts["retained_bfs"]
        return counts

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._groups) + len(self._bfs)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def operator_stats(self) -> dict:
        """Aggregate counters across every cached prepared operator.

        ``validations`` equals the number of operators built — the
        zero-revalidation contract: serving a cached group any number of
        times never increments it.
        """
        with self._lock:  # snapshot: worker threads may be inserting
            operators = [entry.operator for entry in self._groups.values()]
            operators += [op for _, op in self._bfs.values()]
        return {
            "operators": len(operators),
            "validations": sum(op.validations for op in operators),
            "solves": sum(op.solves for op in operators),
            "columns_solved": sum(op.columns_solved for op in operators),
            "plan_hits": sum(op.plan_hits for op in operators),
            "plan_misses": sum(op.plan_misses for op in operators),
        }

    def stats(self) -> dict:
        """Counters for serving reports (one consistent snapshot)."""
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        stats = {
            "entries": len(self),
            "group_entries": len(self._groups),
            "bfs_entries": len(self._bfs),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "invalidated_groups": self.invalidated_groups,
            "invalidated_bfs": self.invalidated_bfs,
            "retained_groups": self.retained_groups,
            "retained_bfs": self.retained_bfs,
        }
        operator = self.operator_stats()
        stats["operator_validations"] = operator["validations"]
        stats["operator_solves"] = operator["solves"]
        return stats

    def clear(self) -> None:
        with self._lock:
            self._groups.clear()
            self._bfs.clear()
            self.hits = 0
            self.misses = 0
            self.invalidated_groups = 0
            self.invalidated_bfs = 0
            self.retained_groups = 0
            self.retained_bfs = 0

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"TransitionCache(group_entries={len(self._groups)}, "
                f"bfs_entries={len(self._bfs)}, hits={self.hits}, "
                f"misses={self.misses}, max_entries={self.max_entries})"
            )

"""The undirected edge-weighted user-item graph of the paper (§3.1).

Users and items become nodes of one graph; a rating ``w(u, i)`` becomes an
undirected edge whose weight is the raw star value. Node indexing convention
(used everywhere downstream):

* user ``u``  → node ``u``                       (``0 <= u < n_users``)
* item ``i``  → node ``n_users + i``             (``0 <= i < n_items``)

:class:`UserItemGraph` caches the degree vector, the row-stochastic
transition matrix (Eq. 1) and the stationary distribution (Eq. 2).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.data.dataset import RatingDataset
from repro.exceptions import GraphError
from repro.utils.sparse import bipartite_adjacency, degree_vector, row_normalize

__all__ = ["UserItemGraph"]


class UserItemGraph:
    """Weighted bipartite user-item graph with random-walk structure.

    Parameters
    ----------
    dataset:
        Source ratings. Users or items without any rating become isolated
        nodes; they are tolerated (recommenders must handle the cold-start
        case) but excluded from walk computations by the solvers.

    Notes
    -----
    The graph is immutable; all derived matrices are computed once and
    cached.
    """

    def __init__(self, dataset: RatingDataset):
        if not isinstance(dataset, RatingDataset):
            raise GraphError(
                f"UserItemGraph requires a RatingDataset; got {type(dataset).__name__}"
            )
        self.dataset = dataset
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items
        self.adjacency: sp.csr_matrix = bipartite_adjacency(dataset.matrix)
        self.degrees: np.ndarray = degree_vector(self.adjacency)
        self._transition: sp.csr_matrix | None = None
        self._components: tuple[int, np.ndarray] | None = None
        self._item_component_sizes: np.ndarray | None = None

    # -- node indexing ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.n_users + self.n_items

    def user_node(self, user: int) -> int:
        """Graph node index of a user."""
        self.dataset._check_user(user)
        return int(user)

    def item_node(self, item: int) -> int:
        """Graph node index of an item."""
        self.dataset._check_item(item)
        return self.n_users + int(item)

    def item_nodes(self, items=None) -> np.ndarray:
        """Node indices of ``items`` (default: every item)."""
        if items is None:
            return np.arange(self.n_users, self.n_nodes, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64).ravel()
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise GraphError("item indices out of range")
        return self.n_users + items

    def is_item_node(self, node: int) -> bool:
        return self.n_users <= node < self.n_nodes

    def is_user_node(self, node: int) -> bool:
        return 0 <= node < self.n_users

    def item_of_node(self, node: int) -> int:
        """Inverse of :meth:`item_node`."""
        if not self.is_item_node(node):
            raise GraphError(f"node {node} is not an item node")
        return int(node) - self.n_users

    def user_of_node(self, node: int) -> int:
        """Inverse of :meth:`user_node`."""
        if not self.is_user_node(node):
            raise GraphError(f"node {node} is not a user node")
        return int(node)

    def neighbors(self, node: int) -> np.ndarray:
        """Adjacent node indices (sorted ascending)."""
        if not 0 <= node < self.n_nodes:
            raise GraphError(f"node {node} out of range")
        a = self.adjacency
        return a.indices[a.indptr[node]:a.indptr[node + 1]].astype(np.int64)

    # -- random-walk structure ---------------------------------------------

    def transition_matrix(self) -> sp.csr_matrix:
        """Row-stochastic single-step transition matrix ``P`` (Eq. 1).

        Isolated nodes (degree 0) keep an all-zero row; the absorbing-chain
        solvers treat them as unreachable.
        """
        if self._transition is None:
            self._transition = row_normalize(self.adjacency, allow_zero_rows=True)
        return self._transition

    def stationary_distribution(self) -> np.ndarray:
        """Stationary probabilities ``π_i = d_i / Σd`` (Eq. 2)."""
        total = self.degrees.sum()
        if total == 0:
            raise GraphError("graph has no edges; stationary distribution undefined")
        return self.degrees / total

    # -- connectivity ----------------------------------------------------------

    def _component_info(self) -> tuple[int, np.ndarray]:
        if self._components is None:
            count, labels = connected_components(self.adjacency, directed=False)
            self._components = (int(count), labels)
        return self._components

    @property
    def n_components(self) -> int:
        """Number of connected components (isolated nodes count as their own)."""
        return self._component_info()[0]

    def component_labels(self) -> np.ndarray:
        """Component id per node."""
        return self._component_info()[1]

    def is_connected(self) -> bool:
        return self.n_components == 1

    def component_of(self, node: int) -> np.ndarray:
        """All node indices in the same component as ``node``."""
        if not 0 <= node < self.n_nodes:
            raise GraphError(f"node {node} out of range")
        labels = self.component_labels()
        return np.flatnonzero(labels == labels[node]).astype(np.int64)

    def item_component_sizes(self) -> np.ndarray:
        """Number of *item* nodes per component id (cached).

        The batch walk scorer checks, per query, whether the union of the
        seed items' components fits inside the µ budget; caching the bincount
        here keeps that check O(components-touched) per request instead of
        O(n_nodes) per cohort.
        """
        if self._item_component_sizes is None:
            labels = self.component_labels()
            self._item_component_sizes = np.bincount(
                labels[self.n_users:], minlength=self.n_components
            )
        return self._item_component_sizes

    # -- serialization --------------------------------------------------------

    def to_arrays(self) -> dict:
        """Flat dict of arrays describing the graph's walk structure.

        Contains the weighted adjacency (CSR parts) and the connected-
        component labelling — the two things worth shipping with a model
        artifact so a loaded recommender starts with warm structures instead
        of re-running :func:`scipy.sparse.csgraph.connected_components`.
        Component labels are computed here if not already cached.
        """
        count, labels = self._component_info()
        return {
            "graph_data": self.adjacency.data,
            "graph_indices": self.adjacency.indices,
            "graph_indptr": self.adjacency.indptr,
            "graph_component_labels": labels,
            "graph_n_components": np.array([count], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, dataset: RatingDataset, arrays) -> "UserItemGraph":
        """Rebuild a graph from :meth:`to_arrays` output without recomputing
        the adjacency or the connected components."""
        graph = object.__new__(cls)
        graph.dataset = dataset
        graph.n_users = dataset.n_users
        graph.n_items = dataset.n_items
        try:
            n_nodes = graph.n_users + graph.n_items
            adjacency = sp.csr_matrix(
                (np.asarray(arrays["graph_data"], dtype=np.float64),
                 np.asarray(arrays["graph_indices"]),
                 np.asarray(arrays["graph_indptr"])),
                shape=(n_nodes, n_nodes),
            )
            labels = np.asarray(arrays["graph_component_labels"])
            count = int(np.asarray(arrays["graph_n_components"]).ravel()[0])
        except (KeyError, ValueError) as exc:
            raise GraphError(f"invalid graph arrays: {exc}") from None
        if labels.shape != (n_nodes,):
            raise GraphError(
                f"component labels shape {labels.shape} != ({n_nodes},)"
            )
        graph.adjacency = adjacency
        graph.degrees = degree_vector(adjacency)
        graph._transition = None
        graph._components = (count, labels)
        graph._item_component_sizes = None
        return graph

    def __repr__(self) -> str:
        return (
            f"UserItemGraph(n_users={self.n_users}, n_items={self.n_items}, "
            f"n_edges={self.adjacency.nnz // 2}, components={self.n_components})"
        )

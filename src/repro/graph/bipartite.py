"""The undirected edge-weighted user-item graph of the paper (§3.1).

Users and items become nodes of one graph; a rating ``w(u, i)`` becomes an
undirected edge whose weight is the raw star value. Node indexing convention
(used everywhere downstream):

* user ``u``  → node ``u``                       (``0 <= u < n_users``)
* item ``i``  → node ``n_users + i``             (``0 <= i < n_items``)

:class:`UserItemGraph` caches the degree vector, the row-stochastic
transition matrix (Eq. 1) and the stationary distribution (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.data.dataset import DatasetDelta, RatingDataset
from repro.exceptions import GraphError
from repro.utils.sparse import (
    bipartite_adjacency,
    degree_vector,
    row_normalize,
    safe_divide_rows,
)

__all__ = ["UserItemGraph", "GraphUpdate"]


def _node_degrees(dataset: RatingDataset, adjacency: sp.csr_matrix) -> np.ndarray:
    """Node degree vector, including any cut-edge deficit the dataset carries.

    For an ordinary dataset this is the plain adjacency row sum. For a
    halo-cut shard dataset (:meth:`RatingDataset.subset` with
    ``track_cut_degrees=True``) each node's severed rating mass is added
    back, so the degrees equal the *global* degrees of the uncut graph and
    transition rows divide by them (DESIGN.md §12): interior rows stay
    exactly stochastic while boundary rows become substochastic — a walk
    stepping across the cut is absorbed with zero further cost instead of
    having its mass redistributed over the surviving edges.
    """
    degrees = degree_vector(adjacency)
    if dataset.has_degree_deficit:
        if dataset.user_degree_deficit is not None:
            degrees[:dataset.n_users] += dataset.user_degree_deficit
        if dataset.item_degree_deficit is not None:
            degrees[dataset.n_users:] += dataset.item_degree_deficit
    return degrees


@dataclass(frozen=True)
class GraphUpdate:
    """Outcome of applying a :class:`~repro.data.dataset.DatasetDelta`.

    Produced by :meth:`UserItemGraph.apply_delta`. The graph stays
    immutable: ``graph`` is a *new* instance over the merged dataset whose
    component labels were maintained incrementally (union-find merges over
    the event edges, never a global ``connected_components`` rerun), so
    untouched components keep their label ids — the stability the targeted
    cache invalidation downstream relies on.

    Attributes
    ----------
    graph:
        The updated graph over the merged dataset.
    touched_components:
        Every component label the events touched: the (pre-merge) labels of
        all event endpoints, every label absorbed by a merge, and the fresh
        labels of new nodes. Labels of untouched components are guaranteed
        stable across the update, so a cache entry keyed by components
        disjoint from this set is still valid.
    n_new_users, n_new_items:
        Appended node counts. A non-zero user count shifts every item's
        *node* index by that amount (item node = ``n_users + item``) while
        user and item *indices* stay put — consumers holding parent node
        arrays must remap item nodes accordingly.
    components_merged:
        Number of union operations that actually fused two distinct
        components (each reduces the component count by one).
    components_created:
        Fresh singleton components minted for new nodes (before merging).
    """

    graph: "UserItemGraph"
    touched_components: frozenset
    n_new_users: int
    n_new_items: int
    components_merged: int
    components_created: int

    def affected_users(self) -> np.ndarray:
        """Merged user indices living in a touched component (sorted).

        Everything a walk can reach is confined to its component, so these
        are exactly the users whose scores may have changed — the eviction
        set for per-user result caches.
        """
        labels = self.graph.component_labels()[:self.graph.n_users]
        touched = np.fromiter(self.touched_components, dtype=labels.dtype,
                              count=len(self.touched_components))
        return np.flatnonzero(np.isin(labels, touched)).astype(np.int64)


class UserItemGraph:
    """Weighted bipartite user-item graph with random-walk structure.

    Parameters
    ----------
    dataset:
        Source ratings. Users or items without any rating become isolated
        nodes; they are tolerated (recommenders must handle the cold-start
        case) but excluded from walk computations by the solvers.

    Notes
    -----
    The graph is immutable; all derived matrices are computed once and
    cached.
    """

    def __init__(self, dataset: RatingDataset):
        if not isinstance(dataset, RatingDataset):
            raise GraphError(
                f"UserItemGraph requires a RatingDataset; got {type(dataset).__name__}"
            )
        self.dataset = dataset
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items
        self.adjacency: sp.csr_matrix = bipartite_adjacency(dataset.matrix)
        self._degrees: np.ndarray | None = _node_degrees(dataset, self.adjacency)
        self._transition: sp.csr_matrix | None = None
        self._components: tuple[int, np.ndarray] | None = None
        self._item_component_sizes: np.ndarray | None = None

    # The degree vector is an O(nnz) row reduction; an artifact load defers
    # it (see from_arrays) so a memory-mapped boot stays O(open) — the
    # first walk-structure access pays it instead.
    @property
    def degrees(self) -> np.ndarray:
        if self._degrees is None:
            self._degrees = _node_degrees(self.dataset, self.adjacency)
        return self._degrees

    # -- node indexing ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.n_users + self.n_items

    def user_node(self, user: int) -> int:
        """Graph node index of a user."""
        self.dataset._check_user(user)
        return int(user)

    def item_node(self, item: int) -> int:
        """Graph node index of an item."""
        self.dataset._check_item(item)
        return self.n_users + int(item)

    def item_nodes(self, items=None) -> np.ndarray:
        """Node indices of ``items`` (default: every item)."""
        if items is None:
            return np.arange(self.n_users, self.n_nodes, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64).ravel()
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise GraphError("item indices out of range")
        return self.n_users + items

    def is_item_node(self, node: int) -> bool:
        return self.n_users <= node < self.n_nodes

    def is_user_node(self, node: int) -> bool:
        return 0 <= node < self.n_users

    def item_of_node(self, node: int) -> int:
        """Inverse of :meth:`item_node`."""
        if not self.is_item_node(node):
            raise GraphError(f"node {node} is not an item node")
        return int(node) - self.n_users

    def user_of_node(self, node: int) -> int:
        """Inverse of :meth:`user_node`."""
        if not self.is_user_node(node):
            raise GraphError(f"node {node} is not a user node")
        return int(node)

    def neighbors(self, node: int) -> np.ndarray:
        """Adjacent node indices (sorted ascending)."""
        if not 0 <= node < self.n_nodes:
            raise GraphError(f"node {node} out of range")
        a = self.adjacency
        return a.indices[a.indptr[node]:a.indptr[node + 1]].astype(np.int64)

    # -- random-walk structure ---------------------------------------------

    @property
    def substochastic(self) -> bool:
        """Whether transition rows may sum to < 1 (degree-true halo mode).

        True exactly when the underlying dataset carries a cut-edge degree
        deficit: rows are divided by global degrees, so boundary nodes leak
        walk mass across the cut instead of renormalising it away.
        """
        return self.dataset.has_degree_deficit

    def transition_matrix(self) -> sp.csr_matrix:
        """Row-stochastic single-step transition matrix ``P`` (Eq. 1).

        Isolated nodes (degree 0) keep an all-zero row; the absorbing-chain
        solvers treat them as unreachable. On a halo-cut shard
        (:attr:`substochastic`) rows divide by global degrees, so boundary
        rows sum to less than one — the walk is absorbed at the cut.
        """
        if self._transition is None:
            if self.substochastic:
                self._transition = safe_divide_rows(self.adjacency, self.degrees)
            else:
                self._transition = row_normalize(self.adjacency, allow_zero_rows=True)
        return self._transition

    def stationary_distribution(self) -> np.ndarray:
        """Stationary probabilities ``π_i = d_i / Σd`` (Eq. 2)."""
        total = self.degrees.sum()
        if total == 0:
            raise GraphError("graph has no edges; stationary distribution undefined")
        return self.degrees / total

    # -- connectivity ----------------------------------------------------------

    def _component_info(self) -> tuple[int, np.ndarray]:
        if self._components is None:
            count, labels = connected_components(self.adjacency, directed=False)
            self._components = (int(count), labels)
        return self._components

    @property
    def n_components(self) -> int:
        """Number of connected components (isolated nodes count as their own)."""
        return self._component_info()[0]

    def component_labels(self) -> np.ndarray:
        """Component id per node."""
        return self._component_info()[1]

    def is_connected(self) -> bool:
        return self.n_components == 1

    def component_of(self, node: int) -> np.ndarray:
        """All node indices in the same component as ``node``."""
        if not 0 <= node < self.n_nodes:
            raise GraphError(f"node {node} out of range")
        labels = self.component_labels()
        return np.flatnonzero(labels == labels[node]).astype(np.int64)

    def item_component_sizes(self) -> np.ndarray:
        """Number of *item* nodes per component id (cached).

        The batch walk scorer checks, per query, whether the union of the
        seed items' components fits inside the µ budget; caching the bincount
        here keeps that check O(components-touched) per request instead of
        O(n_nodes) per cohort.
        """
        if self._item_component_sizes is None:
            labels = self.component_labels()
            self._item_component_sizes = np.bincount(
                labels[self.n_users:], minlength=self.n_components
            )
        return self._item_component_sizes

    def component_nnz(self) -> np.ndarray:
        """Number of ratings (graph edges) per component label.

        Indexed by component label (length ``labels.max() + 1``, so it stays
        valid for the non-contiguous labellings :meth:`apply_delta`
        produces). Every rating edge has its user endpoint in exactly one
        component, so summing per-user activity over user labels counts each
        edge once. This is the balance measure the shard planner
        (:class:`~repro.service.sharding.ShardPlan`) bin-packs on: walk
        solve cost scales with component nnz, not node count.
        """
        labels = self.component_labels()
        activity = self.dataset.user_activity().astype(np.float64)
        counts = np.bincount(labels[:self.n_users], weights=activity,
                             minlength=int(labels.max()) + 1)
        return counts.astype(np.int64)

    # -- incremental updates --------------------------------------------------

    def apply_delta(self, delta: DatasetDelta) -> GraphUpdate:
        """Build the graph over ``delta.dataset``, reusing this graph's labels.

        The adjacency is reassembled from the merged rating matrix (a pure
        O(nnz) sparse block copy — bit-identical to a from-scratch build),
        but the connected-component labelling is *maintained*, not
        recomputed: new nodes start as fresh singleton components and each
        event edge union-finds its two endpoints' components, merging each
        set onto its smallest member label. Labels of components no event
        touches are untouched — the stability contract
        :class:`GraphUpdate` documents and the cache layer keys on. Label
        ids therefore stay meaningful but become non-contiguous over time;
        nothing downstream assumes contiguity, and a full refit (engine
        consolidation) compacts them.
        """
        if not isinstance(delta, DatasetDelta):
            raise GraphError(
                f"apply_delta expects a DatasetDelta; got {type(delta).__name__}"
            )
        if (delta.base_n_users, delta.base_n_items, delta.base_n_ratings) != (
                self.n_users, self.n_items, self.dataset.n_ratings):
            raise GraphError(
                f"delta base ({delta.base_n_users} users, {delta.base_n_items} "
                f"items, {delta.base_n_ratings} ratings) does not match this "
                f"graph ({self.n_users} users, {self.n_items} items, "
                f"{self.dataset.n_ratings} ratings)"
            )
        merged = delta.dataset
        old_count, old_labels = self._component_info()
        n_new_users = merged.n_users - self.n_users
        n_new_items = merged.n_items - self.n_items
        n_users_new = merged.n_users
        n_nodes_new = n_users_new + merged.n_items

        labels = np.empty(n_nodes_new, dtype=np.int64)
        labels[:self.n_users] = old_labels[:self.n_users]
        labels[n_users_new:n_users_new + self.n_items] = old_labels[self.n_users:]
        next_label = int(old_labels.max()) + 1 if old_labels.size else 0
        labels[self.n_users:n_users_new] = np.arange(
            next_label, next_label + n_new_users
        )
        labels[n_users_new + self.n_items:] = np.arange(
            next_label + n_new_users, next_label + n_new_users + n_new_items
        )

        # Union-find over the event edges, on component labels (far fewer
        # elements than nodes). Pre-merge endpoint labels are all touched:
        # even a pure value overwrite changes that component's transition
        # weights.
        parent: dict[int, int] = {}

        def find(label: int) -> int:
            root = label
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(label, label) != label:  # path compression
                parent[label], label = root, parent[label]
            return root

        touched: set[int] = set()
        merges = 0
        for u, i in zip(delta.users, delta.items):
            lu = int(labels[u])
            li = int(labels[n_users_new + int(i)])
            touched.add(lu)
            touched.add(li)
            ru, ri = find(lu), find(li)
            if ru != ri:
                parent[max(ru, ri)] = min(ru, ri)
                merges += 1
        if merges:
            # Relabel every member of a merged set onto its root (the
            # smallest member label — deterministic and id-stable when one
            # old component simply absorbs fresh singletons).
            changed = {label: root for label in list(parent)
                       if (root := find(label)) != label}
            touched.update(changed)
            touched.update(changed.values())
            lookup = np.arange(int(labels.max()) + 1, dtype=np.int64)
            for label, root in changed.items():
                lookup[label] = root
            labels = lookup[labels]

        graph = object.__new__(UserItemGraph)
        graph.dataset = merged
        graph.n_users = merged.n_users
        graph.n_items = merged.n_items
        graph.adjacency = bipartite_adjacency(merged.matrix)
        graph._degrees = _node_degrees(merged, graph.adjacency)
        graph._transition = None
        graph._components = (
            old_count + n_new_users + n_new_items - merges, labels
        )
        graph._item_component_sizes = None
        return GraphUpdate(
            graph=graph,
            touched_components=frozenset(touched),
            n_new_users=n_new_users,
            n_new_items=n_new_items,
            components_merged=merges,
            components_created=n_new_users + n_new_items,
        )

    # -- serialization --------------------------------------------------------

    def to_arrays(self) -> dict:
        """Flat dict of arrays describing the graph's walk structure.

        Contains the weighted adjacency (CSR parts) and the connected-
        component labelling — the two things worth shipping with a model
        artifact so a loaded recommender starts with warm structures instead
        of re-running :func:`scipy.sparse.csgraph.connected_components`.
        Component labels are computed here if not already cached.
        """
        count, labels = self._component_info()
        return {
            "graph_data": self.adjacency.data,
            "graph_indices": self.adjacency.indices,
            "graph_indptr": self.adjacency.indptr,
            "graph_component_labels": labels,
            "graph_n_components": np.array([count], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, dataset: RatingDataset, arrays) -> "UserItemGraph":
        """Rebuild a graph from :meth:`to_arrays` output without recomputing
        the adjacency or the connected components."""
        graph = object.__new__(cls)
        graph.dataset = dataset
        graph.n_users = dataset.n_users
        graph.n_items = dataset.n_items
        try:
            n_nodes = graph.n_users + graph.n_items
            adjacency = sp.csr_matrix(
                (np.asarray(arrays["graph_data"], dtype=np.float64),
                 np.asarray(arrays["graph_indices"]),
                 np.asarray(arrays["graph_indptr"])),
                shape=(n_nodes, n_nodes),
            )
            labels = np.asarray(arrays["graph_component_labels"])
            count = int(np.asarray(arrays["graph_n_components"]).ravel()[0])
        except (KeyError, ValueError) as exc:
            raise GraphError(f"invalid graph arrays: {exc}") from None
        if labels.shape != (n_nodes,):
            raise GraphError(
                f"component labels shape {labels.shape} != ({n_nodes},)"
            )
        graph.adjacency = adjacency
        graph._degrees = None  # deferred: see the degrees property
        graph._transition = None
        graph._components = (count, labels)
        graph._item_component_sizes = None
        return graph

    def __repr__(self) -> str:
        return (
            f"UserItemGraph(n_users={self.n_users}, n_items={self.n_items}, "
            f"n_edges={self.adjacency.nnz // 2}, components={self.n_components})"
        )

"""Related-work proximity measures (paper §2, §3.2).

The paper positions Hitting/Absorbing Time against other random-walk
similarities — random walk with restart (personalized PageRank), commute
time, and the Katz index — noting that those either ignore popularity or are
dominated by the stationary distribution and hence recommend head items.
This module implements them from scratch; the PPR/DPPR baselines of §5.1.1
and the extended-baseline ablations build on these functions.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConvergenceError, GraphError
from repro.utils.sparse import degree_vector
from repro.utils.validation import (
    as_index_array,
    check_fraction,
    check_positive_int,
)

__all__ = ["personalized_pagerank", "personalized_pagerank_multi",
           "commute_times", "katz_index"]


def personalized_pagerank(transition: sp.spmatrix, restart_nodes: np.ndarray,
                          damping: float = 0.5, tol: float = 1e-10,
                          max_iter: int = 1000,
                          restart_weights: np.ndarray | None = None) -> np.ndarray:
    """Personalized PageRank by power iteration.

    Solves ``π = (1 − λ)·r + λ·Pᵀπ`` where ``r`` is the restart distribution
    over ``restart_nodes`` and ``λ`` is the damping factor (the paper tunes
    λ = 0.5). Dangling rows (isolated nodes) teleport back to ``r``.

    Returns the stationary PPR vector over all nodes (sums to 1).
    """
    p = sp.csr_matrix(transition, dtype=np.float64)
    n = p.shape[0]
    if p.shape[0] != p.shape[1]:
        raise GraphError(f"transition matrix must be square; got {p.shape}")
    damping = check_fraction(damping, "damping", inclusive_low=True, inclusive_high=False)
    restart_nodes = as_index_array(restart_nodes, n, "restart_nodes")
    if restart_nodes.size == 0:
        raise GraphError("restart set is empty")

    restart = np.zeros(n)
    if restart_weights is None:
        restart[restart_nodes] = 1.0 / restart_nodes.size
    else:
        w = np.asarray(restart_weights, dtype=np.float64).ravel()
        if w.shape[0] != restart_nodes.size:
            raise GraphError("restart_weights length mismatch")
        if np.any(w < 0) or w.sum() <= 0:
            raise GraphError("restart_weights must be non-negative, not all zero")
        restart[restart_nodes] = w / w.sum()

    dangling = np.asarray(p.sum(axis=1)).ravel() < 1e-12
    pt = p.T.tocsr()
    pi = restart.copy()
    for _ in range(check_positive_int(max_iter, "max_iter")):
        dangling_mass = pi[dangling].sum() if dangling.any() else 0.0
        new = (1.0 - damping) * restart + damping * (pt @ pi + dangling_mass * restart)
        delta = np.abs(new - pi).sum()
        pi = new
        if delta < tol:
            return pi
    raise ConvergenceError(
        f"personalized PageRank did not converge in {max_iter} iterations "
        f"(residual {delta:.2e})"
    )


def personalized_pagerank_multi(transition: sp.spmatrix,
                                restart_sets: list[np.ndarray],
                                damping: float = 0.5, tol: float = 1e-10,
                                max_iter: int = 1000) -> np.ndarray:
    """Personalized PageRank for many restart sets in one power iteration.

    The batch-serving counterpart of :func:`personalized_pagerank`: every
    query's PPR vector is a column of a dense ``(n_nodes, n_sets)`` matrix
    and each power step is a single sparse ``Pᵀ`` × dense product shared by
    the whole cohort. Each column is frozen the first time its own residual
    drops below ``tol``, so column ``k`` is identical to running the
    single-set iteration on ``restart_sets[k]`` alone — batch and per-user
    rankings never diverge.

    Returns the ``(n_nodes, n_sets)`` PPR matrix (each column sums to 1).
    """
    p = sp.csr_matrix(transition, dtype=np.float64)
    n = p.shape[0]
    if p.shape[0] != p.shape[1]:
        raise GraphError(f"transition matrix must be square; got {p.shape}")
    damping = check_fraction(damping, "damping", inclusive_low=True, inclusive_high=False)
    n_sets = len(restart_sets)
    if n_sets == 0:
        return np.zeros((n, 0))
    sets = [as_index_array(nodes, n, "restart_nodes") for nodes in restart_sets]
    if any(nodes.size == 0 for nodes in sets):
        raise GraphError("restart set is empty")

    restart = np.zeros((n, n_sets))
    for column, nodes in enumerate(sets):
        restart[nodes, column] = 1.0 / nodes.size

    dangling = np.asarray(p.sum(axis=1)).ravel() < 1e-12
    pt = p.T.tocsr()
    pi = restart.copy()
    active = np.ones(n_sets, dtype=bool)
    delta = np.full(n_sets, np.inf)
    for _ in range(check_positive_int(max_iter, "max_iter")):
        columns = np.flatnonzero(active)
        current = pi[:, columns]
        restart_cols = restart[:, columns]
        if dangling.any():
            # Column-wise 1-D sums keep each column's accumulation order
            # identical to the single-query iteration, whatever the batch
            # size — a 2-D axis-0 reduction would not guarantee that.
            trapped = current[dangling]
            dangling_mass = np.array([
                np.ascontiguousarray(trapped[:, j]).sum()
                for j in range(trapped.shape[1])
            ])
        else:
            dangling_mass = 0.0
        new = (1.0 - damping) * restart_cols + damping * (
            pt @ current + dangling_mass * restart_cols
        )
        residual = np.abs(new - current)
        step_delta = np.array([
            np.ascontiguousarray(residual[:, j]).sum()
            for j in range(residual.shape[1])
        ])
        pi[:, columns] = new
        delta[columns] = step_delta
        active[columns] = step_delta >= tol
        if not active.any():
            return pi
    raise ConvergenceError(
        f"personalized PageRank did not converge in {max_iter} iterations "
        f"(worst residual {delta.max():.2e} over {int(active.sum())} queries)"
    )


def commute_times(adjacency: sp.spmatrix, node: int,
                  max_nodes: int = 5000) -> np.ndarray:
    """Commute times ``C(node, j) = H(node|j) + H(j|node)`` for every j.

    Computed from the Moore–Penrose pseudoinverse of the graph Laplacian:
    ``C(i, j) = vol(G) · (L⁺_ii + L⁺_jj − 2 L⁺_ij)``. The pseudoinverse is a
    dense O(n³) computation, so graphs larger than ``max_nodes`` are
    rejected — this measure is provided as a related-work baseline for
    small/medium graphs, exactly the regime the paper critiques it in.

    Requires a connected graph (commute time is infinite across components).
    """
    a = sp.csr_matrix(adjacency, dtype=np.float64)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise GraphError(f"adjacency must be square; got {a.shape}")
    if n > max_nodes:
        raise GraphError(
            f"commute_times is dense O(n^3); graph has {n} nodes > max_nodes={max_nodes}"
        )
    if not 0 <= node < n:
        raise GraphError(f"node {node} out of range")
    if (np.abs(a - a.T) > 1e-12).nnz:
        raise GraphError("adjacency must be symmetric")
    from scipy.sparse.csgraph import connected_components

    n_comp, _ = connected_components(a, directed=False)
    if n_comp != 1:
        raise GraphError("commute time requires a connected graph")

    degrees = degree_vector(a)
    laplacian = np.diag(degrees) - a.toarray()
    lplus = np.linalg.pinv(laplacian)
    volume = degrees.sum()
    diag = np.diag(lplus)
    return volume * (diag[node] + diag - 2.0 * lplus[node])


def katz_index(adjacency: sp.spmatrix, node: int, beta: float = 0.005,
               max_length: int = 20) -> np.ndarray:
    """Truncated Katz index ``Σ_{l=1..L} βˡ (Aˡ)_{node,:}``.

    Counts paths of every length from ``node``, geometrically damped by
    ``β``. β must keep the series contracting (β·‖A‖₁ < 1 is checked
    loosely via the max degree); the truncation at ``max_length`` matches how
    the measure is used in the graph-recommendation literature.
    """
    a = sp.csr_matrix(adjacency, dtype=np.float64)
    n = a.shape[0]
    if not 0 <= node < n:
        raise GraphError(f"node {node} out of range")
    if beta <= 0:
        raise GraphError(f"beta must be > 0; got {beta}")
    max_degree = degree_vector(a).max() if a.nnz else 0.0
    if beta * max_degree >= 1.0:
        raise GraphError(
            f"beta={beta} too large for max weighted degree {max_degree:.1f}; "
            "the Katz series would diverge"
        )
    check_positive_int(max_length, "max_length")

    scores = np.zeros(n)
    walk = np.zeros(n)
    walk[node] = 1.0
    factor = 1.0
    for _ in range(max_length):
        walk = a.T @ walk
        factor *= beta
        scores += factor * walk
    return scores

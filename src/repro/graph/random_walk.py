"""Random-walk primitives on weighted graphs (paper §3.2).

Free functions over sparse adjacency matrices: the transition matrix
(Eq. 1), the stationary distribution (Eq. 2), the time-reversibility identity
``π_i p_ij = π_j p_ji`` the Hitting Time derivation rests on (§3.3), and a
Monte-Carlo walker used by the tests to validate the analytic solvers against
simulation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.utils.sparse import degree_vector, row_normalize
from repro.utils.validation import check_non_negative_int, check_positive_int, check_random_state

__all__ = [
    "transition_matrix",
    "stationary_distribution",
    "reversibility_gap",
    "simulate_walk",
    "monte_carlo_absorbing_time",
]


def transition_matrix(adjacency: sp.spmatrix, *, allow_isolated: bool = False) -> sp.csr_matrix:
    """Row-stochastic ``P`` with ``p_ij = a_ij / d_i`` (Eq. 1)."""
    return row_normalize(adjacency, allow_zero_rows=allow_isolated)


def stationary_distribution(adjacency: sp.spmatrix) -> np.ndarray:
    """``π_i = d_i / Σ_jk a_jk`` (Eq. 2) for an undirected weighted graph."""
    degrees = degree_vector(adjacency)
    total = degrees.sum()
    if total == 0:
        raise GraphError("graph has no edges; stationary distribution undefined")
    return degrees / total


def reversibility_gap(adjacency: sp.spmatrix) -> float:
    """Max absolute violation of ``π_i p_ij = π_j p_ji`` over all edges.

    Zero (up to float error) for any symmetric adjacency — the property the
    paper's Eq. 3/4 popularity analysis relies on. Useful as a diagnostic for
    accidentally asymmetric inputs.
    """
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    pi = stationary_distribution(adjacency)
    p = transition_matrix(adjacency, allow_isolated=True)
    flow = sp.diags(pi) @ p
    gap = flow - flow.T
    return float(np.abs(gap.data).max()) if gap.nnz else 0.0


def _row_cumulative(p: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    """Per-row cumulative edge weights of a CSR matrix, computed once.

    Returns ``(cumulative, totals)``: ``cumulative[lo:hi]`` is the running
    sum of row ``i``'s weights (``lo, hi = indptr[i], indptr[i + 1]``) and
    ``totals[i]`` its row sum. One global cumsum with the preceding rows'
    mass subtracted at sample time replaces the per-step weight
    renormalisation the walkers used to pay — sampling a transition becomes
    a single ``searchsorted`` into the precomputed row slice.
    """
    cumulative = np.cumsum(p.data)
    starts, ends = p.indptr[:-1], p.indptr[1:]
    base = np.zeros(starts.size)
    nonzero_start = starts > 0
    base[nonzero_start] = cumulative[starts[nonzero_start] - 1]
    totals = np.zeros(starts.size)
    occupied = ends > starts
    totals[occupied] = cumulative[ends[occupied] - 1] - base[occupied]
    return cumulative, totals


def _sample_step(p: sp.csr_matrix, cumulative: np.ndarray, totals: np.ndarray,
                 node: int, rng) -> int:
    """One transition from ``node`` via the precomputed cumulative rows."""
    lo, hi = p.indptr[node], p.indptr[node + 1]
    target = cumulative[lo - 1] if lo > 0 else 0.0
    target += rng.random() * totals[node]
    offset = int(np.searchsorted(cumulative[lo:hi], target, side="right"))
    return int(p.indices[lo + min(offset, hi - lo - 1)])


def simulate_walk(adjacency: sp.spmatrix, start: int, n_steps: int, rng=None) -> np.ndarray:
    """Simulate a single random-walk trajectory of ``n_steps`` transitions.

    Returns the visited node sequence including the start (length
    ``n_steps + 1``). Raises :class:`GraphError` if the walk reaches an
    isolated node (undefined transition).
    """
    rng = check_random_state(rng)
    n_steps = check_non_negative_int(n_steps, "n_steps")
    p = sp.csr_matrix(adjacency, dtype=np.float64)
    n = p.shape[0]
    if not 0 <= start < n:
        raise GraphError(f"start node {start} out of range")
    cumulative, totals = _row_cumulative(p)
    path = np.empty(n_steps + 1, dtype=np.int64)
    path[0] = start
    node = start
    for step in range(1, n_steps + 1):
        if totals[node] == 0.0:
            raise GraphError(f"walk reached isolated node {node}")
        node = _sample_step(p, cumulative, totals, node, rng)
        path[step] = node
    return path


def monte_carlo_absorbing_time(adjacency: sp.spmatrix, start: int,
                               absorbing: set[int] | np.ndarray,
                               n_walks: int = 500, max_steps: int = 10_000,
                               rng=None) -> float:
    """Estimate the absorbing time ``AT(S|start)`` by simulation.

    Walks that fail to reach ``S`` within ``max_steps`` contribute
    ``max_steps`` (a lower bound), so the estimate is slightly biased low on
    slow-mixing graphs; the tests use generous ``max_steps``. Intended for
    validating the analytic solvers, not for production use.
    """
    rng = check_random_state(rng)
    n_walks = check_positive_int(n_walks, "n_walks")
    absorbing = set(int(a) for a in np.asarray(list(absorbing)).ravel())
    if not absorbing:
        raise GraphError("absorbing set is empty")
    if start in absorbing:
        return 0.0
    p = sp.csr_matrix(adjacency, dtype=np.float64)
    cumulative, totals = _row_cumulative(p)
    total = 0.0
    for _ in range(n_walks):
        node = start
        for step in range(1, max_steps + 1):
            if totals[node] == 0.0:
                step = max_steps
                break
            node = _sample_step(p, cumulative, totals, node, rng)
            if node in absorbing:
                break
        total += step
    return total / n_walks

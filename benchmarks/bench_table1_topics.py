"""Table 1 — coherent topics from the rating-data LDA (paper §4.2.3).

The paper prints the top-5 movies of two topics and notes they align with
genres (Children's/Animation vs Action). The synthetic ground truth lets the
bench *measure* that alignment: per-topic genre purity of the top items. The
faithful Algorithm 2 Gibbs sampler is the benchmarked engine.
"""

from benchmarks.conftest import bench_scale, strict_assertions
from repro.experiments import ExperimentConfig, run_table1


def test_table1_topic_coherence(benchmark, report):
    # The token-level Gibbs sampler is the cost driver; run at a reduced
    # scale so the bench stays in seconds (coherence is scale-insensitive).
    config = ExperimentConfig(scale=min(bench_scale(), 0.6))
    result = benchmark.pedantic(
        run_table1, args=(config,), kwargs={"engine": "gibbs", "n_iterations": 40},
        rounds=1, iterations=1,
    )

    best, second = result.best_two()
    rows = best.rows() + second.rows()
    report("Table 1 - top-5 items of the two purest LDA topics (Gibbs)",
           rows=rows, filename="table1_topics.csv")
    report("Table 1 - per-topic purity",
           rows=[{"topic": t.topic, "purity": round(t.purity, 2)}
                 for t in result.topics],
           filename="table1_purity.csv")

    # Paper shape: the printed topics are genre-coherent. With 8 genres,
    # random top-5 purity would be ~0.31; demand far better for the best two.
    if strict_assertions():
        assert best.purity >= 0.8
        assert second.purity >= 0.6
        assert result.mean_purity >= 0.5

"""Figure 1 — long-tail shape of both catalogues (paper §1, §5.1.2).

Paper shape: the niche market curve — a small head carries most ratings;
§5.1.2 quantifies ≈66% (MovieLens) / ≈73% (Douban) of items jointly carrying
just 20% of ratings. The bench regenerates the popularity curves and the
Pareto statistics and asserts the 20%-tail spans over half of each catalogue.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import run_fig1


def test_fig1_longtail_shape(benchmark, config, report):
    results = benchmark.pedantic(run_fig1, args=(config,), rounds=1, iterations=1)

    rows = [r.row() for r in results]
    report("Figure 1 - catalogue long-tail statistics", rows=rows,
           filename="fig1_stats.csv")
    curve_rows = [row for r in results for row in r.curve_rows(25)]
    report("Figure 1 - popularity-vs-rank curve (downsampled)", rows=curve_rows,
           filename="fig1_curves.csv")

    by_name = {r.dataset: r for r in results}
    for result in results:
        stats = result.stats
        assert stats.popularity_curve[0] == stats.popularity_curve.max()
        # Pareto shape: top 20% of items carry far more than 20% of ratings.
        assert stats.top20_share > 0.5
    if strict_assertions():
        # Paper: 66% (ML) / 73% (Douban) of items carry 20% of ratings.
        assert by_name["movielens"].stats.tail_fraction_of_catalog > 0.55
        assert by_name["douban"].stats.tail_fraction_of_catalog > 0.55

"""Ablation — the paper's §3.2 critique of related walk proximities.

§3.2 argues why existing random-walk similarities cannot do long-tail
recommendation: random walk with restart and commute time are "dominated by
the stationary distribution" (they rank like popularity), and Katz counts
paths without discounting item degree. The bench runs RWR, CommuteTime and
Katz through the same top-N harness as the paper's methods and checks that
their lists are far more popular than Hitting Time's — the empirical basis
for the paper's choice of the single item→user leg.
"""

import numpy as np

from benchmarks.conftest import strict_assertions
from repro.baselines.walk_similarity import (
    CommuteTimeRecommender,
    KatzRecommender,
    RandomWalkWithRestartRecommender,
)
from repro.core import HittingTimeRecommender
from repro.data.splits import sample_test_users
from repro.eval.harness import TopNExperiment
from repro.experiments.suite import make_data


def _run(config):
    data = make_data("movielens", config)
    train = data.dataset
    users = sample_test_users(train, n_users=100, seed=config.eval_seed + 2)
    experiment = TopNExperiment(train, users, k=10, ontology=data.ontology)
    roster = [
        HittingTimeRecommender(n_iterations=config.n_iterations),
        RandomWalkWithRestartRecommender(damping=0.8),
        CommuteTimeRecommender(),
        KatzRecommender(),
    ]
    reports = {}
    for algorithm in roster:
        algorithm.fit(train)
        reports[algorithm.name] = experiment.run(algorithm)
    return reports


def test_ablation_related_walk_proximities(benchmark, config, report):
    reports = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)

    rows = [
        {
            "algorithm": name,
            "mean_popularity": round(r.mean_popularity, 1),
            "tail_share": round(r.tail_share, 3),
            "diversity": round(r.diversity, 3),
            "similarity": round(r.similarity, 3),
        }
        for name, r in reports.items()
    ]
    report("Ablation - §3.2: related walk proximities vs Hitting Time",
           rows=rows, filename="ablation_related_walks.csv")

    if strict_assertions():
        ht = reports["HT"]
        # The §3.2 claim: RWR and commute time rank like popularity ...
        assert reports["RWR"].mean_popularity > 5 * ht.mean_popularity
        assert reports["CommuteTime"].mean_popularity > 5 * ht.mean_popularity
        # ... and Katz, degree-driven, also skews to the head.
        assert reports["Katz"].mean_popularity > 2 * ht.mean_popularity
        # HT is the only one living in the long tail.
        assert ht.tail_share > max(
            reports[n].tail_share for n in ("RWR", "CommuteTime", "Katz")
        )

"""Figure 2 — the paper's worked Hitting Time example (§3.3).

Paper numbers: H(U5|M4)=17.7 < H(U5|M1)=19.6 < H(U5|M5)=20.2 < H(U5|M6)=20.3.
The bench reproduces them to two decimals with the truncated solver and
asserts the published ranking (niche M4 first) with the exact solver too.
"""

import pytest

from repro.experiments import run_fig2


def test_fig2_worked_example(benchmark, report):
    results = benchmark.pedantic(run_fig2, rounds=3, iterations=1)

    report("Figure 2 - hitting times to U5 (paper vs computed)",
           rows=[r.row() for r in results], filename="fig2_hitting_times.csv")

    # Golden values: truncated solver matches the published numbers.
    for r in results:
        assert r.truncated_value == pytest.approx(r.paper_value, abs=0.05), r.movie
    # Ranking (by both solvers): M4 < M1 < M5 < M6.
    assert [r.movie for r in results] == ["M4", "M1", "M5", "M6"]
    exact_sorted = sorted(results, key=lambda r: r.exact_value)
    assert [r.movie for r in exact_sorted] == ["M4", "M1", "M5", "M6"]

"""Table 3 — ontology similarity of recommendations, Eq. 19 (paper §5.2.4).

Paper shape (Douban): AC2 0.48 is the best taste match; within the graph
family AC2 > AC1 > AT > HT; DPPR is worst (0.36) — it finds tail items but
not the *right* tail items; the latent models score high (0.43–0.45) because
head items match everyone a little.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import run_table3


def test_table3_similarity(benchmark, config, report):
    result = benchmark.pedantic(
        run_table3, args=(config,), kwargs={"n_users": 200},
        rounds=1, iterations=1,
    )

    report("Table 3 - Eq.19 similarity on douban-like data (measured vs paper)",
           rows=result.rows(), filename="table3_similarity.csv")

    if strict_assertions():
        sim = result.similarity
        # Entropy weighting buys taste match: AC2 tops the graph family.
        assert sim["AC2"] >= max(sim[n] for n in ("AC1", "AT", "HT")) - 0.01
        # The paper's DPPR critique: long-tail but off-taste.
        assert sim["AC2"] > sim["DPPR"]
        # AC2 is competitive with the best latent model overall.
        assert sim["AC2"] >= max(sim["PureSVD"], sim["LDA"]) - 0.05

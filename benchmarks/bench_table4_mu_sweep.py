"""Table 4 — impact of the BFS budget µ on AC2 (paper §5.2.5).

Paper shape (Douban, µ = 3000 → full graph): recommended-item popularity
decreases as µ grows (deeper tail enters the candidate pool); per-user time
cost increases with the budget; similarity and diversity move little once
µ is past a moderate fraction of the catalogue — i.e. a small subgraph
preserves quality at a fraction of the cost, the paper's scalability
argument.

One deviation from the paper's 12.7 s full-graph column: the final (full
catalogue) row no longer towers over the sweep, because when µ stops
truncating, the serving layer answers the query from the shared
per-component subgraph instead of re-running a per-user BFS over the whole
graph (see DESIGN.md §3). The cost-growth assertion therefore covers the
BFS-truncating budgets, where Algorithm 1's per-user scan is genuinely what
runs.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import run_table4


def test_table4_mu_sweep(benchmark, config, report):
    result = benchmark.pedantic(
        run_table4, args=(config,),
        kwargs={"mu_fractions": (0.05, 0.1, 0.2, 0.4), "n_users": 100},
        rounds=1, iterations=1,
    )

    rows = result.rows()
    report(
        f"Table 4 - AC2 vs subgraph budget mu on douban-like data "
        f"(catalogue {result.n_items} items; paper sweeps 3000..89908)",
        rows=rows, filename="table4_mu_sweep.csv",
    )

    if strict_assertions():
        mus = [row["mu"] for row in rows]
        assert mus == sorted(mus)
        # Popularity decreases from the smallest budget to the full graph.
        assert rows[-1]["popularity"] < rows[0]["popularity"]
        # Cost grows with the budget while the BFS truncates (paper:
        # 0.17 s at 3000 -> 12.7 s at full; the full-graph row itself now
        # rides the shared-subgraph serving path, see module docstring).
        assert rows[-2]["sec_per_user"] > 1.2 * rows[0]["sec_per_user"]
        # Quality saturates: similarity at a moderate budget is within 20%
        # of the full-graph value (the paper's "performance does not change
        # much when mu is larger than 6k").
        assert rows[-2]["similarity"] >= 0.8 * rows[-1]["similarity"]

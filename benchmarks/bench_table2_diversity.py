"""Table 2 — aggregate recommendation diversity, Eq. 17 (paper §5.2.3).

Paper shape (both datasets): the graph family diversifies aggregate
recommendations dramatically better than the latent-factor models; LDA is
worst by an order of magnitude (0.035 / 0.025); PureSVD sits in between;
diversity is lower on the denser MovieLens for every algorithm.

Known deviation (EXPERIMENTS.md): in the paper the item-based variants edge
out user-based HT; at laptop scale HT/DPPR diversify most within the graph
family. The family-level ordering (graph > PureSVD > LDA) is asserted.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import PAPER_DIVERSITY, run_table2

GRAPH = ("AC2", "AC1", "AT", "HT", "DPPR")


def test_table2_diversity(benchmark, config, report):
    result = benchmark.pedantic(
        run_table2, args=(config,), kwargs={"n_users": 200},
        rounds=1, iterations=1,
    )

    rows = result.rows()
    for row in rows:
        paper_row = {"dataset": f'{row["dataset"]} (paper)'}
        paper_row.update(PAPER_DIVERSITY[row["dataset"]])
        rows_with_paper = [row, paper_row]
        report(f"Table 2 - diversity on {row['dataset']} (measured vs paper)",
               rows=rows_with_paper)
    report("Table 2 - diversity (measured)", rows=rows,
           filename="table2_diversity.csv")

    if strict_assertions():
        for dataset, values in result.diversity.items():
            best_graph = max(values[n] for n in GRAPH)
            # Graph family diversifies more than both latent models.
            assert best_graph > values["PureSVD"], dataset
            # LDA has the worst diversity of all algorithms (paper Table 2).
            assert values["LDA"] == min(values.values()), dataset
        # On the sparse catalogue LDA's diversity is near-degenerate
        # (measured 0.03 vs the paper's 0.035).
        assert result.diversity["douban"]["LDA"] < 0.1

"""Micro-benchmarks of the core computational kernels.

These are classic pytest-benchmark timings (multiple rounds) of the
operations that dominate the experiment suite: the truncated absorbing
solver, the exact sparse solve, BFS subgraph extraction, personalized
PageRank, and one CVB0 LDA sweep-equivalent. Useful for catching
performance regressions in the substrate.
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.data.synthetic import generate_dataset, movielens_like
from repro.graph.absorbing import exact_absorbing_values, truncated_absorbing_values
from repro.graph.bipartite import UserItemGraph
from repro.graph.proximity import personalized_pagerank
from repro.graph.subgraph import bfs_subgraph
from repro.topics.lda_cvb0 import fit_lda_cvb0


@pytest.fixture(scope="module")
def workload():
    data = generate_dataset(movielens_like(bench_scale()), seed=7)
    graph = UserItemGraph(data.dataset)
    transition = graph.transition_matrix()
    user = int(np.argmax(data.dataset.user_activity()))
    absorbing = graph.item_nodes(data.dataset.items_of_user(user))
    return data, graph, transition, user, absorbing


def test_truncated_absorbing_solver(benchmark, workload):
    _, _, transition, _, absorbing = workload
    values = benchmark(truncated_absorbing_values, transition, absorbing, 15)
    assert np.isfinite(values).any()


def test_exact_absorbing_solver(benchmark, workload):
    _, _, transition, _, absorbing = workload
    values = benchmark(exact_absorbing_values, transition, absorbing)
    assert np.isfinite(values).any()


def test_bfs_subgraph_extraction(benchmark, workload):
    data, graph, _, user, _ = workload
    seeds = data.dataset.items_of_user(user)
    sub = benchmark(bfs_subgraph, graph, seeds, 200)
    assert sub.n_nodes > 0


def test_personalized_pagerank(benchmark, workload):
    _, graph, transition, _, absorbing = workload
    pi = benchmark(personalized_pagerank, transition, absorbing, 0.5)
    assert pi.sum() == pytest.approx(1.0)


def test_lda_cvb0_fit(benchmark, workload):
    data = workload[0]
    model = benchmark.pedantic(
        fit_lda_cvb0, args=(data.dataset, 8),
        kwargs={"n_iterations": 20, "seed": 0}, rounds=1, iterations=1,
    )
    assert model.n_topics == 8

"""Ablation — the Eq. 9 constant C (user → item jump cost).

The paper calls C "a tuning parameter, which corresponds to the mean cost of
jumping from V2 to V1" and does not sweep it. This ablation does: AC2's
popularity / similarity / diversity as C varies from far below to far above
the mean user entropy, validating the library's ``"mean-entropy"`` default.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import run_jump_cost_ablation


def test_ablation_jump_cost(benchmark, config, report):
    rows = benchmark.pedantic(
        run_jump_cost_ablation, args=(config,),
        kwargs={"jump_costs": ("mean-entropy", 0.25, 1.0, 4.0), "n_users": 60},
        rounds=1, iterations=1,
    )

    report("Ablation - AC2 metrics vs Eq. 9 jump cost C", rows=rows,
           filename="ablation_jump_cost.csv")

    by_cost = {row["jump_cost_C"]: row for row in rows}
    if strict_assertions():
        # The default must not be dominated: its similarity is within 10%
        # of the best fixed C in the sweep.
        best_similarity = max(row["similarity"] for row in rows)
        assert by_cost["mean-entropy"]["similarity"] >= 0.9 * best_similarity
        # All settings still recommend the long tail (popularity far below
        # the latent-model regime measured in Figure 6).
        assert all(row["popularity"] < 40 for row in rows)

"""Batch serving throughput — per-user loop vs. vectorised cohort scoring.

The paper's Table 5 shows the walk recommenders are cheap enough to serve
*one* user online; this bench measures what the batch layer adds on top for
cohort traffic. Scoring a 64-user cohort one user at a time repeats the
same sparse setup (µ-subgraph extraction, row normalisation, per-sweep
matvec) 64 times; ``score_users`` builds each shared subgraph once and
advances all walk vectors together as multi-RHS sparse × dense products.

Since the :class:`~repro.graph.cache.TransitionCache` landed, even a
stateful per-user loop shares the sparse setup across calls, so the loop is
measured two ways: **cold** (scoring-layer cache cleared before every call —
the stateless deployment the paper's Table 5 models) and **warm** (cache
kept — what a naive loop over a fitted model does today).

Asserted shape (at default scale): batch ``score_users`` is at least 3×
faster than the cold per-user loop for the walk recommender, and all paths
produce identical rankings. The precomputed :class:`~repro.service.TopKStore`
then answers individual requests in microseconds from its int32 cache.
"""

import numpy as np

from benchmarks.conftest import strict_assertions
from repro import AbsorbingTimeRecommender, PureSVDRecommender, TopKStore
from repro.experiments import make_data
from repro.utils.timer import Timer

COHORT = 64


def _clear_scoring_cache(recommender):
    cache = getattr(recommender, "transition_cache", None)
    if cache is not None:
        cache.clear()


def _measure(recommender, users):
    """Seconds for cold/warm per-user loops and one batch call (+ parity)."""
    recommender.score_items(0)  # warm derived structures (graph transition, ...)
    with Timer() as cold_timer:
        loop_scores = []
        for u in users:
            _clear_scoring_cache(recommender)
            loop_scores.append(recommender.score_items(int(u)))
        loop_scores = np.stack(loop_scores)
    with Timer() as warm_timer:
        warm_scores = np.stack(
            [recommender.score_items(int(u)) for u in users]
        )
    with Timer() as batch_timer:
        batch_scores = recommender.score_users(users)
    assert np.allclose(loop_scores, batch_scores, equal_nan=False)
    assert np.allclose(warm_scores, batch_scores, equal_nan=False)
    # Rankings must agree exactly, not just scores approximately.
    per_user = [recommender.recommend(int(u), k=10) for u in users[:8]]
    batch = recommender.recommend_batch(users[:8], k=10)
    assert all(
        [r.item for r in a] == [r.item for r in b]
        for a, b in zip(per_user, batch)
    )
    return cold_timer.elapsed, warm_timer.elapsed, batch_timer.elapsed


def test_batch_serving_speedup(config, report):
    train = make_data("movielens", config).dataset
    users = np.arange(COHORT) % train.n_users

    rows = []
    speedups = {}
    for recommender in (AbsorbingTimeRecommender(), PureSVDRecommender()):
        recommender.fit(train)
        cold_seconds, warm_seconds, batch_seconds = _measure(recommender, users)
        speedups[recommender.name] = cold_seconds / batch_seconds
        rows.append({
            "algorithm": recommender.name,
            "cold_loop_s": round(cold_seconds, 4),
            "warm_loop_s": round(warm_seconds, 4),
            "batch_s": round(batch_seconds, 4),
            "speedup_vs_cold": round(cold_seconds / batch_seconds, 1),
            "batch_users_per_sec": round(COHORT / batch_seconds, 1),
        })

    # Precompute-once serving: per-request latency from the int32 cache.
    at = AbsorbingTimeRecommender().fit(train)
    store = TopKStore.from_recommender(at, depth=20)
    with Timer() as serve_timer:
        for user in range(train.n_users):
            store.recommend(user, k=10)
    rows.append({
        "algorithm": "AT via TopKStore",
        "cold_loop_s": None,
        "warm_loop_s": None,
        "batch_s": None,
        "speedup_vs_cold": None,
        "batch_users_per_sec": round(train.n_users / serve_timer.elapsed, 1),
    })

    report(
        f"Batch serving - {COHORT}-user cohort, cold/warm per-user loop vs "
        f"score_users (plus precomputed TopKStore serve rate)",
        rows=rows, filename="batch_serving.csv",
    )
    print(f"AT batch speedup: {speedups['AT']:.1f}x  "
          f"(store: {store!r}, coverage@10 {store.coverage(10):.0%})")

    if strict_assertions():
        # The acceptance bar for the batch layer: >= 3x over the cold loop
        # for the walk recommender on the default-scale synthetic dataset.
        assert speedups["AT"] >= 3.0
        # The store must cover the whole user base at serving depth.
        assert store.coverage(10) == 1.0

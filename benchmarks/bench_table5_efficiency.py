"""Table 5 — per-user online recommendation cost (paper §5.2.6).

Paper (Java, 32 GB server, full Douban): LDA 0.47 s ≈ PureSVD 0.45 s ≈
AC2-on-µ-subgraph 0.52 s ≪ DPPR-on-global-graph 13.5 s (≈ 26× slower).

At laptop scale the sparse-PPR DPPR converges in milliseconds, so the
paper's specific outlier does not re-materialise (recorded in
EXPERIMENTS.md). The *mechanism* behind it — a per-user global graph scan
versus a µ-local computation — is asserted directly via the extra
``AC2-full`` row (the analogue of Table 4's 12.7 s full-graph column).
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import run_table5


def test_table5_per_user_cost(benchmark, config, report):
    result = benchmark.pedantic(
        run_table5, args=(config,), kwargs={"n_users": 50},
        rounds=1, iterations=1,
    )

    report(
        f"Table 5 - mean per-user recommendation seconds "
        f"(AC2 on mu={result.mu} subgraph; DPPR and AC2-full on the global graph)",
        rows=result.rows(), filename="table5_efficiency.csv",
    )
    print(f"global-scan slowdown (AC2-full / AC2-mu): "
          f"{result.slowdown_of_global_scan():.1f}x (paper: 12.7s vs 0.52s = 24x)")
    print(f"DPPR slowdown vs fastest model-based scorer: "
          f"{result.slowdown_of_dppr():.1f}x (paper: ~29x)")

    if strict_assertions():
        seconds = result.seconds
        # The graph methods pay a real per-user cost over the model-based
        # scorers (paper groups them within ~1.2x at crawl scale; the
        # direction that matters is that none of them is free).
        assert seconds["DPPR"] > 3 * min(seconds["LDA"], seconds["PureSVD"])
        # The paper's scalability argument: restricting AC2 to a mu-subgraph
        # beats scanning the whole graph per user.
        assert result.slowdown_of_global_scan() > 1.5

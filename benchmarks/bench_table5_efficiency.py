"""Table 5 — per-user online recommendation cost (paper §5.2.6).

Paper (Java, 32 GB server, full Douban): LDA 0.47 s ≈ PureSVD 0.45 s ≈
AC2-on-µ-subgraph 0.52 s ≪ DPPR-on-global-graph 13.5 s (≈ 26× slower).

At laptop scale two of the paper's outliers do not re-materialise
(recorded in EXPERIMENTS.md): the sparse-PPR DPPR converges in
milliseconds rather than 13.5 s, and the full-graph AC2 scan (the analogue
of Table 4's 12.7 s µ=89908 column) is no longer much dearer than the
µ-local one — the serving layer shares the extracted subgraph and derives
reachability from cached component labels, so the per-query setup the
paper's numbers were dominated by has largely been engineered away. What
this bench asserts instead are the cost relationships that *do* survive:
the graph walks pay a real per-user cost over the model-based scorers, and
the batch serving path amortises the global scan across the cohort
(``AC2-full-batch`` row) by a solid multiple.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import run_table5


def test_table5_per_user_cost(benchmark, config, report):
    result = benchmark.pedantic(
        run_table5, args=(config,), kwargs={"n_users": 50},
        rounds=1, iterations=1,
    )

    report(
        f"Table 5 - mean per-user recommendation seconds "
        f"(AC2 on mu={result.mu} subgraph; DPPR and AC2-full on the global graph; "
        f"AC2-full-batch served through recommend_batch)",
        rows=result.rows(), filename="table5_efficiency.csv",
    )
    print(f"global-scan slowdown (AC2-full / AC2-mu): "
          f"{result.slowdown_of_global_scan():.1f}x (paper: 12.7s vs 0.52s = 24x; "
          f"mitigated at serve time, see docstring)")
    print(f"DPPR slowdown vs fastest model-based scorer: "
          f"{result.slowdown_of_dppr():.1f}x (paper: ~29x)")
    print(f"batch amortisation of the global scan (AC2-full / AC2-full-batch): "
          f"{result.speedup_of_batch():.1f}x")

    if strict_assertions():
        seconds = result.seconds
        # The graph methods pay a real per-user cost over the model-based
        # scorers (paper groups them within ~1.2x at crawl scale; the
        # direction that matters is that none of them is free).
        assert seconds["DPPR"] > 3 * min(seconds["LDA"], seconds["PureSVD"])
        # The modern form of the paper's scalability argument: serving the
        # cohort through the batch layer beats scanning the graph per user.
        assert result.speedup_of_batch() > 2.0

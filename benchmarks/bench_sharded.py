"""Component-sharded serving vs one big engine, with parity receipts.

The sharded tier's promise is "same answers, smaller working sets": for
component-local scorers the fleet serves byte-identical rows, while every
per-shard solve touches a ``batch × shard_items`` score matrix instead of
``batch × all_items`` — on a federated catalogue the dense allocations
shrink by roughly the shard count, which is where the cold-path win comes
from. On the warm path the fleet front's **row cache** answers repeated
cohorts from fully materialised response rows without touching a shard —
the single engine re-materialises ``users × k`` row dicts from its array
cache every pass, so warm fleet serving is *faster*, not merely no slower
(measured ~16× at scale 1.0).

The workload is a federated catalogue (``N_TENANTS`` disjoint
movielens-density blocks via :func:`repro.data.synthetic.federated_dataset`
— the multi-component graph shape the tier exists for). Measured, per run:

* **fit** — one fit on the full catalogue vs ``N_SHARDS`` smaller fits;
* **cold serve** — full-cohort serve with empty caches (best of
  ``REPEATS``, caches cleared between attempts);
* **warm serve** — the same cohort re-served from the caches
  (best of ``REPEATS``).

Asserted: the 1-shard fleet scores **bit-identical** to the unsharded
engine (the plan is pure bookkeeping), the multi-shard fleet serves the
exact rows of the single engine, and the speedup gates — sharded cold
≥ 1.0× and sharded warm ≥ 1.0× the single-engine warm path at
(near-)default scale, warm ≥ 1.0× at any scale (the row-cache advantage
does not shrink with the workload). Results land in ``BENCH_sharded.json``
at the repo root.
"""

import json
import os

import numpy as np

from benchmarks.conftest import bench_scale, strict_assertions
from repro import AbsorbingTimeRecommender, ServingEngine, ShardedEngine
from repro.data.synthetic import federated_dataset
from repro.utils.timer import Timer

N_TENANTS = 8
N_SHARDS = 4
K = 10
REPEATS = 5

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(_REPO_ROOT, "BENCH_sharded.json")


def _best_cold(engine, cohort) -> tuple[float, list]:
    """Best-of-REPEATS cold cohort serve (caches cleared every attempt)."""
    best, rows = float("inf"), None
    for _ in range(REPEATS):
        engine.clear_caches()
        with Timer() as timer:
            report = engine.serve_cohort(cohort, k=K)
        if timer.elapsed < best:
            best, rows = timer.elapsed, report.rows
    return best, rows


def _best_warm(engine, cohort) -> float:
    """Best-of-REPEATS warm cohort serve (caches pre-filled)."""
    engine.serve_cohort(cohort, k=K)
    best = float("inf")
    for _ in range(REPEATS):
        with Timer() as timer:
            engine.serve_cohort(cohort, k=K)
        best = min(best, timer.elapsed)
    return best


def test_sharded_serving_parity_and_throughput():
    scale = bench_scale()
    train = federated_dataset(N_TENANTS, scale=scale, seed=11)
    cohort = np.arange(train.n_users)

    with Timer() as single_fit:
        single_rec = AbsorbingTimeRecommender().fit(train)
    single = ServingEngine(single_rec)

    with Timer() as fleet_fit:
        fleet = ShardedEngine.fit(train, AbsorbingTimeRecommender,
                                  n_shards=N_SHARDS)

    # Parity gate 1: a one-shard plan is the unsharded engine, bit for bit.
    one_shard = ShardedEngine.fit(train, AbsorbingTimeRecommender, n_shards=1)
    assert np.array_equal(
        one_shard.engines[0].recommender.score_users(cohort),
        single_rec.score_users(cohort),
    )

    cold_single_s, single_rows = _best_cold(single, cohort)
    cold_fleet_s, fleet_rows = _best_cold(fleet, cohort)

    # Parity gate 2: the multi-shard fleet serves the single engine's rows.
    assert fleet_rows == single_rows

    warm_single_s = _best_warm(single, cohort)
    warm_fleet_s = _best_warm(fleet, cohort)

    cold_speedup = cold_single_s / cold_fleet_s if cold_fleet_s > 0 else 1.0
    warm_speedup = warm_single_s / warm_fleet_s if warm_fleet_s > 0 else 1.0

    payload = {
        "bench": "sharded",
        "algorithm": "AT",
        "scale": scale,
        "n_tenants": N_TENANTS,
        "n_shards": N_SHARDS,
        "n_users": int(train.n_users),
        "n_items": int(train.n_items),
        "n_ratings": int(train.n_ratings),
        "k": K,
        "shard_ratings": [row["ratings"]
                          for row in fleet.plan.summary(train)],
        "single_fit_s": round(single_fit.elapsed, 4),
        "fleet_fit_s": round(fleet_fit.elapsed, 4),
        "cold_single_s": round(cold_single_s, 4),
        "cold_sharded_s": round(cold_fleet_s, 4),
        "cold_sharded_vs_single": round(cold_speedup, 2),
        "warm_single_s": round(warm_single_s, 4),
        "warm_sharded_s": round(warm_fleet_s, 4),
        "warm_sharded_vs_single": round(warm_speedup, 2),
        "one_shard_score_parity": True,
        "multi_shard_row_parity": True,
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nsharded bench: {json.dumps(payload, indent=2, sort_keys=True)}")

    # Balance must be real: greedy LPT keeps every shard under ~2x the
    # fair share on this workload.
    fair = train.n_ratings / N_SHARDS
    assert max(payload["shard_ratings"]) <= 2.0 * fair

    assert warm_speedup >= 1.0
    if strict_assertions():
        # The cold-path edge (smaller score matrices) needs a workload big
        # enough to dominate constant costs; gate it at real scale only.
        assert cold_speedup >= 1.0

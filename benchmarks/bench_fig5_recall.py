"""Figure 5 — Recall@N on held-out 5-star long-tail ratings (paper §5.2.1).

Paper shape, both panels: the proposed graph variants dominate; AC2 leads
(R@10 ≈ 0.12 on MovieLens); the latent-factor baselines (PureSVD, LDA) trail
far behind on the long-tail targets; DPPR sits between. Panel (b) shows the
same ordering on Douban.

Known deviation (recorded in EXPERIMENTS.md): the paper reports *higher*
absolute recall on Douban than MovieLens; at laptop scale the Douban
stand-in's tiny profiles (≈12 ratings/user vs the real crawl's ≈35) weaken
all algorithms, so our absolute Douban recall is lower. Orderings hold.
"""

from benchmarks.conftest import strict_assertions
from repro.eval.significance import bootstrap_recall, bootstrap_recall_difference
from repro.experiments import run_fig5


def _run_and_report(dataset, config, report, n_cases, panel):
    result = run_fig5(dataset, config, n_cases=n_cases, n_distractors=500,
                      max_n=50)
    curves = result.curves()
    report(
        f"Figure 5({panel}) - Recall@N on {dataset} "
        f"({result.n_cases} cases, {result.n_distractors} distractors)",
        series={name: curve[[0, 4, 9, 19, 29, 49]] for name, curve in curves.items()},
        x_label="N", x_values=[1, 5, 10, 20, 30, 50],
        filename=f"fig5{panel}_recall_{dataset}.csv",
    )
    ci_rows = [
        dict(algorithm=name, **bootstrap_recall(res.ranks, 10, seed=0).row())
        for name, res in result.results.items()
    ]
    report(f"Figure 5({panel}) - Recall@10 with 95% bootstrap CIs",
           rows=ci_rows, filename=f"fig5{panel}_ci_{dataset}.csv")
    delta, low, high = bootstrap_recall_difference(
        result.results["AC2"].ranks, result.results["PureSVD"].ranks, 10, seed=0
    )
    print(f"AC2 - PureSVD Recall@10 difference: {delta:+.3f} "
          f"(95% CI [{low:+.3f}, {high:+.3f}])")
    return result


def test_fig5a_recall_movielens(benchmark, config, report):
    result = benchmark.pedantic(
        _run_and_report, args=("movielens", config, report, 200, "a"),
        rounds=1, iterations=1,
    )
    at10 = result.recall_at(10)
    if strict_assertions():
        best_graph = max(at10[n] for n in ("AC2", "AC1", "AT", "HT"))
        # The proposed family clearly beats the latent-factor models ...
        assert best_graph > 2 * max(at10["PureSVD"], at10["LDA"], 1e-9)
        # ... and AC2 is at (or within noise of) the top of the family.
        assert at10["AC2"] >= 0.85 * best_graph
        # Entropy bias helps: AC2 >= AC1 discipline from the paper.
        assert at10["AC2"] >= at10["AC1"] - 0.02


def test_fig5b_recall_douban(benchmark, config, report):
    result = benchmark.pedantic(
        _run_and_report, args=("douban", config, report, 150, "b"),
        rounds=1, iterations=1,
    )
    at10 = result.recall_at(10)
    if strict_assertions():
        best_graph = max(at10[n] for n in ("AC2", "AC1", "AT", "HT"))
        assert best_graph > max(at10["PureSVD"], at10["LDA"])
        assert at10["AC2"] >= 0.8 * best_graph
        # Item-based AT beats user-based HT on the sparse catalogue (§5.2.1).
        assert at10["AT"] >= at10["HT"] - 0.02

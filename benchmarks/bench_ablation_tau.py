"""Ablation — truncation depth τ (paper §4.1, §5.2 text).

The paper claims: "when we use 15 iterations, it already achieves almost the
same results to the exact solution" (obtained by solving the linear system).
The bench measures top-10 overlap between truncated and exact Absorbing Time
rankings as τ grows and asserts the τ = 15 claim.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import run_tau_convergence


def test_ablation_tau_convergence(benchmark, config, report):
    result = benchmark.pedantic(
        run_tau_convergence, args=(config,),
        kwargs={"taus": (1, 2, 5, 10, 15, 30, 60), "n_users": 30},
        rounds=1, iterations=1,
    )

    report("Ablation - truncated-vs-exact AT top-10 overlap by tau",
           rows=result.rows(), filename="ablation_tau.csv")

    overlaps = result.mean_overlap
    # Overlap improves with depth ...
    assert overlaps[60] >= overlaps[1]
    if strict_assertions():
        # ... and the paper's tau = 15 already nearly matches exact.
        assert overlaps[15] >= 0.85
        # While tau = 1 (one sweep) clearly does not rank like exact.
        assert overlaps[1] < overlaps[15]

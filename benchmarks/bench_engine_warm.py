"""Warm vs. cold engine serving — what the stateful caches buy per request.

The fit-once/serve-many split (artifact + :class:`~repro.service.ServingEngine`)
exists so that request-time work shrinks to what is truly per-request. This
bench quantifies that for a repeated AT cohort at default scale, in two
configurations:

* **engine (result cache on)** — the second pass answers every user from the
  engine's ranked-array LRU: no scoring, no walk, just row assembly. This is
  the production path and must be at least 2× faster warm than cold
  (in practice it is orders of magnitude faster).
* **scoring layer only (result cache off)** — the second pass re-runs the
  multi-RHS solve but hits the :class:`~repro.graph.cache.TransitionCache`
  for the component-group transition matrices, masks and entropy slices,
  isolating what the sparse-setup memoization alone saves.

Both passes must produce identical rows — a cache that changes rankings is
a bug, not a speedup.
"""

import numpy as np

from benchmarks.conftest import strict_assertions
from repro import AbsorbingTimeRecommender, ServingEngine
from repro.experiments import make_data

COHORT = 64


def _serve_twice(engine, users, k=10):
    cold = engine.serve_cohort(users, k=k)
    warm = engine.serve_cohort(users, k=k)
    assert cold.rows == warm.rows, "warm serving changed the rankings"
    return cold, warm


def test_engine_warm_vs_cold(config, report):
    train = make_data("movielens", config).dataset
    users = np.arange(COHORT) % train.n_users

    rows = []

    recommender = AbsorbingTimeRecommender().fit(train)
    engine = ServingEngine(recommender)
    cold, warm = _serve_twice(engine, users)
    engine_speedup = cold.seconds / max(warm.seconds, 1e-9)
    assert warm.result_cache_hits == users.size
    rows.append({
        "configuration": "engine (result cache)",
        "cold_s": round(cold.seconds, 4),
        "warm_s": round(warm.seconds, 4),
        "speedup": round(engine_speedup, 1),
    })

    scoring_only = ServingEngine(
        AbsorbingTimeRecommender().fit(train), result_cache_size=0
    )
    cold2, warm2 = _serve_twice(scoring_only, users)
    scoring_speedup = cold2.seconds / max(warm2.seconds, 1e-9)
    assert warm2.scoring_cache.get("hits", 0) > 0, (
        "second pass never hit the transition cache"
    )
    rows.append({
        "configuration": "scoring layer only",
        "cold_s": round(cold2.seconds, 4),
        "warm_s": round(warm2.seconds, 4),
        "speedup": round(scoring_speedup, 1),
    })

    report("engine warm vs cold (AT, repeated cohort)", rows=rows,
           filename="engine_warm.csv")

    if strict_assertions():
        assert engine_speedup >= 2.0, (
            f"warm engine serving only {engine_speedup:.2f}x faster than cold"
        )

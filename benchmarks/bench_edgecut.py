"""Edge-cut sharding of one giant component, with bounded-error receipts.

The component partitioner's contract is exact answers on multi-component
catalogues — and a hard error on the one graph shape real recommendation
data actually has: a single giant component. This benchmark measures the
edge-cut tier on exactly that shape (:func:`repro.data.synthetic.giant_component`
— a ring-local power-law catalogue, one connected component, no global
hubs) and collects the receipts for its weaker-but-honest contract:

* **1 shard** — the plan is pure bookkeeping: rows are **bit-identical**
  to the unsharded engine (no cut, no deficit, same solves).
* **2 / 4 shards** — each shard solves over its owned nodes plus a
  ``HALO_HOPS``-hop ghost fringe with *degree-true* transitions (boundary
  rows divided by the global degree, so cut mass leaks rather than being
  renormalized away) and *pessimistic completion* (leaked mass is billed
  the full remaining walk budget). Halo scores therefore **dominate from
  below**: fleet score ≤ unsharded score entrywise — an item can be
  demoted by sharding but never spuriously promoted. Asserted here, plus
  a hard cap ``HALO_SCORE_TOLERANCE`` on the absolute score error over
  the served top-k and a floor on top-k overlap.

Measured, per shard count: cut fraction, halo overhead (ghost nodes per
owned node), cold and warm cohort throughput. The perf gate: the 4-shard
fleet's warm path must clear ``2×`` the single engine's warm throughput
at (near-)default scale (the fleet front answers repeats from its row
cache; the single engine re-materializes rows every pass). Results land
in ``BENCH_edgecut.json`` at the repo root.
"""

import json
import os

import numpy as np

from benchmarks.conftest import bench_scale, strict_assertions
from repro import AbsorbingTimeRecommender, ServingEngine, ShardedEngine
from repro.data.synthetic import giant_component
from repro.service import ShardPlan
from repro.utils.timer import Timer

SHARD_COUNTS = (1, 2, 4)
HALO_HOPS = 4
#: Documented bound on |fleet − single| score error over served top-k
#: items (multi-shard halo plans; the pessimistic-completion bound means
#: the signed error is additionally one-sided). Observed ≤ 0.005 at
#: hops=4 on this workload; the cap leaves headroom for seed drift.
HALO_SCORE_TOLERANCE = 0.25
#: Floor on mean top-k overlap between fleet and unsharded rankings.
MIN_MEAN_OVERLAP = 0.9
K = 10
REPEATS = 5

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(_REPO_ROOT, "BENCH_edgecut.json")


def _best_cold(engine, cohort) -> tuple[float, list]:
    best, rows = float("inf"), None
    for _ in range(REPEATS):
        engine.clear_caches()
        with Timer() as timer:
            report = engine.serve_cohort(cohort, k=K)
        if timer.elapsed < best:
            best, rows = timer.elapsed, report.rows
    return best, rows


def _best_warm(engine, cohort) -> float:
    engine.serve_cohort(cohort, k=K)
    best = float("inf")
    for _ in range(REPEATS):
        with Timer() as timer:
            engine.serve_cohort(cohort, k=K)
        best = min(best, timer.elapsed)
    return best


def _by_user(rows) -> dict:
    out: dict = {}
    for row in rows:
        out.setdefault(row["user"], {})[row["item"]] = row["score"]
    return out


def _parity(fleet_rows, single_rows) -> dict:
    """Overlap / signed-error stats of fleet top-k vs the unsharded top-k."""
    fleet, single = _by_user(fleet_rows), _by_user(single_rows)
    overlaps, abs_errors, max_signed = [], [0.0], 0.0
    for user, reference in single.items():
        served = fleet.get(user, {})
        shared = set(served) & set(reference)
        overlaps.append(len(shared) / max(len(reference), 1))
        for item in shared:
            signed = served[item] - reference[item]
            abs_errors.append(abs(signed))
            max_signed = max(max_signed, signed)
    return {
        "mean_topk_overlap": float(np.mean(overlaps)),
        "min_topk_overlap": float(np.min(overlaps)),
        "max_abs_score_error": float(np.max(abs_errors)),
        "max_signed_score_error": float(max_signed),
    }


def test_edgecut_sharding_bounded_error_and_throughput():
    scale = bench_scale()
    train = giant_component(scale=scale, seed=11)
    cohort = np.arange(train.n_users)

    single = ServingEngine(AbsorbingTimeRecommender().fit(train))
    cold_single_s, single_rows = _best_cold(single, cohort)
    warm_single_s = _best_warm(single, cohort)

    payload = {
        "bench": "edgecut",
        "algorithm": "AT",
        "scale": scale,
        "halo_hops": HALO_HOPS,
        "halo_score_tolerance": HALO_SCORE_TOLERANCE,
        "n_users": int(train.n_users),
        "n_items": int(train.n_items),
        "n_ratings": int(train.n_ratings),
        "k": K,
        "cold_single_s": round(cold_single_s, 4),
        "warm_single_s": round(warm_single_s, 4),
        "cold_single_ups": round(train.n_users / cold_single_s, 1),
        "warm_single_ups": round(train.n_users / warm_single_s, 1),
        "shards": {},
    }

    warm_by_count = {}
    for n_shards in SHARD_COUNTS:
        plan = ShardPlan.build_edge_cut(train, n_shards, halo_hops=HALO_HOPS)
        fleet = ShardedEngine.fit(train, AbsorbingTimeRecommender, plan=plan)
        summary = plan.summary(train)

        cold_s, fleet_rows = _best_cold(fleet, cohort)
        warm_s = _best_warm(fleet, cohort)
        warm_by_count[n_shards] = warm_s

        owned = train.n_users + train.n_items
        ghosts = sum(r.get("ghost_users", 0) + r.get("ghost_items", 0)
                     for r in summary)
        cut = sum(r.get("cut_ratings", 0) for r in summary)
        entry = {
            "cut_fraction": round(cut / train.n_ratings, 4),
            "halo_overhead": round(ghosts / owned, 4),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "cold_ups": round(train.n_users / cold_s, 1),
            "warm_ups": round(train.n_users / warm_s, 1),
        }

        if n_shards == 1:
            # No cut, no deficit: the fleet must be the single engine,
            # bit for bit (also the CI parity gate).
            assert fleet_rows == single_rows
            entry["bit_identical"] = True
        else:
            parity = _parity(fleet_rows, single_rows)
            entry.update({k: round(v, 6) for k, v in parity.items()})
            # Pessimistic completion: fleet scores never exceed the
            # unsharded scores (one-sided error) ...
            assert parity["max_signed_score_error"] <= 1e-9
            # ... and stay within the documented tolerance of them.
            assert parity["max_abs_score_error"] <= HALO_SCORE_TOLERANCE
            assert parity["mean_topk_overlap"] >= MIN_MEAN_OVERLAP
        payload["shards"][str(n_shards)] = entry
        print(f"\n{n_shards}-shard edge-cut: {json.dumps(entry, sort_keys=True)}")

    warm_speedup = warm_single_s / warm_by_count[4] if warm_by_count[4] > 0 else 1.0
    payload["warm_4shard_vs_single"] = round(warm_speedup, 2)

    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nedgecut bench: {json.dumps(payload, indent=2, sort_keys=True)}")

    # Warm fleet serving rides the fleet row cache; the acceptance gate
    # is a hard 2x over the single engine's warm path at real scale.
    if strict_assertions():
        assert warm_speedup >= 2.0
    else:
        assert warm_speedup >= 1.0

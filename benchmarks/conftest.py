"""Shared benchmark scaffolding.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md
§4 for the index). Results are printed to stdout *and* written as CSV under
``benchmarks/results/`` so the numbers survive the run.

The workload scale can be lowered for quick iterations::

    REPRO_BENCH_SCALE=0.3 pytest benchmarks/ --benchmark-only

(The shape assertions are calibrated for the default scale 1.0; at very
small scales some orderings become noisy, so assertions relax below 0.5.)
"""

from __future__ import annotations

import os

import pytest

from repro.eval.reporting import format_series, format_table, results_dir, write_csv
from repro.experiments import ExperimentConfig


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def strict_assertions() -> bool:
    """Shape assertions are enforced only at (near-)default scale."""
    return bench_scale() >= 0.5


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig(scale=bench_scale())


@pytest.fixture(scope="session")
def report():
    """Callable: print a table/series and persist it to results/."""

    def _report(title: str, rows=None, series=None, filename: str | None = None,
                x_label: str = "N", x_values=None):
        if rows is not None:
            text = format_table(rows, title=title)
            payload = rows
        else:
            text = format_series(series, title=title, x_label=x_label,
                                 x_values=x_values)
            length = max(len(v) for v in series.values())
            xs = x_values if x_values is not None else range(1, length + 1)
            payload = []
            for idx, x in enumerate(xs):
                row = {x_label: x}
                for name, values in series.items():
                    row[name] = float(values[idx]) if idx < len(values) else None
                payload.append(row)
        print("\n" + text + "\n")
        if filename:
            path = os.path.join(results_dir(), filename)
            write_csv(payload, path)
            print(f"[saved] {path}")

    return _report

"""Process-fleet serving: parity receipts, recovery latency, WAL replay.

The multi-process fleet's promise is *robustness at bounded cost*: the
same answers as the in-process :class:`ShardedEngine` (the workers run
identical engine code behind a pipe), with supervision that turns a
SIGKILLed worker into a restart + write-ahead-log replay instead of an
outage. This bench measures what that costs and proves what it preserves:

* **boot** — spawning one worker process per shard from saved artifacts
  vs loading the same artifacts in-process;
* **cold / warm serve** — full-cohort serving through pipe RPCs vs
  in-process calls. The warm path hits the supervisor's own row cache,
  so it pays no RPC at all; the cold path pays one pipe round-trip per
  shard group. The ratio is *reported, not gated* — this box may have a
  single CPU, where process parallelism cannot win by construction;
* **recovery** — a worker SIGKILLed externally, timed from the kill to
  ``restart_shard`` returning a healthy row (artifact re-boot + WAL
  replay included);
* **crash-mid-update parity** — a scripted ``"after-apply"`` SIGKILL
  (the double-apply hazard: state mutated, ack never sent) must leave
  ranked lists bit-identical to a fleet that never crashed.

Asserted at any scale: row parity for cold and warm serving, recovery
parity after the mid-update crash, exactly one restart and one replayed
batch for the scripted crash. Results land in ``BENCH_fleet.json`` at the
repo root.
"""

import json
import os
import signal
import tempfile

import numpy as np

from benchmarks.conftest import bench_scale
from repro import AbsorbingTimeRecommender, ShardedEngine
from repro.data.synthetic import federated_dataset
from repro.service import FaultSpec, ProcessShardFleet
from repro.utils.timer import Timer

N_TENANTS = 6
N_SHARDS = 3
K = 10
REPEATS = 5

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(_REPO_ROOT, "BENCH_fleet.json")


def _best_cold(engine, cohort) -> tuple[float, list]:
    best, rows = float("inf"), None
    for _ in range(REPEATS):
        engine.clear_caches()
        with Timer() as timer:
            report = engine.serve_cohort(cohort, k=K)
        if timer.elapsed < best:
            best, rows = timer.elapsed, report.rows
    return best, rows


def _best_warm(engine, cohort) -> tuple[float, list]:
    engine.serve_cohort(cohort, k=K)
    best, rows = float("inf"), None
    for _ in range(REPEATS):
        with Timer() as timer:
            report = engine.serve_cohort(cohort, k=K)
        if timer.elapsed < best:
            best, rows = timer.elapsed, report.rows
    return best, rows


def _topk(fleet, users):
    return {user: [(r.item, r.label, r.score)
                   for r in fleet.recommend(user, k=K)]
            for user in users}


def test_fleet_parity_recovery_and_throughput():
    scale = bench_scale()
    train = federated_dataset(N_TENANTS, scale=scale, seed=11)
    cohort = np.arange(train.n_users)

    fitted = ShardedEngine.fit(train, AbsorbingTimeRecommender,
                               n_shards=N_SHARDS)
    with tempfile.TemporaryDirectory() as workdir:
        artifacts = os.path.join(workdir, "artifacts")
        fitted.save(artifacts)

        with Timer() as inproc_boot:
            inproc = ShardedEngine.from_directory(artifacts)
        with Timer() as fleet_boot:
            fleet = ProcessShardFleet.from_directory(
                artifacts, wal_dir=os.path.join(workdir, "wal"))

        with fleet:
            cold_inproc_s, inproc_rows = _best_cold(inproc, cohort)
            cold_fleet_s, fleet_rows = _best_cold(fleet, cohort)
            cold_parity = fleet_rows == inproc_rows

            warm_inproc_s, inproc_warm_rows = _best_warm(inproc, cohort)
            warm_fleet_s, fleet_warm_rows = _best_warm(fleet, cohort)
            warm_parity = fleet_warm_rows == inproc_warm_rows

            # Recovery latency: SIGKILL a live worker, time the heal —
            # crash cleanup, artifact re-boot, (empty) WAL replay, ping.
            victim = fleet.shard_of_user(0)
            os.kill(fleet.worker_pid(victim), signal.SIGKILL)
            with Timer() as recovery:
                row = fleet.restart_shard(victim)
            assert row["state"] == "up"
            restarts_after_kill = fleet.restarts

        # Crash-mid-update parity: scripted after-apply SIGKILL vs a
        # fleet that never crashed, same events, fresh WALs each.
        events = [
            (train.user_labels[0], train.item_labels[0], 5.0),
            ("fleet-bench-new-user", train.item_labels[0], 4.0),
        ]
        probe = list(range(0, train.n_users, max(1, train.n_users // 16)))
        with ProcessShardFleet.from_directory(
                artifacts, wal_dir=os.path.join(workdir, "wal-clean"),
        ) as clean:
            shard = clean.shard_of_user(0)
            clean.apply_updates(events, duplicates="last")
            clean_top = _topk(clean, probe + [clean.n_users - 1])
        with ProcessShardFleet.from_directory(
                artifacts, wal_dir=os.path.join(workdir, "wal-crash"),
                faults={shard: FaultSpec(crash_mid_update="after-apply")},
        ) as crashed:
            with Timer() as crash_recovery:
                report = crashed.apply_updates(events, duplicates="last")
            replayed = report.replayed_batches
            crash_restarts = crashed.restarts
            recovery_parity = (
                _topk(crashed, probe + [crashed.n_users - 1]) == clean_top
            )

    payload = {
        "bench": "fleet",
        "algorithm": "AT",
        "scale": scale,
        "n_tenants": N_TENANTS,
        "n_shards": N_SHARDS,
        "n_users": int(train.n_users),
        "n_items": int(train.n_items),
        "n_ratings": int(train.n_ratings),
        "k": K,
        "inproc_boot_s": round(inproc_boot.elapsed, 4),
        "fleet_boot_s": round(fleet_boot.elapsed, 4),
        "cold_inproc_s": round(cold_inproc_s, 4),
        "cold_fleet_s": round(cold_fleet_s, 4),
        "cold_fleet_vs_inproc": round(
            cold_inproc_s / cold_fleet_s if cold_fleet_s > 0 else 1.0, 2),
        "warm_inproc_s": round(warm_inproc_s, 4),
        "warm_fleet_s": round(warm_fleet_s, 4),
        "warm_fleet_vs_inproc": round(
            warm_inproc_s / warm_fleet_s if warm_fleet_s > 0 else 1.0, 2),
        "restart_to_healthy_s": round(recovery.elapsed, 4),
        "crash_mid_update_recovery_s": round(crash_recovery.elapsed, 4),
        "cold_row_parity": cold_parity,
        "warm_row_parity": warm_parity,
        "recovery_parity": recovery_parity,
        "restarts_after_sigkill": restarts_after_kill,
        "replayed_batches": replayed,
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nfleet bench: {json.dumps(payload, indent=2, sort_keys=True)}")

    # Robustness gates hold at every scale; throughput ratios are
    # reported only (a 1-CPU runner cannot show a parallelism win).
    assert cold_parity and warm_parity
    assert recovery_parity
    assert restarts_after_kill == 1
    assert crash_restarts == 1
    assert replayed == 1
    assert payload["restart_to_healthy_s"] < 30.0

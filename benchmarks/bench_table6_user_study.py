"""Table 6 — the (simulated) user study (paper §5.2.7).

Paper shape: AC2 wins novelty (0.98) and serendipity (4.78) by a wide margin
and takes the best overall score (4.41); PureSVD/LDA match tastes but are
familiar (novelty 0.64/0.66, serendipity ≈2.1); DPPR is novel but weaker on
taste. See repro.eval.user_study for the simulation model and DESIGN.md §6
for the substitution rationale (real evaluators are not available).

Known deviation (EXPERIMENTS.md): at laptop scale DPPR's recommendations
remain reasonably on-taste, so its preference/score do not collapse as far
as the paper's 3.12/3.65.
"""

from benchmarks.conftest import strict_assertions
from repro.experiments import PAPER_STUDY, run_table6


def test_table6_user_study(benchmark, config, report):
    result = benchmark.pedantic(
        run_table6, args=(config,), kwargs={"n_evaluators": 50},
        rounds=1, iterations=1,
    )

    rows = result.rows()
    paper_rows = [dict(algorithm=f"{name} (paper)", **values)
                  for name, values in PAPER_STUDY.items()]
    report("Table 6 - simulated 50-evaluator study (measured)",
           rows=rows, filename="table6_user_study.csv")
    report("Table 6 - published values (reference)", rows=paper_rows)

    if strict_assertions():
        reports = result.reports
        # Novelty: graph methods nearly perfect; latent models far lower.
        assert reports["AC2"].novelty > 0.9
        assert reports["AC2"].novelty > reports["PureSVD"].novelty + 0.2
        assert reports["DPPR"].novelty > reports["LDA"].novelty + 0.2
        # Serendipity: AC2 leads, latent models trail badly.
        assert reports["AC2"].serendipity > reports["PureSVD"].serendipity + 0.5
        assert reports["AC2"].serendipity > reports["LDA"].serendipity + 0.5
        assert reports["AC2"].serendipity >= reports["DPPR"].serendipity - 0.05
        # Overall score: AC2 at (or within noise of) the top.
        best = max(r.score for r in reports.values())
        assert reports["AC2"].score >= best - 0.05

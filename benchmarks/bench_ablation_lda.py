"""Ablation — LDA engine: Algorithm 2 Gibbs vs vectorised CVB0.

DESIGN.md calls out the CVB0 engine as a substitution for scale. The bench
quantifies what that buys and costs: wall-clock speedup, agreement of the
user-entropy rankings (what AC2 actually consumes), and overlap of the final
AC2 top-10 lists under either engine.
"""

from benchmarks.conftest import bench_scale, strict_assertions
from repro.experiments import ExperimentConfig, run_lda_engine_ablation


def test_ablation_lda_engines(benchmark, report):
    config = ExperimentConfig(scale=min(bench_scale(), 0.5))
    result = benchmark.pedantic(
        run_lda_engine_ablation, args=(config,),
        kwargs={"n_users": 30, "gibbs_iterations": 60},
        rounds=1, iterations=1,
    )

    report("Ablation - Gibbs vs CVB0 LDA engines", rows=result.rows(),
           filename="ablation_lda_engines.csv")
    speedup = result.gibbs_seconds / max(result.cvb0_seconds, 1e-9)
    print(f"CVB0 speedup over Gibbs: {speedup:.1f}x")

    if strict_assertions():
        # The engines must agree on who the specific/general users are.
        assert result.entropy_correlation > 0.5
        # And produce substantially overlapping AC2 recommendations.
        assert result.ac2_top10_overlap > 0.5
        # CVB0 earns its keep.
        assert result.cvb0_seconds < result.gibbs_seconds

"""Figure 6 — Popularity@N of the top-10 lists (paper §5.2.2).

Paper shape: the graph methods (AC2/AC1/AT/HT/DPPR) recommend items an order
of magnitude less popular than PureSVD and LDA at every rank; for the
latent-factor models popularity *decreases* with rank (their first
suggestions are the biggest hits).
"""

import numpy as np

from benchmarks.conftest import strict_assertions
from repro.experiments import run_fig6

GRAPH = ("AC2", "AC1", "AT", "HT", "DPPR")
LATENT = ("PureSVD", "LDA")


def _run_and_report(dataset, config, report, panel):
    result = run_fig6(dataset, config, n_users=200, k=10)
    report(
        f"Figure 6({panel}) - mean popularity at rank N on {dataset} "
        f"({result.n_users} users)",
        series=result.series, x_label="N",
        filename=f"fig6{panel}_popularity_{dataset}.csv",
    )
    report(
        f"Figure 6({panel}) - mean list popularity on {dataset}",
        rows=[{"algorithm": k, "mean_popularity": round(v, 1)}
              for k, v in result.mean_popularity.items()],
        filename=f"fig6{panel}_mean_{dataset}.csv",
    )
    return result


def _assert_shape(result):
    mean_pop = result.mean_popularity
    for graph_name in GRAPH:
        for latent_name in LATENT:
            assert mean_pop[graph_name] < mean_pop[latent_name], (
                f"{graph_name} should recommend less popular items than "
                f"{latent_name}"
            )
    # Latent models: popularity decreases with rank (head first).
    lda = result.series["LDA"]
    assert lda[0] > lda[-1]


def test_fig6a_popularity_douban(benchmark, config, report):
    result = benchmark.pedantic(
        _run_and_report, args=("douban", config, report, "a"),
        rounds=1, iterations=1,
    )
    if strict_assertions():
        _assert_shape(result)
        # The paper's headline factor on Douban: latent models recommend
        # items >= 5x more popular than the graph methods' lists.
        graph_max = max(result.mean_popularity[n] for n in GRAPH)
        latent_min = min(result.mean_popularity[n] for n in LATENT)
        assert latent_min > 3 * graph_max


def test_fig6b_popularity_movielens(benchmark, config, report):
    result = benchmark.pedantic(
        _run_and_report, args=("movielens", config, report, "b"),
        rounds=1, iterations=1,
    )
    if strict_assertions():
        _assert_shape(result)

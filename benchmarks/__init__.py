"""Benchmark suite: one module per table/figure of the paper (see DESIGN.md §4).

This package marker lets the benchmark modules import the shared helpers in
``benchmarks.conftest`` under both ``pytest`` and ``python -m pytest``.
"""

"""Incremental update pipeline — apply-updates vs full refit, with receipts.

A live engine absorbing a small event batch should beat the naive
alternative — refit from scratch on the merged data and re-warm a fresh
engine — because almost everything it owns is still valid: the merged
dataset is an O(nnz) structural copy, component labels are maintained by
union-find instead of a global ``connected_components`` rerun, and both
cache layers keep every entry whose component the events did not touch
(prepared operators, splu factors and ranked result rows included).

The workload is a *federated* catalogue: ``N_SHARDS`` independent
movielens-like blocks (disjoint users/items — think regional catalogues or
tenant shards), so the graph has several component groups and update
traffic confined to shard 0 leaves the others' warm structures untouched.
Measured, per run:

* **incremental** — ``engine.apply_updates(events)`` on a warm engine plus
  re-serving the full cohort (affected users re-solved, the rest answered
  from the surviving result cache);
* **refit** — ``fit()`` on the merged dataset plus a cold engine serving
  the same cohort (what a redeploy actually costs);
* **retention** — targeted-invalidation counters and the post-update cache
  hit rates, including a fresh-``k`` sweep (new traffic shape) that drives
  every user through the scoring layer and so exercises the retained
  prepared operators directly.

Rows served by the updated engine are asserted identical to the refit
engine's (the parity contract), the update batch is capped at ≤1% of the
rating volume, and the speedup gate is ≥5× at (near-)default scale, ≥1.2×
at any scale (the CI perf-smoke setting). Results land in
``BENCH_incremental.json`` at the repo root.
"""

import json
import os

import numpy as np

from benchmarks.conftest import bench_scale, strict_assertions
from repro import AbsorbingTimeRecommender, ServingEngine
from repro.data.dataset import RatingDataset
from repro.data.synthetic import federated_dataset
from repro.utils.timer import Timer

N_SHARDS = 10
K = 10
EVENT_FRACTION = 0.008  # ≤1% of ratings, per the acceptance bound

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(_REPO_ROOT, "BENCH_incremental.json")


def _shard0_events(dataset: RatingDataset, n_events: int) -> list[tuple]:
    """Event batch confined to shard 0: re-rates, new pairs, new users/items."""
    rng = np.random.default_rng(7)
    users = [u for u in range(dataset.n_users)
             if str(dataset.user_labels[u]).startswith("t0:")]
    items = [i for i in range(dataset.n_items)
             if str(dataset.item_labels[i]).startswith("t0:")]
    events, seen = [], set()
    n_new_users = max(2, n_events // 10)
    n_new_items = max(2, n_events // 20)
    for fresh in range(n_new_users):
        item = items[int(rng.integers(len(items)))]
        events.append((f"t0:new-u{fresh}", dataset.item_labels[item],
                       float(rng.integers(1, 6))))
    for fresh in range(n_new_items):
        user = users[int(rng.integers(len(users)))]
        events.append((dataset.user_labels[user], f"t0:new-i{fresh}",
                       float(rng.integers(1, 6))))
    while len(events) < n_events:
        user = users[int(rng.integers(len(users)))]
        item = items[int(rng.integers(len(items)))]
        if (user, item) in seen:
            continue
        seen.add((user, item))
        events.append((dataset.user_labels[user], dataset.item_labels[item],
                       float(rng.integers(1, 6))))
    return events


def test_incremental_update_beats_full_refit():
    scale = bench_scale()
    # The shared federated workload (see repro.data.synthetic): N_SHARDS
    # disjoint movielens-density tenant blocks, comparable by construction
    # with bench_sharded.py's catalogue.
    train = federated_dataset(N_SHARDS, scale=scale, seed=100)
    n_events = max(8, int(EVENT_FRACTION * train.n_ratings))
    events = _shard0_events(train, n_events)
    assert len(events) <= max(0.01 * train.n_ratings, 8)
    cohort = np.arange(train.n_users)

    engine = ServingEngine(AbsorbingTimeRecommender().fit(train))
    engine.serve_cohort(cohort, k=K)  # the warm, running deployment

    with Timer() as update_timer:
        update = engine.apply_updates(events)
    merged = engine.dataset
    full_cohort = np.arange(merged.n_users)
    with Timer() as inc_serve_timer:
        incremental = engine.serve_cohort(full_cohort, k=K)

    with Timer() as refit_timer:
        refitted = AbsorbingTimeRecommender().fit(merged)
    cold_engine = ServingEngine(refitted)
    with Timer() as cold_serve_timer:
        cold = cold_engine.serve_cohort(full_cohort, k=K)

    # Parity: the updated warm engine serves the refit engine's exact rows.
    assert incremental.rows == cold.rows

    # New-traffic sweep: a previously unseen k misses the result cache for
    # every user, so the scoring layer answers — through the retained
    # prepared operators for every untouched shard.
    scoring_before = engine.recommender.scoring_cache_stats()
    engine.serve_cohort(full_cohort, k=K + 2)
    scoring_after = engine.recommender.scoring_cache_stats()
    scoring_hits_new_traffic = scoring_after["hits"] - scoring_before["hits"]

    incremental_total = update_timer.elapsed + inc_serve_timer.elapsed
    refit_total = refit_timer.elapsed + cold_serve_timer.elapsed
    speedup = refit_total / incremental_total if incremental_total > 0 else float("inf")

    payload = {
        "bench": "incremental",
        "algorithm": "AT",
        "scale": scale,
        "n_shards": N_SHARDS,
        "n_users": int(merged.n_users),
        "n_items": int(merged.n_items),
        "n_ratings": int(merged.n_ratings),
        "n_events": len(events),
        "events_fraction": round(len(events) / train.n_ratings, 5),
        "new_users": update.n_new_users,
        "new_items": update.n_new_items,
        "update_s": round(update_timer.elapsed, 4),
        "incremental_serve_s": round(inc_serve_timer.elapsed, 4),
        "incremental_total_s": round(incremental_total, 4),
        "refit_fit_s": round(refit_timer.elapsed, 4),
        "refit_serve_s": round(cold_serve_timer.elapsed, 4),
        "refit_total_s": round(refit_total, 4),
        "update_vs_refit": round(speedup, 2),
        "retained_groups": update.scoring_cache.get("retained_groups", 0),
        "invalidated_groups": update.scoring_cache.get("invalidated_groups", 0),
        "result_hit_rate_after_update": round(
            incremental.result_cache_hit_rate, 4),
        "scoring_hits_new_traffic": int(scoring_hits_new_traffic),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nincremental bench: {json.dumps(payload, indent=2, sort_keys=True)}")

    # Warm retention must be real, not incidental: untouched shards keep
    # their group entries and those entries are actually hit afterwards.
    assert payload["retained_groups"] >= 1
    assert payload["result_hit_rate_after_update"] > 0
    assert payload["scoring_hits_new_traffic"] > 0
    assert speedup >= (5.0 if strict_assertions() else 1.2)
